"""E5 — locality of reference: the paper's headline finding.

"These tests ... highlighted the critical importance of being able to
control locality of reference to persistent data."

After building the same database on each persistent server version, the
bench drops the buffer pool and runs query phases against a cold cache:

* a **hot phase** touching only LabBase's three small hot segments
  (key lookups Q1, state sets Q3, inlined most-recent values Q2);
* a **cold phase** that must visit the bulky history segment
  (history scans Q7, hit-list fetches Q4).

With segments (OStore, and Texas+TC's client clustering) the hot data
occupies few pages, so the hot phase faults little.  Plain Texas
interleaves everything in allocation order and faults across the whole
database.  The cold phase touches the big segment everywhere, so the
gap narrows — exactly the clustering story.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload, server_spec
from repro.labbase import LabBase
from repro.util.fmt import format_table

from _common import emit

_SERVERS = ("OStore", "Texas+TC", "Texas")
_CONFIG = BenchmarkConfig(
    clones_per_interval=20,
    intervals=(0.5, 1.0),
    buffer_pages=48,          # small pool: cold reads must fault
    queries_per_intake=0,     # build phase only; queries measured below
)


def _build(server: str, tmp_path) -> tuple:
    config = _CONFIG.with_(db_dir=os.path.join(tmp_path, server.replace("+", "_")))
    os.makedirs(config.db_dir, exist_ok=True)
    sm = server_spec(server).make(config)
    db = LabBase(sm)
    workload = LabFlowWorkload(db, config)
    workload.run_all()
    return sm, db, workload


def _hot_phase(db, workload) -> None:
    for class_name, items in workload.registry.by_class.items():
        for key, oid in items:
            db.lookup(class_name, key)          # Q1
            db.state_of(oid)                    # Q2-ish hot read
    for state in ("clone_done", "tclone_done", "waiting_for_assembly"):
        db.in_state(state)                      # Q3


def _cold_phase(db, workload) -> None:
    for _key, oid in workload.registry.by_class["clone"]:
        db.material_history(oid)                # Q7: walks history segment
        try:
            db.most_recent(oid, "hits")         # Q4: large cold values
        except Exception:
            pass


@pytest.fixture(scope="module")
def fault_profile(tmp_path_factory):
    """faults[(server, phase)] measured against a cold cache."""
    from repro.storage.report import segment_report

    tmp_path = str(tmp_path_factory.mktemp("e5"))
    faults: dict[tuple[str, str], int] = {}
    layouts: list[str] = []
    for server in _SERVERS:
        sm, db, workload = _build(server, tmp_path)
        layouts.append(segment_report(sm, title=f"Segment layout: {server}"))
        for phase_name, phase in (("hot", _hot_phase), ("cold", _cold_phase)):
            sm.drop_buffer()
            before = sm.stats.major_faults
            phase(db, workload)
            faults[(server, phase_name)] = sm.stats.major_faults - before
        sm.close()
    faults["layouts"] = "\n\n".join(layouts)  # type: ignore[assignment]
    return faults


def test_e5_emit_locality_table(benchmark, fault_profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # artefact bench
    rows = []
    for phase in ("hot", "cold"):
        rows.append(
            [phase] + [f"{fault_profile[(server, phase)]:,}" for server in _SERVERS]
        )
    ostore_hot = fault_profile[("OStore", "hot")]
    texas_hot = fault_profile[("Texas", "hot")]
    rows.append([])
    rows.append(["hot-phase ratio vs OStore"]
                + [f"{fault_profile[(s, 'hot')] / max(1, ostore_hot):.2f}x"
                   for s in _SERVERS])
    text = format_table(
        ["query phase (cold cache)"] + list(_SERVERS),
        rows,
        title="E5: major faults by query phase and server version",
        align_right=(1, 2, 3),
    )
    text += "\n\n" + fault_profile["layouts"]
    emit("e5_locality", text, payload={
        server: {
            phase: fault_profile[(server, phase)] for phase in ("hot", "cold")
        }
        for server in _SERVERS
    })

    # the headline: clustering wins the hot phase decisively
    assert ostore_hot < texas_hot, fault_profile
    assert fault_profile[("Texas+TC", "hot")] < texas_hot, fault_profile


@pytest.mark.parametrize("server", _SERVERS)
def test_e5_hot_query_latency(benchmark, server, tmp_path):
    """Wall time of the hot query phase, cold cache, per server."""
    sm, db, workload = _build(server, str(tmp_path))

    def run():
        sm.drop_buffer()
        _hot_phase(db, workload)

    benchmark.pedantic(run, rounds=3, iterations=1)
    sm.close()
