"""E11 — process re-engineering queries over the event history.

The paper (Section 1) observes that Set-Query-style decision support —
"aggregation, multiple joins and report generation" — also arises in
workflow management "for process re-engineering".  This bench runs the
chronicle queries a re-engineer would: per-step throughput profiles,
the rework (re-sequencing) rate, cycle-time statistics, and the
pipeline funnel — and emits the resulting management report.
"""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.labbase import Chronicle, LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table

from _common import emit

_CONFIG = BenchmarkConfig(
    clones_per_interval=15, intervals=(0.5, 1.0), queries_per_intake=0
)
_PIPELINE = ["receive_clone", "assemble_sequence", "blast_search", "incorporate"]


@pytest.fixture(scope="module")
def lab():
    db = LabBase(OStoreMM())
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    workload.drain()
    return db, Chronicle(db)


def test_e11_emit_reengineering_report(benchmark, lab):
    db, chronicle = lab
    profiles = benchmark(chronicle.step_profiles)

    profile_rows = [
        [p.class_name, p.executions, p.materials_touched,
         f"{p.throughput:.3f}", f"{p.mean_results_per_step:.1f}"]
        for p in profiles
    ]
    profile_table = format_table(
        ["step class", "runs", "materials", "runs/tick", "attrs/run"],
        profile_rows,
        title="Step-class profiles",
        align_right=(1, 2, 3, 4),
    )

    rework = chronicle.rework("determine_sequence")
    funnel = chronicle.funnel("clone", _PIPELINE)
    cycle = chronicle.cycle_time_statistics(db.in_state("clone_done"))
    quality = chronicle.value_distribution("tclone", "quality")

    summary_rows = [
        ["sequencing rework rate", f"{rework.rework_rate:.1%}"],
        ["max sequencing runs on one tclone", rework.max_runs_on_one_material],
        ["finished-clone cycle time (mean)", f"{cycle['mean']:.0f} ticks"],
        ["finished-clone cycle time (max)", f"{cycle['max']:.0f} ticks"],
        ["tclone quality (mean)", f"{quality['mean']:.3f}"],
    ]
    funnel_rows = [[name, count] for name, count in funnel]

    text = "\n\n".join([
        profile_table,
        format_table(["pipeline stage", "clones reached"], funnel_rows,
                     title="Clone funnel", align_right=(1,)),
        format_table(["management metric", "value"], summary_rows,
                     title="Re-engineering summary"),
    ])
    emit("e11_reengineering", text, payload={
        "rework_rate": rework.rework_rate,
        "max_runs_on_one_material": rework.max_runs_on_one_material,
        "cycle_time": {name: value for name, value in cycle.items()},
        "quality": {name: value for name, value in quality.items()},
        "funnel": {name: count for name, count in funnel},
    })

    counts = [count for _name, count in funnel]
    assert counts[0] == _CONFIG.total_clones()
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert 0.0 <= rework.rework_rate < 0.5


def test_e11_profile_query_cost(benchmark, lab):
    """The full-history aggregation scan (the expensive Set-Query op)."""
    _db, chronicle = lab
    profiles = benchmark(chronicle.step_profiles)
    assert len(profiles) == 9


def test_e11_funnel_cost(benchmark, lab):
    _db, chronicle = lab
    funnel = benchmark(lambda: chronicle.funnel("clone", _PIPELINE))
    assert len(funnel) == len(_PIPELINE)


def test_e11_cycle_time_cost(benchmark, lab):
    db, chronicle = lab
    done = db.in_state("clone_done")
    stats = benchmark(lambda: chronicle.cycle_time_statistics(done))
    assert stats["count"] == len(done)
