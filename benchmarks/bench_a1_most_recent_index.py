"""A1 (ablation) — the most-recent index on a realistic workload.

E10 isolates the index on a synthetic material; this ablation runs the
full LabFlow-1 stream with the index disabled and measures what the
whole benchmark pays: object reads, elapsed time, and the Q2-heavy
query phase.  The index is the paper's "structures for rapid access
into history lists"; this is the experiment that justifies them.
"""

from __future__ import annotations

import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.operations import QueryRunner
from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=10, intervals=(0.5, 1.0))
_QUERIES = 300


def _run(use_index: bool) -> dict:
    db = LabBase(OStoreMM(), use_most_recent_index=use_index)
    workload = LabFlowWorkload(db, _CONFIG)
    started = time.perf_counter()
    workload.run_all()
    stream_sec = time.perf_counter() - started

    runner = QueryRunner(db, workload.registry, DeterministicRng(5))
    reads_before = db.storage.stats.objects_read
    started = time.perf_counter()
    for _ in range(_QUERIES):
        runner.run_q2()
    query_sec = time.perf_counter() - started
    return {
        "stream_sec": stream_sec,
        "q2_us": query_sec / _QUERIES * 1e6,
        "q2_reads": (db.storage.stats.objects_read - reads_before) / _QUERIES,
    }


@pytest.fixture(scope="module")
def ablation():
    return {"on": _run(True), "off": _run(False)}


def test_a1_emit_table(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        ["stream elapsed (s)", f"{ablation['on']['stream_sec']:.2f}",
         f"{ablation['off']['stream_sec']:.2f}"],
        ["Q2 latency (us)", f"{ablation['on']['q2_us']:.0f}",
         f"{ablation['off']['q2_us']:.0f}"],
        ["Q2 object reads", f"{ablation['on']['q2_reads']:.1f}",
         f"{ablation['off']['q2_reads']:.1f}"],
    ]
    text = format_table(
        ["metric", "index on", "index off"],
        rows,
        title="A1: most-recent index ablation (full LabFlow-1 stream)",
        align_right=(1, 2),
    )
    emit("a1_most_recent_index", text, payload=ablation)
    # the index must win the query side decisively
    assert ablation["off"]["q2_reads"] > ablation["on"]["q2_reads"] * 2


@pytest.mark.parametrize("use_index", [True, False], ids=["index_on", "index_off"])
def test_a1_q2_latency(benchmark, use_index):
    db = LabBase(OStoreMM(), use_most_recent_index=use_index)
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    runner = QueryRunner(db, workload.registry, DeterministicRng(5))
    benchmark(runner.run_q2)
