"""E10 (figure) — throughput vs accumulated history.

The event history grows forever; the figure shows whether query cost
grows with it.  With LabBase's most-recent index, Q2 latency stays flat
as a material's history lengthens; without it (the slow path the index
exists to avoid), Q2 degrades linearly.  Emitted as a text series — the
reproduction of the paper's scaling figure.
"""

from __future__ import annotations

import time

import pytest

from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table

from _common import emit

_HISTORY_LENGTHS = (8, 32, 128, 512)
_PROBES = 400


def _db_with_history(length: int, use_index: bool) -> tuple[LabBase, int]:
    db = LabBase(OStoreMM(), use_most_recent_index=use_index)
    db.define_material_class("m")
    db.define_step_class("s", ["a", "b"], ["m"])
    oid = db.create_material("m", "probe", 0)
    for valid_time in range(1, length + 1):
        db.record_step("s", valid_time, [oid], {"a": valid_time})
    return db, oid


def _probe_ms(db: LabBase, oid: int) -> float:
    started = time.perf_counter()
    for _ in range(_PROBES):
        db.most_recent(oid, "a")
    return (time.perf_counter() - started) * 1000 / _PROBES


def test_e10_emit_scaling_series(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    indexed_series = []
    scan_series = []
    for length in _HISTORY_LENGTHS:
        indexed_db, indexed_oid = _db_with_history(length, use_index=True)
        scan_db, scan_oid = _db_with_history(length, use_index=False)
        indexed_ms = _probe_ms(indexed_db, indexed_oid)
        scan_ms = _probe_ms(scan_db, scan_oid)
        indexed_series.append(indexed_ms)
        scan_series.append(scan_ms)
        rows.append([
            length,
            f"{indexed_ms * 1000:.1f}",
            f"{scan_ms * 1000:.1f}",
            f"{scan_ms / indexed_ms:.1f}x",
        ])
    text = format_table(
        ["history length", "Q2 with index (us)", "Q2 scan (us)", "scan penalty"],
        rows,
        title="E10: most-recent query cost vs history length",
        align_right=(1, 2, 3),
    )
    # a crude text plot of the scan series
    peak = max(scan_series)
    plot_lines = ["", "scan cost (each * ~ proportional):"]
    for length, value in zip(_HISTORY_LENGTHS, scan_series):
        bar = "*" * max(1, int(40 * value / peak))
        plot_lines.append(f"  {length:>4} | {bar}")
    plot_lines.append("index cost (flat):")
    for length, value in zip(_HISTORY_LENGTHS, indexed_series):
        bar = "*" * max(1, int(40 * value / peak))
        plot_lines.append(f"  {length:>4} | {bar}")
    emit("e10_history_scaling", text + "\n" + "\n".join(plot_lines), payload={
        str(length): {"indexed_ms": indexed_ms, "scan_ms": scan_ms}
        for length, indexed_ms, scan_ms in zip(
            _HISTORY_LENGTHS, indexed_series, scan_series
        )
    })

    # shape: scan grows superlinearly vs index across the sweep
    assert scan_series[-1] > scan_series[0] * 8
    assert indexed_series[-1] < indexed_series[0] * 4
    assert scan_series[-1] > indexed_series[-1] * 10


@pytest.mark.parametrize("length", _HISTORY_LENGTHS)
def test_e10_q2_with_index(benchmark, length):
    db, oid = _db_with_history(length, use_index=True)
    benchmark(lambda: db.most_recent(oid, "a"))


@pytest.mark.parametrize("length", _HISTORY_LENGTHS)
def test_e10_q2_scan(benchmark, length):
    db, oid = _db_with_history(length, use_index=False)
    benchmark(lambda: db.most_recent(oid, "a"))
