"""A7 — the mmap-backed sixth server version vs the buffered page server.

``MMapStoreSM`` keeps every ObjectStore policy and replaces only the
read path: page images are zero-copy views of a shared file mapping
instead of buffered ``pread`` copies.  This bench runs the warmed E8
operation mix on both backends over a real file, then measures the
read-path difference where it lives — cold history scans that demand-
fault every page — and pins that the *logical* work is identical: same
object reads, same faults, same write traffic, with only ``mapped_reads``
separating the two.

``repro bench record --schemas A7`` canonicalizes the artefact into the
committed ``BENCH_A7.json``, which CI gates with ``bench compare``.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.operations import QueryRunner
from repro.labbase import LabBase
from repro.storage import MMapStoreSM, ObjectStoreSM
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=10, intervals=(0.5, 1.0))
_WARMUP_ROUNDS = 20
_ROUNDS = 120
_COLD_ROUNDS = 60

CONTENDERS = [("OStore", ObjectStoreSM), ("mmap", MMapStoreSM)]


def _build(cls, directory):
    sm = cls(path=os.path.join(directory, "db.pages"), buffer_pages=512)
    db = LabBase(sm)
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    runner = QueryRunner(db, workload.registry, DeterministicRng(99))
    return sm, db, workload, runner


def _mix_once(db, workload, runner, times) -> None:
    """One round of the E8 mix: an update transaction + three queries."""
    _key, oid = workload.registry.by_class["tclone"][0]
    db.begin()
    db.record_step(
        "determine_sequence", next(times), [oid], {"quality": 0.5}
    )
    db.set_state(oid, "bench_state", next(times))
    db.commit()
    runner.run_q2()
    runner.run_q6()
    runner.run_q7()


def _run(cls) -> dict:
    with tempfile.TemporaryDirectory() as directory:
        sm, db, workload, runner = _build(cls, directory)
        times = itertools.count(5_000_000)
        for _ in range(_WARMUP_ROUNDS):
            _mix_once(db, workload, runner, times)

        before = sm.stats.snapshot()
        started = time.perf_counter()
        for _ in range(_ROUNDS):
            _mix_once(db, workload, runner, times)
        warm_elapsed = time.perf_counter() - started
        warm = sm.stats.delta(before)

        before = sm.stats.snapshot()
        started = time.perf_counter()
        for _ in range(_COLD_ROUNDS):
            sm.drop_buffer()
            runner.run_q7()
        cold_elapsed = time.perf_counter() - started
        cold = sm.stats.delta(before)
        sm.close()
    return {
        "mix_us": warm_elapsed / _ROUNDS * 1e6,
        "cold_scan_us": cold_elapsed / _COLD_ROUNDS * 1e6,
        "objects_read": warm["objects_read"],
        "objects_written": warm["objects_written"],
        "page_writes": warm["page_writes"],
        "cold_major_faults": cold["major_faults"],
        "cold_objects_read": cold["objects_read"],
        "cold_page_reads": cold["page_reads"],
        "warm_mapped_reads": warm["mapped_reads"],
        "cold_mapped_reads": cold["mapped_reads"],
    }


@pytest.fixture(scope="module")
def contenders():
    return {name: _run(cls) for name, cls in CONTENDERS}


def test_a7_emit_table(benchmark, contenders):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ostore, mm = contenders["OStore"], contenders["mmap"]
    cold_speedup = ostore["cold_scan_us"] / mm["cold_scan_us"]
    rows = [
        ["E8 mix round (us)", f"{ostore['mix_us']:.0f}", f"{mm['mix_us']:.0f}"],
        ["cold Q7 scan (us)", f"{ostore['cold_scan_us']:.0f}",
         f"{mm['cold_scan_us']:.0f}"],
        ["cold major faults", f"{ostore['cold_major_faults']}",
         f"{mm['cold_major_faults']}"],
        ["cold mapped reads", f"{ostore['cold_mapped_reads']}",
         f"{mm['cold_mapped_reads']}"],
        ["SM object reads", f"{ostore['objects_read']}",
         f"{mm['objects_read']}"],
        ["SM object writes", f"{ostore['objects_written']}",
         f"{mm['objects_written']}"],
        ["page writes", f"{ostore['page_writes']}", f"{mm['page_writes']}"],
        ["cold speedup (OStore/mmap)", "1.00x", f"{cold_speedup:.2f}x"],
    ]
    text = format_table(
        ["metric", "OStore", "mmap"],
        rows,
        title="A7: buffered vs memory-mapped read path (warm E8 mix + cold scans)",
        align_right=(1, 2),
    )
    emit(
        "a7_mmap_backend",
        text,
        payload={"OStore": ostore, "mmap": mm, "cold_speedup": cold_speedup},
    )

    # Identical policies above the read path ⟹ identical logical work.
    for counter in ("objects_read", "objects_written", "page_writes",
                    "cold_major_faults", "cold_objects_read"):
        assert ostore[counter] == mm[counter], counter
    # Only the read path differs: every mmap demand read is zero-copy,
    # the buffered contender never maps a page.
    assert mm["cold_mapped_reads"] > 0
    assert mm["cold_mapped_reads"] == mm["cold_major_faults"]
    assert ostore["cold_mapped_reads"] == ostore["warm_mapped_reads"] == 0


@pytest.mark.parametrize(
    "cls", [cls for _name, cls in CONTENDERS],
    ids=[name for name, _cls in CONTENDERS],
)
def test_a7_cold_history_scan_latency(benchmark, cls, tmp_path):
    sm, _db, _workload, runner = _build(cls, str(tmp_path))

    def cold_scan():
        sm.drop_buffer()
        runner.run_q7()

    benchmark(cold_scan)


@pytest.mark.parametrize(
    "cls", [cls for _name, cls in CONTENDERS],
    ids=[name for name, _cls in CONTENDERS],
)
def test_a7_update_transaction_latency(benchmark, cls, tmp_path):
    sm, db, workload, _runner = _build(cls, str(tmp_path))
    _key, oid = workload.registry.by_class["tclone"][0]
    times = itertools.count(6_000_000)

    def txn():
        db.begin()
        db.record_step(
            "determine_sequence", next(times), [oid], {"quality": 0.5}
        )
        db.set_state(oid, "bench_state", next(times))
        db.commit()

    benchmark(txn)
