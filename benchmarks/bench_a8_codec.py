"""A8 — the schema-aware record codec vs legacy pickle encodings.

``RecordCodec("labf")`` encodes the hot record kinds (``sm_step``,
``sm_material``, history chunks) with compact fixed layouts — interned
attribute names, varint integers, delta-coded oid lists — and falls
back to a tagged pickle for anything it does not recognise.  This bench
runs the E1 update stream and the warmed E8 operation mix under both
codecs on the same seeded workload and pins the two claims the PR
makes: the encoded history segment shrinks by at least 2x, and the
stream's record-encode wall time gets faster, not slower, for the
bytes it saves (total stream wall time is reported alongside; it is
dominated by codec-independent workload generation).

``repro bench record --schemas A8`` canonicalizes the artefact into the
committed ``BENCH_A8.json``, which CI gates with ``bench compare``.
"""

from __future__ import annotations

import itertools
import os
import tempfile
import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.operations import QueryRunner
from repro.labbase import SEG_HISTORY, LabBase
from repro.storage import ObjectStoreSM
from repro.storage.codec import CODEC_NAMES, RecordCodec
from repro.storage.report import segment_stats
from repro.storage.stats import StorageStats
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=10, intervals=(0.5, 1.0))
_WARMUP_ROUNDS = 20
_ROUNDS = 120
#: Stream repetitions per codec; the floor asserts on the best of these
#: (the first full run of a process pays allocator/import warmup that
#: would otherwise be charged to whichever codec happens to go first).
_STREAM_REPEATS = 3

#: The PR's acceptance floor: encoded history-segment bytes shrink >= 2x.
HISTORY_BYTES_FLOOR = 2.0

#: The wall-time floor: encoding the stream's closed-schema records
#: must be faster under ``labf`` than under the legacy pickle path.
#: Total stream wall time is reported too, but the stream is dominated
#: by codec-independent workload/engine work, so the floor is pinned on
#: the layer the knob actually swaps.
ENCODE_WALL_FLOOR = 1.0

#: The record kinds the fast path replaces; the open-schema fallback is
#: the byte-identical validate+pickle path in both modes.
_FAST_KINDS = ("sm_step", "sm_material", "history_node")

#: Interleaved repetitions of the encode race (min-of-N per codec).
_ENCODE_REPEATS = 9


def _mix_once(db, workload, runner, times) -> None:
    """One round of the E8 mix: an update transaction + three queries."""
    _key, oid = workload.registry.by_class["tclone"][0]
    db.begin()
    db.record_step(
        "determine_sequence", next(times), [oid], {"quality": 0.5}
    )
    db.set_state(oid, "bench_state", next(times))
    db.commit()
    runner.run_q2()
    runner.run_q6()
    runner.run_q7()


def _stream_once(codec: str, directory: str, trial: int):
    """One full E1 stream into a fresh database."""
    sm = ObjectStoreSM(
        path=os.path.join(directory, f"db-{trial}.pages"),
        buffer_pages=512,
        codec=codec,
    )
    db = LabBase(sm)
    workload = LabFlowWorkload(db, _CONFIG)
    started = time.perf_counter()
    workload.run_all()                          # E1: the update stream
    elapsed = time.perf_counter() - started
    return elapsed, sm, db, workload


def _run(codec: str) -> dict:
    with tempfile.TemporaryDirectory() as directory:
        stream_elapsed = None
        for trial in range(_STREAM_REPEATS):
            elapsed, sm, db, workload = _stream_once(codec, directory, trial)
            if stream_elapsed is None or elapsed < stream_elapsed:
                stream_elapsed = elapsed
            if trial < _STREAM_REPEATS - 1:
                sm.close()
        stream = sm.stats.snapshot()
        history = next(
            s for s in segment_stats(sm) if s.name == SEG_HISTORY
        )

        runner = QueryRunner(db, workload.registry, DeterministicRng(99))
        times = itertools.count(5_000_000)
        for _ in range(_WARMUP_ROUNDS):
            _mix_once(db, workload, runner, times)
        before = sm.stats.snapshot()
        started = time.perf_counter()
        for _ in range(_ROUNDS):
            _mix_once(db, workload, runner, times)
        mix_elapsed = time.perf_counter() - started
        mix = sm.stats.delta(before)
        size = sm.size_bytes()
        sm.close()
    return {
        "stream_us": stream_elapsed * 1e6,
        "mix_us": mix_elapsed / _ROUNDS * 1e6,
        "history_used_bytes": history.used_bytes,
        "history_pages": history.pages,
        "history_records": history.records,
        "db_size_bytes": size,
        "stream_bytes_written": stream["bytes_written"],
        "stream_page_writes": stream["page_writes"],
        "records_fast_path": stream["records_fast_path"],
        "records_fallback": stream["records_fallback"],
        "intern_table_size": stream["intern_table_size"],
        "objects_written": stream["objects_written"],
        "objects_read": stream["objects_read"],
        "mix_objects_read": mix["objects_read"],
        "mix_objects_written": mix["objects_written"],
    }


@pytest.fixture(scope="module")
def contenders():
    return {codec: _run(codec) for codec in CODEC_NAMES}


@pytest.fixture(scope="module")
def stream_records():
    """Every record the E1 stream encodes, captured off a live run."""
    captured: list = []
    with tempfile.TemporaryDirectory() as directory:
        sm = ObjectStoreSM(
            path=os.path.join(directory, "db.pages"),
            buffer_pages=512,
            codec="labf",
        )
        real = sm._codec.encode

        def spying(obj):
            captured.append(obj)
            return real(obj)

        sm._codec.encode = spying  # instance attr shadows the method
        db = LabBase(sm)
        LabFlowWorkload(db, _CONFIG).run_all()
        sm.close()
    return captured


@pytest.fixture(scope="module")
def encode_race(stream_records):
    """Wall time to encode the stream's closed-schema records per codec.

    The open-schema fallback runs the byte-identical validate+pickle
    path in both modes, so racing it would dilute the comparison with
    identical work; the race covers exactly the records the fast path
    replaces.  Interleaved min-of-N CPU time keeps scheduler noise out
    of the floor assertion.
    """
    fast = [
        record for record in stream_records
        if type(record) is dict and record.get("kind") in _FAST_KINDS
    ]
    racers = {name: RecordCodec(name, StorageStats()) for name in CODEC_NAMES}
    mins: dict = {name: None for name in CODEC_NAMES}
    for _ in range(_ENCODE_REPEATS):
        for name, codec in racers.items():
            started = time.process_time()
            for record in fast:
                codec.encode(record)
            elapsed = time.process_time() - started
            if mins[name] is None or elapsed < mins[name]:
                mins[name] = elapsed
    return {
        "fast_records": len(fast),
        "labf_encode_us": mins["labf"] * 1e6,
        "pickle_encode_us": mins["pickle"] * 1e6,
        "encode_speedup": mins["pickle"] / mins["labf"],
    }


def test_a8_emit_table(benchmark, contenders, encode_race):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    labf, pickled = contenders["labf"], contenders["pickle"]
    history_ratio = pickled["history_used_bytes"] / labf["history_used_bytes"]
    stream_speedup = pickled["stream_us"] / labf["stream_us"]
    encode_speedup = encode_race["encode_speedup"]
    rows = [
        ["E1 stream (ms)", f"{labf['stream_us'] / 1e3:.0f}",
         f"{pickled['stream_us'] / 1e3:.0f}"],
        ["fast-path record encode (ms)",
         f"{encode_race['labf_encode_us'] / 1e3:.1f}",
         f"{encode_race['pickle_encode_us'] / 1e3:.1f}"],
        ["E8 mix round (us)", f"{labf['mix_us']:.0f}",
         f"{pickled['mix_us']:.0f}"],
        ["history used bytes", f"{labf['history_used_bytes']:,}",
         f"{pickled['history_used_bytes']:,}"],
        ["history pages", f"{labf['history_pages']}",
         f"{pickled['history_pages']}"],
        ["database bytes", f"{labf['db_size_bytes']:,}",
         f"{pickled['db_size_bytes']:,}"],
        ["record bytes written", f"{labf['stream_bytes_written']:,}",
         f"{pickled['stream_bytes_written']:,}"],
        ["fast-path records", f"{labf['records_fast_path']:,}",
         f"{pickled['records_fast_path']:,}"],
        ["fallback records", f"{labf['records_fallback']:,}",
         f"{pickled['records_fallback']:,}"],
        ["history shrink (pickle/labf)", f"{history_ratio:.2f}x", "1.00x"],
        ["E1 stream speedup (pickle/labf)", f"{stream_speedup:.2f}x", "1.00x"],
        ["encode speedup (pickle/labf)", f"{encode_speedup:.2f}x", "1.00x"],
    ]
    text = format_table(
        ["metric", "labf", "pickle"],
        rows,
        title="A8: schema-aware codec vs legacy pickle (E1 stream + E8 mix)",
        align_right=(1, 2),
    )
    emit(
        "a8_codec",
        text,
        payload={
            "labf": labf,
            "pickle": pickled,
            "history_ratio": history_ratio,
            "stream_speedup": stream_speedup,
            "encode_speedup": encode_speedup,
            "fast_records_raced": encode_race["fast_records"],
        },
    )

    # Identical logical work: the codec changes bytes, never operations.
    # (history_records is deliberately absent: it counts *physical*
    # slots, and oversized records chunk into a codec-dependent number.)
    for counter in ("objects_read", "objects_written",
                    "mix_objects_read", "mix_objects_written"):
        assert labf[counter] == pickled[counter], counter
    # The fast path carries the stream: everything but the handful of
    # open-schema records (catalog, buckets, sets) takes a fixed layout.
    assert labf["records_fast_path"] > labf["records_fallback"]
    assert pickled["records_fast_path"] == 0
    assert labf["intern_table_size"] > 0
    # The PR's acceptance floors: >= 2x smaller history segment, and a
    # wall-time win on the stream's record encoding (see the floor's
    # comment for why total stream wall time is reported, not asserted).
    assert history_ratio >= HISTORY_BYTES_FLOOR, history_ratio
    assert encode_speedup > ENCODE_WALL_FLOOR, encode_speedup
    assert labf["db_size_bytes"] < pickled["db_size_bytes"]


@pytest.mark.parametrize("codec", list(CODEC_NAMES))
def test_a8_update_stream_latency(benchmark, codec, tmp_path):
    """Wall time of the full E1 stream under each codec."""
    rounds = itertools.count()

    def stream():
        # A distinct path per round: the store keeps sidecar state next
        # to the page file, so reusing a path would reopen stale meta.
        sm = ObjectStoreSM(
            path=os.path.join(str(tmp_path), f"{codec}-{next(rounds)}.pages"),
            buffer_pages=512,
            codec=codec,
        )
        db = LabBase(sm)
        LabFlowWorkload(db, _CONFIG).run_all()
        sm.close()

    benchmark.pedantic(stream, rounds=3, iterations=1)


@pytest.mark.parametrize("codec", list(CODEC_NAMES))
def test_a8_mix_round_latency(benchmark, codec, tmp_path):
    """One warmed E8 mix round under each codec."""
    sm = ObjectStoreSM(
        path=os.path.join(str(tmp_path), "db.pages"),
        buffer_pages=512,
        codec=codec,
    )
    db = LabBase(sm)
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    runner = QueryRunner(db, workload.registry, DeterministicRng(99))
    times = itertools.count(5_000_000)
    for _ in range(_WARMUP_ROUNDS):
        _mix_once(db, workload, runner, times)

    benchmark(lambda: _mix_once(db, workload, runner, times))
