"""E7 — the Section 9 workload contrast: LabFlow-1 vs TPC debit/credit.

"These benchmarks have one kind of material (bank accounts), and one
kind of event (change account balance).  They also have one kind of
query."  The bench runs both streams through the identical LabBase
stack with matched transaction counts and tabulates the structural
differences that make LabFlow-1 a different benchmark.
"""

from __future__ import annotations

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.baselines import (
    DebitCreditWorkload,
    labflow_stream_statistics,
)
from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=12, intervals=(0.5, 1.0))


@pytest.fixture(scope="module")
def contrast():
    labflow_db = LabBase(OStoreMM())
    labflow = LabFlowWorkload(labflow_db, _CONFIG)
    tallies = labflow.run_all()
    labflow_stats = labflow_stream_statistics(labflow_db, tallies)

    tpc_db = LabBase(OStoreMM())
    tpc = DebitCreditWorkload(tpc_db, seed=_CONFIG.seed, accounts=50)
    tpc.setup()
    tpc_result = tpc.run(transactions=labflow_stats["transactions"])
    return labflow_stats, tpc_result


def test_e7_emit_contrast_table(benchmark, contrast):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    labflow_stats, tpc_result = contrast
    rows = [
        ["transactions", labflow_stats["transactions"], tpc_result.transactions],
        ["material kinds used", labflow_stats["material_classes_used"],
         tpc_result.material_classes_used],
        ["event (step) kinds used", labflow_stats["step_classes_used"],
         tpc_result.step_classes_used],
        ["query kinds used", labflow_stats["query_kinds_used"],
         tpc_result.query_kinds_used],
        ["workflow states used", labflow_stats["states_used"],
         tpc_result.states_used],
        ["mean history length", f"{labflow_stats['mean_history_length']:.1f}",
         f"{tpc_result.mean_history_length:.1f}"],
        ["max history length", labflow_stats["max_history_length"],
         tpc_result.max_history_length],
    ]
    text = format_table(
        ["stream property", "LabFlow-1", "debit/credit"],
        rows,
        title="E7: graph-driven stream vs single-kind TPC stream",
        align_right=(1, 2),
    )
    emit("e7_tpc_contrast", text, payload={
        "labflow": dict(labflow_stats),
        "debit_credit": {
            "transactions": tpc_result.transactions,
            "material_classes_used": tpc_result.material_classes_used,
            "step_classes_used": tpc_result.step_classes_used,
            "query_kinds_used": tpc_result.query_kinds_used,
            "states_used": tpc_result.states_used,
            "mean_history_length": tpc_result.mean_history_length,
            "max_history_length": tpc_result.max_history_length,
        },
    })

    assert labflow_stats["material_classes_used"] >= 3
    assert tpc_result.material_classes_used == 1
    assert labflow_stats["query_kinds_used"] >= 5
    assert tpc_result.query_kinds_used == 1


def test_e7_debit_credit_throughput(benchmark):
    """Debit/credit transactions per second on the same stack."""
    db = LabBase(OStoreMM())
    workload = DebitCreditWorkload(db, seed=3, accounts=20)
    workload.setup()
    benchmark(lambda: workload.run(transactions=20))


def test_e7_labflow_throughput(benchmark):
    """LabFlow-1 transactions per second (same stack, richer stream)."""
    db = LabBase(OStoreMM())
    workload = LabFlowWorkload(
        db, BenchmarkConfig(clones_per_interval=2, intervals=(0.5,))
    )
    workload.setup_schema()
    counter = [0]

    def interval():
        counter[0] += 1
        return workload.run_interval(f"{counter[0]}")

    tally = benchmark(interval)
    assert tally.transactions > 0
