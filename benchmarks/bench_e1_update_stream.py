"""E1 — the paper's Section 10 results table.

Regenerates "Database Server Version / Intvl / Resource": the identical
seeded LabFlow-1 stream against OStore, Texas+TC, Texas, OStore-mm and
Texas-mm, with elapsed / user cpu / sys cpu / majflt / size(bytes) per
interval 0.5X..2.0X.

Attested anchor (the paper's quoted 0.5X row): elapsed within a few
percent across versions (the stream is CPU-bound), Texas-family size
~1.45x OStore, OStore fewest faults among persistent versions.
"""

from __future__ import annotations

import pytest

from repro.benchmark import (
    BenchmarkConfig,
    SERVER_ORDER,
    render_comparison,
    render_stats,
    render_workload,
    run_comparison,
    run_server,
    server_spec,
)

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=25, buffer_pages=192)


@pytest.mark.parametrize("server", SERVER_ORDER)
def test_e1_stream_per_server(benchmark, server, tmp_path):
    """Per-server wall time of the full stream (the elapsed column)."""
    config = _CONFIG.with_(db_dir=str(tmp_path))

    def run():
        return run_server(server_spec(server), config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.total_usage().elapsed_sec > 0
    assert len(result.intervals) == len(config.intervals)


def test_e1_full_table(benchmark, tmp_path):
    """The complete five-version table, plus the counters behind it."""
    config = _CONFIG.with_(db_dir=str(tmp_path))
    comparison = benchmark.pedantic(
        run_comparison, args=(config,), rounds=1, iterations=1
    )

    from repro.benchmark.analysis import check_shapes, failed_checks, render_checks
    from repro.benchmark.figures import growth_chart, interval_series_chart

    checks = check_shapes(comparison)
    text = "\n\n".join(
        [
            render_comparison(comparison),
            render_stats(comparison),
            render_workload(comparison.runs[0]),
            interval_series_chart(comparison, "elapsed_sec",
                                  "elapsed seconds per interval"),
            growth_chart(comparison),
            "Reproduction claims:\n" + render_checks(checks),
        ]
    )
    emit("e1_update_stream", text, payload={
        run.server: {"counters": run.final_stats, "gauges": run.final_gauges}
        for run in comparison.runs
    })
    assert not failed_checks(checks), render_checks(failed_checks(checks))

    # shape assertions from the attested row
    final = config.interval_labels[-1]
    ostore = comparison.run_for("OStore").usage_for(final)
    texas = comparison.run_for("Texas").usage_for(final)
    texas_tc = comparison.run_for("Texas+TC").usage_for(final)
    # Strictly larger with the paper's 2.2x ceiling: the schema-aware
    # codec narrows the power-of-two charge waste below the old 1.2x
    # floor (see claim S2 in repro.benchmark.analysis).
    assert 1.0 < texas.size_bytes / ostore.size_bytes < 2.2
    assert 1.0 < texas_tc.size_bytes / ostore.size_bytes < 2.2
    for name in ("OStore-mm", "Texas-mm"):
        assert comparison.run_for(name).total_usage().majflt == 0
    # identical logical workload everywhere
    reads = {run.final_stats["objects_read"] for run in comparison.runs}
    assert len(reads) == 1
