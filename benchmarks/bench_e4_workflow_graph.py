"""E4 — the Appendix B workflow-graph figure.

Emits the genome-mapping graph (states, steps, failure edges) and
measures workflow-transition throughput — the rate at which the engine
can move materials through the graph against LabBase.
"""

from __future__ import annotations

from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine, build_genome_workflow

from _common import emit


def test_e4_emit_graph_figure(benchmark):
    graph = benchmark(build_genome_workflow)
    stats_rows = [
        ["states", len(graph.states())],
        ["transitions", len(graph.spec.transitions)],
        ["failure edges", sum(1 for t in graph.spec.transitions if t.fail_state)],
        ["has re-queue cycle", graph.has_cycles()],
        ["longest success path", graph.longest_acyclic_path()],
        ["initial states", ", ".join(graph.initial_states())],
        ["terminal states", ", ".join(graph.spec.terminal_states)],
    ]
    text = graph.to_text() + "\n\n" + format_table(
        ["property", "value"], stats_rows, title="Graph properties",
    )
    emit("e4_workflow_graph", text, payload={
        str(name): value for name, value in stats_rows
    })
    assert graph.has_cycles()


def test_e4_transition_throughput(benchmark):
    """Workflow steps per second through LabBase (main-memory store)."""
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(3))
    engine.install_schema()

    def feed_and_pump():
        for _ in range(2):
            engine.create_material("clone")
        return engine.pump(50)

    executed = benchmark(feed_and_pump)
    assert executed > 0


def test_e4_single_advance(benchmark):
    """Latency of one workflow step (records step + moves state)."""
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(3))
    engine.install_schema()

    def one_step():
        oid = engine.create_material("clone")
        return engine.advance(oid)

    event = benchmark(one_step)
    assert event is not None and event.step_class == "receive_clone"
