"""Shared plumbing for the experiment benches.

Every bench regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timings, each bench *emits* its rendered artefact:
printed to stdout (visible with ``pytest -s``) and written to
``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the reproduced tables on disk.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> str:
    """Print an artefact and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
    return path
