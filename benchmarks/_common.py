"""Shared plumbing for the experiment benches.

Every bench regenerates one of the paper's tables or figures.  Besides
the pytest-benchmark timings, each bench *emits* its rendered artefact:
printed to stdout (visible with ``pytest -s``) and written to
``benchmarks/results/<name>.txt`` so a full ``pytest benchmarks/
--benchmark-only`` run leaves the reproduced tables on disk.

Every bench also passes its structured numbers as ``payload``, which
lands next to the text as ``benchmarks/results/<name>.json`` — the
machine-readable half that ``repro bench record`` / ``compare`` and the
baseline pipeline (``BENCH_*.json`` at the repo root) consume.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str, payload: object = None) -> str:
    """Print an artefact and persist it under benchmarks/results/.

    ``text`` goes to ``<name>.txt``; a non-None ``payload`` additionally
    goes to ``<name>.json`` (sorted keys, so the artefact is diffable).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    if payload is not None:
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
    return path
