"""A2 (ablation) — buffer-pool size sweep.

On 1996 hardware the pool/RAM size determined how much locality
mattered; this sweep varies the simulated pool and shows where each
server version's working set stops fitting.  The hot working set of the
clustered store (OStore) fits in far fewer pages than Texas's
interleaved layout — the same effect as E5, parameterized by memory.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload, server_spec
from repro.labbase import LabBase
from repro.util.fmt import format_table

from _common import emit

_POOL_SIZES = (16, 48, 128, 384)
_SERVERS = ("OStore", "Texas")


def _faults(server: str, pool_pages: int, tmp_path: str) -> int:
    config = BenchmarkConfig(
        clones_per_interval=15,
        intervals=(0.5,),
        buffer_pages=pool_pages,
        queries_per_intake=0,
        db_dir=os.path.join(tmp_path, f"{server.replace('+', '_')}_{pool_pages}"),
    )
    os.makedirs(config.db_dir, exist_ok=True)
    sm = server_spec(server).make(config)
    db = LabBase(sm)
    workload = LabFlowWorkload(db, config)
    workload.run_all()
    sm.drop_buffer()
    before = sm.stats.major_faults
    # the hot query mix of E5
    for class_name, items in workload.registry.by_class.items():
        for key, oid in items:
            db.lookup(class_name, key)
            db.state_of(oid)
    faults = sm.stats.major_faults - before
    sm.close()
    return faults


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    tmp_path = str(tmp_path_factory.mktemp("a2"))
    return {
        (server, pool): _faults(server, pool, tmp_path)
        for server in _SERVERS
        for pool in _POOL_SIZES
    }


def test_a2_emit_sweep_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for pool in _POOL_SIZES:
        row = [pool] + [f"{sweep[(server, pool)]:,}" for server in _SERVERS]
        rows.append(row)
    text = format_table(
        ["pool pages"] + list(_SERVERS),
        rows,
        title="A2: cold-cache hot-query faults vs buffer-pool size",
        align_right=(0, 1, 2),
    )
    emit("a2_buffer_sweep", text, payload={
        server: {str(pool): sweep[(server, pool)] for pool in _POOL_SIZES}
        for server in _SERVERS
    })

    # monotone: more memory, fewer or equal faults
    for server in _SERVERS:
        series = [sweep[(server, pool)] for pool in _POOL_SIZES]
        assert all(a >= b for a, b in zip(series, series[1:])), (server, series)
    # clustering dominates at every pool size
    for pool in _POOL_SIZES:
        assert sweep[("OStore", pool)] <= sweep[("Texas", pool)], pool


@pytest.mark.parametrize("pool_pages", _POOL_SIZES)
def test_a2_stream_time_vs_pool(benchmark, pool_pages, tmp_path):
    """Stream wall time as the pool shrinks (OStore)."""
    config = BenchmarkConfig(
        clones_per_interval=6,
        intervals=(0.5,),
        buffer_pages=pool_pages,
        db_dir=str(tmp_path / str(pool_pages)),
        queries_per_intake=0,
    )
    os.makedirs(config.db_dir, exist_ok=True)

    def run():
        sm = server_spec("OStore").make(config)
        db = LabBase(sm)
        LabFlowWorkload(db, config).run_all()
        sm.close()

    benchmark.pedantic(run, rounds=1, iterations=1)
