"""E8 — per-operation cost of the Section 8 repertoire (U1-U4, Q1-Q7).

Each operation is benchmarked in isolation against a warmed LabBase on
the ObjectStore-style store, giving the per-operation latency profile
behind the aggregate interval numbers of E1.
"""

from __future__ import annotations

import itertools

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.operations import QueryRunner
from repro.labbase import LabBase
from repro.storage import ObjectStoreSM
from repro.util.rng import DeterministicRng

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=10, intervals=(0.5, 1.0))


@pytest.fixture(scope="module")
def warm():
    """A populated in-memory-paged LabBase plus query infrastructure."""
    sm = ObjectStoreSM(buffer_pages=512)
    db = LabBase(sm)
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    runner = QueryRunner(db, workload.registry, DeterministicRng(99))
    return db, workload, runner


_fresh_ids = itertools.count(1)


def test_e8_u1_record_step(benchmark, warm):
    db, workload, _runner = warm
    _key, oid = workload.registry.by_class["tclone"][0]
    times = itertools.count(1_000_000)
    benchmark(lambda: db.record_step(
        "determine_sequence", next(times), [oid], {"quality": 0.5}
    ))


def test_e8_u2_create_material(benchmark, warm):
    db, _workload, _runner = warm
    times = itertools.count(2_000_000)
    benchmark(lambda: db.create_material(
        "clone", f"bench-{next(_fresh_ids):08d}", next(times)
    ))


def test_e8_u3_state_transition(benchmark, warm):
    db, workload, _runner = warm
    _key, oid = workload.registry.by_class["tclone"][1]
    times = itertools.count(3_000_000)
    states = itertools.cycle(["bench_state_a", "bench_state_b"])
    benchmark(lambda: db.set_state(oid, next(states), next(times)))


def test_e8_u4_schema_change(benchmark, warm):
    db, _workload, _runner = warm
    attrs = itertools.count(1)
    # bounded rounds: every call adds a version, and letting the
    # auto-calibrator run thousands of rounds would grow the catalog
    # itself into the thing being measured
    benchmark.pedantic(
        lambda: db.define_step_class(
            "determine_sequence",
            ["sequence", "quality", "read_length", f"extra_{next(attrs)}"],
            ["tclone"],
        ),
        rounds=20,
        iterations=1,
    )


def test_e8_q1_lookup(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q1)


def test_e8_q2_most_recent(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q2)


def test_e8_q3_state_set(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q3)


def test_e8_q4_hit_list(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q4)


def test_e8_q5_counting(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q5)


def test_e8_q6_report(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q6)


def test_e8_q7_history_scan(benchmark, warm):
    _db, _workload, runner = warm
    benchmark(runner.run_q7)


def test_e8_emit_note(benchmark, warm):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    db, _workload, _runner = warm
    emit("e8_operation_mix",
         "E8 per-operation latencies are in the pytest-benchmark table\n"
         "(test_e8_u* are updates U1-U4; test_e8_q* are queries Q1-Q7).\n"
         "Expected profile: U1/U2 dominated by record+index writes; Q1-Q3\n"
         "near-constant (hash bucket / hot index / set read); Q6 ~ cohort\n"
         "size x Q2; Q7 linear in history length.",
         payload={"counters": db.storage.stats.snapshot()})
