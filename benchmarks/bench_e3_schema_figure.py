"""E3 — Figure 1: the two-level EER benchmark schema.

Emits the EER rendering for the genome workflow and measures catalog
operations: registering the full schema and the version lookups queries
do on every step decode.
"""

from __future__ import annotations

from repro.benchmark.schema_report import eer_text, schema_statistics
from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table
from repro.workflow import WorkflowEngine, build_genome_spec, build_genome_workflow
from repro.util.rng import DeterministicRng

from _common import emit


def test_e3_emit_eer_figure(benchmark):
    spec = build_genome_spec()
    text = benchmark(lambda: eer_text(spec))
    stats = schema_statistics(spec)
    table = format_table(
        ["schema element", "count"],
        sorted(stats.items()),
        align_right=(1,),
        title="Schema statistics",
    )
    emit("e3_schema_figure", text + "\n\n" + table, payload=dict(stats))
    assert stats["material_classes"] == 3
    assert stats["step_classes"] == 9


def test_e3_full_schema_registration(benchmark):
    """Cost of installing the whole workflow schema into LabBase."""

    def install():
        db = LabBase(OStoreMM())
        engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(1))
        engine.install_schema()
        return db

    db = benchmark(install)
    assert len(db.catalog.step_classes) == 9


def test_e3_version_lookup(benchmark):
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(1))
    engine.install_schema()
    version_id = db.catalog.step_class("determine_sequence").current.version_id
    result = benchmark(lambda: db.catalog.step_version(version_id))
    assert result.name == "determine_sequence"
