"""E2 — Table 1: the fixed three-class storage schema.

Emits the table and measures the per-record storage cost of each
storage class (sm_step, sm_material, material_set) — the overhead the
wrapper pays for running workflow on top of a plain object store.
"""

from __future__ import annotations

import pytest

from repro.labbase import TABLE_1, model
from repro.storage import ObjectStoreSM
from repro.storage.serializer import record_size
from repro.util.fmt import format_table

from _common import emit


def _sample_records() -> dict[str, dict]:
    material = model.make_material("tclone", "tc-000123", 17)
    model.update_recent(material, "quality", 17, 901, 0.93)
    model.update_recent(material, "read_length", 17, 901, 431)
    step = model.make_step(
        class_version=5,
        valid_time=17,
        results=[("quality", 0.93), ("read_length", 431), ("sequence", "ACGT" * 100)],
        involves=[77],
    )
    material_set = model.make_material_set("state:waiting_for_sequencing")
    material_set["members"] = list(range(1000, 1040))
    return {"sm_step": step, "sm_material": material, "material_set": material_set}


def test_e2_table_1_and_record_sizes(benchmark):
    records = _sample_records()

    sm = ObjectStoreSM()

    def write_all():
        return [sm.allocate_write(record) for record in records.values()]

    benchmark(write_all)

    rows = [
        [name, f"{record_size(record):,} B"]
        for name, record in records.items()
    ]
    text = TABLE_1 + "\n\n" + format_table(
        ["storage class", "typical record size"], rows, align_right=(1,),
        title="Representative serialized record sizes",
    )
    emit("e2_storage_schema", text, payload={
        name: record_size(record) for name, record in records.items()
    })
    sm.close()


@pytest.mark.parametrize("name", ["sm_step", "sm_material", "material_set"])
def test_e2_per_class_write_cost(benchmark, name):
    """Write cost per storage class (steps dominate the stream)."""
    record = _sample_records()[name]
    sm = ObjectStoreSM()
    benchmark(lambda: sm.allocate_write(record))
    sm.close()
