"""A6 (ablation) — group commit in the served session layer.

The page-server story of Section 10 only pays off if concurrent
sessions' commits can share their durability cost.  This ablation
drives an E8-style mix (record_step + set_state + a most_recent read
per round) through ``LabFlowService`` at 1, 2, 4 and 8 concurrent
sessions — units interleaved round-robin, each session on its own
page — with group commit on (group cap = session count) and off (one
storage commit per update unit).  Reported per setting: wall clock per
update unit, storage commits, mean group width, vectored I/O batches
and checkpoint bytes per unit.

The acceptance floor pinned here (and in tests/test_server.py): at four
sessions, grouping must make *strictly* fewer io_batches + meta bytes
per committed step than the sequential per-unit baseline.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.labbase import LabBase
from repro.server import LabFlowService, LocalClient, bootstrap_schema
from repro.storage import ObjectStoreSM
from repro.util.fmt import format_table

from _common import emit

_SESSION_COUNTS = (1, 2, 4, 8)
_ROUNDS = 24
_SPREAD_FILLERS = 40


def _spread_sessions(clients):
    """One material per session, each on its own page (filler-padded),
    so the sweep measures commit amortization, not page contention."""
    tick = 0
    oids = []
    for index, client in enumerate(clients):
        tick += 1
        oids.append(
            client.create_material(
                "clone", f"{client.session}-m", tick, state="active"
            )
        )
        for filler in range(_SPREAD_FILLERS):
            tick += 1
            clients[0].create_material("clone", f"fill-{index}-{filler}", tick)
    return oids, tick


def _run(sessions: int, group: bool) -> dict:
    with tempfile.TemporaryDirectory() as workdir:
        sm = ObjectStoreSM(
            path=os.path.join(workdir, "db.pages"), checkpoint_every=1
        )
        db = LabBase(sm)
        bootstrap_schema(db)
        service = LabFlowService(
            db, group_commit=group, group_cap=sessions, retry_backoff=0.0
        )
        clients = [LocalClient(service, f"c{i}") for i in range(sessions)]
        oids, tick = _spread_sessions(clients)
        service.drain()

        before = sm.stats.snapshot()
        units = 0
        started = time.perf_counter()
        for _round in range(_ROUNDS):
            # round-robin interleave: every session contributes one
            # update unit before any session contributes its next
            for client, oid in zip(clients, oids):
                tick += 1
                client.record_step("measure", tick, [oid], {"value": tick})
                units += 1
            for client, oid in zip(clients, oids):
                tick += 1
                client.set_state(oid, "busy" if tick % 2 else "active", tick)
                units += 1
            for client, oid in zip(clients, oids):
                client.most_recent(oid, "value")
        service.drain()
        elapsed = time.perf_counter() - started
        delta = sm.stats.delta(before)

        service.shutdown()
        assert db.verify_storage().ok
        sm.close()

    groups = delta["group_commits"]
    return {
        "sessions": sessions,
        "group_commit": group,
        "units": units,
        "unit_us": elapsed / units * 1e6,
        "commits": delta["commits"],
        "group_commits": groups,
        "group_width": delta["sessions_per_group"] / groups if groups else 0.0,
        "commit_stalls": delta["commit_stalls"],
        "io_batches": delta["io_batches"],
        "meta_bytes_written": delta["meta_bytes_written"],
        "page_writes": delta["page_writes"],
        "cost_per_unit": (delta["io_batches"] + delta["meta_bytes_written"])
        / units,
    }


@pytest.fixture(scope="module")
def sweep():
    return {
        (sessions, group): _run(sessions, group)
        for sessions in _SESSION_COUNTS
        for group in (True, False)
    }


def test_a6_emit_table(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for sessions in _SESSION_COUNTS:
        for group in (True, False):
            run = sweep[(sessions, group)]
            rows.append(
                [
                    f"{sessions}",
                    "on" if group else "off",
                    f"{run['unit_us']:.0f}",
                    f"{run['commits']}",
                    f"{run['group_width']:.2f}",
                    f"{run['commit_stalls']}",
                    f"{run['io_batches']}",
                    f"{run['meta_bytes_written']}",
                    f"{run['cost_per_unit']:.1f}",
                ]
            )
    text = format_table(
        [
            "sessions",
            "group",
            "us/unit",
            "commits",
            "width",
            "stalls",
            "io_batches",
            "meta bytes",
            "cost/unit",
        ],
        rows,
        title="A6: group commit across concurrent sessions (E8-style mix)",
        align_right=(2, 3, 4, 5, 6, 7, 8),
    )
    payload = {
        f"s{sessions}_{'on' if group else 'off'}": run
        for (sessions, group), run in sweep.items()
    }
    emit("a6_group_commit", text, payload=payload)

    # The acceptance floor: at 4 concurrent sessions, group commit must
    # cost strictly less I/O per committed step than per-unit commits.
    grouped, sequential = sweep[(4, True)], sweep[(4, False)]
    assert grouped["units"] == sequential["units"]
    assert grouped["cost_per_unit"] < sequential["cost_per_unit"], (
        f"grouped {grouped['cost_per_unit']:.1f} !< "
        f"sequential {sequential['cost_per_unit']:.1f}"
    )
    assert grouped["meta_bytes_written"] < sequential["meta_bytes_written"]
    assert grouped["io_batches"] <= sequential["io_batches"]
    assert grouped["commits"] < sequential["commits"]

    # grouping must actually batch once there is someone to batch with,
    # and the batch should widen with the session count
    assert sweep[(2, True)]["group_width"] > 1.0
    assert sweep[(8, True)]["group_width"] > sweep[(2, True)]["group_width"]
    for sessions in _SESSION_COUNTS:
        assert sweep[(sessions, False)]["group_width"] <= 1.0


@pytest.mark.parametrize("group", [True, False], ids=["group_on", "group_off"])
def test_a6_four_session_unit_latency(benchmark, group):
    with tempfile.TemporaryDirectory() as workdir:
        sm = ObjectStoreSM(
            path=os.path.join(workdir, "db.pages"), checkpoint_every=1
        )
        db = LabBase(sm)
        bootstrap_schema(db)
        service = LabFlowService(
            db, group_commit=group, group_cap=4, retry_backoff=0.0
        )
        clients = [LocalClient(service, f"c{i}") for i in range(4)]
        oids, tick = _spread_sessions(clients)
        service.drain()
        state = {"tick": tick, "turn": 0}

        def unit():
            state["tick"] += 1
            state["turn"] = (state["turn"] + 1) % 4
            clients[state["turn"]].record_step(
                "measure", state["tick"], [oids[state["turn"]]],
                {"value": state["tick"]},
            )

        benchmark(unit)
        service.shutdown()
        sm.close()
