"""A4 (ablation) — the transactional object cache.

Every LabBase operation deserializes the objects it touches; without a
cache each touch pays the full storage-manager round trip (page fetch +
decode) again.  This ablation runs the warmed E8 operation mix — a
transaction of updates plus the Q2/Q6/Q7 query families — with the
cache at its default size and with capacity 0, and reports the wall
clock, the logical-read split (hits vs misses) and the write
coalescing.  Capacity 0 keeps the identical unit-of-work write path, so
the two runs differ only in speed (see test_objcache_equivalence.py).
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.operations import QueryRunner
from repro.labbase import LabBase
from repro.storage import DEFAULT_CACHE_OBJECTS, ObjectStoreSM
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=10, intervals=(0.5, 1.0))
_WARMUP_ROUNDS = 20
_ROUNDS = 120
_SPEEDUP_FLOOR = 1.3


def _build(capacity: int):
    sm = ObjectStoreSM(buffer_pages=512)
    db = LabBase(sm, object_cache=capacity)
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    runner = QueryRunner(db, workload.registry, DeterministicRng(99))
    return sm, db, workload, runner


def _mix_once(db, workload, runner, times) -> None:
    """One round of the E8 mix: an update transaction + three queries."""
    _key, oid = workload.registry.by_class["tclone"][0]
    db.begin()
    db.record_step(
        "determine_sequence", next(times), [oid], {"quality": 0.5}
    )
    db.set_state(oid, "bench_state", next(times))
    db.commit()
    runner.run_q2()
    runner.run_q6()
    runner.run_q7()


def _run(capacity: int) -> dict:
    sm, db, workload, runner = _build(capacity)
    times = itertools.count(5_000_000)
    for _ in range(_WARMUP_ROUNDS):
        _mix_once(db, workload, runner, times)
    before = sm.stats.snapshot()
    started = time.perf_counter()
    for _ in range(_ROUNDS):
        _mix_once(db, workload, runner, times)
    elapsed = time.perf_counter() - started
    delta = sm.stats.delta(before)
    reads = delta["cache_hits"] + delta["cache_misses"]
    return {
        "capacity": capacity,
        "mix_us": elapsed / _ROUNDS * 1e6,
        "cache_hits": delta["cache_hits"],
        "cache_misses": delta["cache_misses"],
        "cache_coalesced": delta["cache_coalesced"],
        "hit_ratio": delta["cache_hits"] / reads if reads else 0.0,
        "objects_read": delta["objects_read"],
        "objects_written": delta["objects_written"],
    }


@pytest.fixture(scope="module")
def ablation():
    return {"on": _run(DEFAULT_CACHE_OBJECTS), "off": _run(0)}


def test_a4_emit_table(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    on, off = ablation["on"], ablation["off"]
    speedup = off["mix_us"] / on["mix_us"]
    rows = [
        ["E8 mix round (us)", f"{on['mix_us']:.0f}", f"{off['mix_us']:.0f}"],
        ["cache hits", f"{on['cache_hits']}", f"{off['cache_hits']}"],
        ["cache misses", f"{on['cache_misses']}", f"{off['cache_misses']}"],
        ["hit ratio", f"{on['hit_ratio']:.3f}", f"{off['hit_ratio']:.3f}"],
        ["writes coalesced", f"{on['cache_coalesced']}",
         f"{off['cache_coalesced']}"],
        ["SM object reads", f"{on['objects_read']}", f"{off['objects_read']}"],
        ["SM object writes", f"{on['objects_written']}",
         f"{off['objects_written']}"],
        ["speedup (off/on)", f"{speedup:.2f}x", "1.00x"],
    ]
    text = format_table(
        ["metric", "cache on", "cache off"],
        rows,
        title="A4: object cache ablation (warm E8 operation mix)",
        align_right=(1, 2),
    )
    emit("a4_object_cache", text, payload={"on": on, "off": off, "speedup": speedup})

    # the warm mix must be decisively cheaper with the cache
    assert speedup >= _SPEEDUP_FLOOR, (
        f"object cache speedup {speedup:.2f}x below {_SPEEDUP_FLOOR}x floor"
    )
    # warm means warm: almost every logical read served from the cache.
    # Capacity 0 still hits its own dirty buffer inside a transaction
    # (the unit of work is visible to reads), so "off" is low, not zero.
    assert on["hit_ratio"] > 0.95
    assert off["hit_ratio"] < 0.25
    # the transaction rewrites the material record more than once per
    # round, so writes coalesce — and they coalesce *identically* in
    # both settings, because capacity 0 disables read caching only, not
    # the unit of work.  Identical SM write traffic is what makes the
    # ablation honest (the on-disk bytes match; see the equivalence
    # property test).
    assert on["cache_coalesced"] > 0
    assert on["cache_coalesced"] == off["cache_coalesced"]
    assert on["objects_written"] == off["objects_written"]


@pytest.mark.parametrize(
    "capacity",
    [DEFAULT_CACHE_OBJECTS, 0],
    ids=["cache_on", "cache_off"],
)
def test_a4_q7_history_scan_latency(benchmark, capacity):
    _sm, db, workload, runner = _build(capacity)
    runner.run_q7()  # warm the scanned chain
    benchmark(runner.run_q7)


@pytest.mark.parametrize(
    "capacity",
    [DEFAULT_CACHE_OBJECTS, 0],
    ids=["cache_on", "cache_off"],
)
def test_a4_update_transaction_latency(benchmark, capacity):
    _sm, db, workload, _runner = _build(capacity)
    _key, oid = workload.registry.by_class["tclone"][0]
    times = itertools.count(6_000_000)

    def txn():
        db.begin()
        db.record_step(
            "determine_sequence", next(times), [oid], {"quality": 0.5}
        )
        db.set_state(oid, "bench_state", next(times))
        db.commit()

    benchmark(txn)
