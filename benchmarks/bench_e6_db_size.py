"""E6 — the database-size comparison (the paper's size column).

Attested numbers at interval 0.5X: OStore 16,629,760 B; Texas+TC
24,281,088 B; Texas 24,600,576 B — i.e. the Texas family ~1.46-1.48x
the ObjectStore size, caused by Texas's power-of-two allocation cells.
We verify the ratio band and decompose where the bytes go.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload, server_spec
from repro.labbase import LabBase
from repro.storage.page import PAGE_SIZE
from repro.util.fmt import format_bytes, format_table

from _common import emit

_SERVERS = ("OStore", "Texas+TC", "Texas")
_CONFIG = BenchmarkConfig(
    clones_per_interval=25,
    intervals=(0.5,),
    queries_per_intake=0,  # load phase only, like the paper's size column
)

#: Paper-attested sizes at 0.5X (bytes).
PAPER_SIZES = {"OStore": 16_629_760, "Texas+TC": 24_281_088, "Texas": 24_600_576}


def _load(server: str, tmp_path) -> tuple[int, int, int]:
    config = _CONFIG.with_(db_dir=os.path.join(tmp_path, server.replace("+", "_")))
    os.makedirs(config.db_dir, exist_ok=True)
    sm = server_spec(server).make(config)
    db = LabBase(sm)
    LabFlowWorkload(db, config).run_all()
    size = sm.size_bytes()
    pages = sm._disk.page_count
    payload = sm.stats.bytes_written
    sm.close()
    return size, pages, payload


@pytest.fixture(scope="module")
def sizes(tmp_path_factory):
    tmp_path = str(tmp_path_factory.mktemp("e6"))
    return {server: _load(server, tmp_path) for server in _SERVERS}


def test_e6_emit_size_table(benchmark, sizes):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ostore_size = sizes["OStore"][0]
    rows = []
    for server in _SERVERS:
        size, pages, payload = sizes[server]
        rows.append([
            server,
            f"{size:,}",
            format_bytes(size),
            f"{pages:,}",
            f"{size / ostore_size:.2f}x",
            f"{PAPER_SIZES[server] / PAPER_SIZES['OStore']:.2f}x",
        ])
    text = format_table(
        ["version", "size (bytes)", "human", "pages", "ratio", "paper ratio"],
        rows,
        title=f"E6: database size after the 0.5X load (page size {PAGE_SIZE} B)",
        align_right=(1, 2, 3, 4, 5),
    )
    emit("e6_db_size", text, payload={
        server: {
            "size_bytes": sizes[server][0],
            "pages": sizes[server][1],
            "payload_bytes": sizes[server][2],
        }
        for server in _SERVERS
    })

    for server in ("Texas", "Texas+TC"):
        ratio = sizes[server][0] / ostore_size
        paper_ratio = PAPER_SIZES[server] / PAPER_SIZES["OStore"]
        assert abs(ratio - paper_ratio) < 0.55, (server, ratio, paper_ratio)


def test_e6_fragmentation_is_the_cause(benchmark, sizes):
    """Same logical payload everywhere; only allocation differs."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    payloads = {server: sizes[server][2] for server in _SERVERS}
    # identical stream => identical serialized payload bytes
    assert len(set(payloads.values())) == 1, payloads
    # so the size gap is pure allocation overhead
    assert sizes["Texas"][1] > sizes["OStore"][1]
