"""E12 — the database build phase: bulk load vs per-operation API.

LabFlow-1 runs start by building an initial database.  This bench
measures that phase both ways — the one-at-a-time API the stream uses
and the batched :class:`~repro.labbase.bulkload.BulkLoader` — on the
ObjectStore-style store, reporting wall time and object writes.  The
loaded databases are verified logically identical before timing.
"""

from __future__ import annotations

import time

import pytest

from repro.labbase import LabBase
from repro.labbase.bulkload import BulkLoader
from repro.storage import ObjectStoreSM
from repro.util.fmt import format_table

from _common import emit

_SCALES = (100, 400)


def _schema(db: LabBase) -> None:
    db.define_material_class("clone")
    db.define_step_class(
        "receive_clone", ["source", "insert_length"], ["clone"]
    )
    db.define_step_class("determine_sequence", ["sequence", "quality"], ["clone"])


def _load_api(db: LabBase, count: int) -> None:
    for index in range(count):
        oid = db.create_material("clone", f"c-{index:06d}", index, state="arrived")
        db.record_step("receive_clone", index, [oid],
                       {"source": "lab", "insert_length": index})
        db.record_step("determine_sequence", index + 1, [oid],
                       {"sequence": "ACGT" * 50, "quality": 0.9})


def _load_bulk(db: LabBase, count: int) -> None:
    loader = BulkLoader(db)
    for index in range(count):
        ref = loader.add_material("clone", f"c-{index:06d}", index, state="arrived")
        loader.add_step("receive_clone", index, [ref],
                        {"source": "lab", "insert_length": index})
        loader.add_step("determine_sequence", index + 1, [ref],
                        {"sequence": "ACGT" * 50, "quality": 0.9})
    loader.flush()


def _measure(load, count) -> tuple[float, int]:
    db = LabBase(ObjectStoreSM(buffer_pages=256))
    _schema(db)
    before = db.storage.stats.objects_written
    started = time.perf_counter()
    load(db, count)
    elapsed = time.perf_counter() - started
    writes = db.storage.stats.objects_written - before
    assert db.count_materials("clone") == count
    return elapsed, writes


def test_e12_emit_build_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    payload: dict[str, dict[str, object]] = {}
    for count in _SCALES:
        api_sec, api_writes = _measure(_load_api, count)
        bulk_sec, bulk_writes = _measure(_load_bulk, count)
        payload[str(count)] = {
            "api_ms": api_sec * 1000, "api_writes": api_writes,
            "bulk_ms": bulk_sec * 1000, "bulk_writes": bulk_writes,
        }
        rows.append([
            f"{count} clones x 2 steps",
            f"{api_sec * 1000:.1f}", f"{api_writes:,}",
            f"{bulk_sec * 1000:.1f}", f"{bulk_writes:,}",
            f"{api_writes / bulk_writes:.1f}x",
        ])
        assert bulk_writes < api_writes
    text = format_table(
        ["load", "API ms", "API writes", "bulk ms", "bulk writes", "write ratio"],
        rows,
        title="E12: database build phase, per-op API vs bulk loader",
        align_right=(1, 2, 3, 4, 5),
    )
    emit("e12_bulk_load", text, payload=payload)


@pytest.mark.parametrize("path,load", [("api", _load_api), ("bulk", _load_bulk)],
                         ids=["api", "bulk"])
def test_e12_build_latency(benchmark, path, load):
    benchmark.pedantic(lambda: _measure(load, 150), rounds=2, iterations=1)
