"""E9 — schema evolution is O(catalog), not O(data).

Section 5.1: "a schema change does not result in a re-organization or
migration of old data to the new schema ... each data object is
associated forever with the class that created it."  The bench measures
the cost of a determine_sequence schema change against databases of
increasing size — flat cost and near-zero object writes — and contrasts
it with what an eager migration of the stored steps would cost.
"""

from __future__ import annotations

import itertools
import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table

from _common import emit

_SCALES = (4, 8, 16)
_attr_counter = itertools.count(1)


def _populated(clones: int) -> LabBase:
    db = LabBase(OStoreMM())
    config = BenchmarkConfig(
        clones_per_interval=clones, intervals=(0.5,), queries_per_intake=0
    )
    LabFlowWorkload(db, config).run_all()
    return db


def _evolve(db: LabBase) -> tuple[float, int]:
    """Apply a fresh schema change; returns (ms, object writes)."""
    before = db.storage.stats.objects_written
    started = time.perf_counter()
    db.define_step_class(
        "determine_sequence",
        ["sequence", "quality", "read_length", f"extra_{next(_attr_counter)}"],
        ["tclone"],
    )
    elapsed_ms = (time.perf_counter() - started) * 1000
    return elapsed_ms, db.storage.stats.objects_written - before


def _eager_migration(db: LabBase) -> tuple[float, int]:
    """The alternative design: rewrite every stored step (for contrast)."""
    before = db.storage.stats.objects_written
    started = time.perf_counter()
    for oid, step in db.iter_steps():
        db.storage.write(oid, step)  # touch every step record
    elapsed_ms = (time.perf_counter() - started) * 1000
    return elapsed_ms, db.storage.stats.objects_written - before


def test_e9_emit_evolution_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    payload: dict[str, dict[str, object]] = {}
    for clones in _SCALES:
        db = _populated(clones)
        steps = sum(db.catalog.step_counts.values())
        evolve_ms, evolve_writes = _evolve(db)
        migrate_ms, migrate_writes = _eager_migration(db)
        payload[str(clones)] = {
            "steps": steps,
            "evolve_ms": evolve_ms,
            "evolve_writes": evolve_writes,
            "migrate_ms": migrate_ms,
            "migrate_writes": migrate_writes,
        }
        rows.append([
            f"{clones} clones / {steps} steps",
            f"{evolve_ms:.2f}",
            evolve_writes,
            f"{migrate_ms:.2f}",
            migrate_writes,
        ])
        # the claim: evolution cost independent of data volume
        assert evolve_writes <= 3
        assert migrate_writes >= steps
    text = format_table(
        ["database", "evolve ms", "evolve writes", "migrate ms", "migrate writes"],
        rows,
        title="E9: attribute-set versioning vs eager migration",
        align_right=(1, 2, 3, 4),
    )
    emit("e9_schema_evolution", text, payload=payload)


@pytest.mark.parametrize("clones", _SCALES)
def test_e9_evolution_latency(benchmark, clones):
    db = _populated(clones)
    benchmark(lambda: _evolve(db))


def test_e9_old_versions_still_serve_queries(benchmark):
    """Post-change queries over pre-change data pay no penalty."""
    db = _populated(6)
    _evolve(db)
    oid = next(iter(db.iter_materials()))[0]  # created before the change
    result = benchmark(lambda: db.current_attributes(oid))
    assert isinstance(result, dict)
