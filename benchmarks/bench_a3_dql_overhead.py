"""A3 (ablation) — deductive-language overhead vs the direct API.

The paper argues for a deductive query language on expressiveness
grounds (Section 6), accepting interpreter cost.  This ablation puts a
number on that cost: the same Q1/Q2/Q3/Q5 queries through the DQL and
through the Python API, on the same database.
"""

from __future__ import annotations

import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.operations import QueryRunner
from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=8, intervals=(0.5, 1.0))
_PER_OP = 150


@pytest.fixture(scope="module")
def warm():
    db = LabBase(OStoreMM())
    workload = LabFlowWorkload(db, _CONFIG)
    workload.run_all()
    return db, workload


def _measure(runner: QueryRunner, op: str) -> float:
    method = getattr(runner, f"run_{op.lower()}")
    started = time.perf_counter()
    for _ in range(_PER_OP):
        method()
    return (time.perf_counter() - started) / _PER_OP * 1e6


def test_a3_emit_overhead_table(benchmark, warm):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    db, workload = warm
    rows = []
    payload: dict[str, dict[str, float]] = {}
    for op in ("Q1", "Q2", "Q3", "Q5"):
        api_runner = QueryRunner(db, workload.registry, DeterministicRng(1), "api")
        dql_runner = QueryRunner(db, workload.registry, DeterministicRng(1), "dql")
        api_us = _measure(api_runner, op)
        dql_us = _measure(dql_runner, op)
        payload[op] = {
            "api_us": api_us, "dql_us": dql_us, "overhead": dql_us / api_us
        }
        rows.append([op, f"{api_us:.0f}", f"{dql_us:.0f}", f"{dql_us / api_us:.1f}x"])
    text = format_table(
        ["query", "API (us)", "DQL (us)", "interpreter cost"],
        rows,
        title="A3: deductive-language overhead (same answers, same store)",
        align_right=(1, 2, 3),
    )
    emit("a3_dql_overhead", text, payload=payload)


@pytest.mark.parametrize("path", ["api", "dql"])
@pytest.mark.parametrize("op", ["Q1", "Q2", "Q3", "Q5"])
def test_a3_query_latency(benchmark, warm, path, op):
    db, workload = warm
    runner = QueryRunner(db, workload.registry, DeterministicRng(2), path)
    benchmark(getattr(runner, f"run_{op.lower()}"))


def test_a3_answers_identical(benchmark, warm):
    """The ablation's precondition: both paths return the same answers."""
    db, workload = warm
    api_runner = QueryRunner(db, workload.registry, DeterministicRng(7), "api")
    dql_runner = QueryRunner(db, workload.registry, DeterministicRng(7), "dql")

    def check():
        matches = 0
        for _ in range(25):
            assert api_runner.run_q1() == dql_runner.run_q1()
            assert api_runner.run_q2() == dql_runner.run_q2()
            assert api_runner.run_q3() == dql_runner.run_q3()
            assert api_runner.run_q5() == dql_runner.run_q5()
            matches += 1
        return matches

    assert benchmark.pedantic(check, rounds=1, iterations=1) == 25
