"""A5 (ablation) — segment-aware read-ahead and vectored commit I/O.

A cold Q7-style history scan touches the pages of a material's step
chain in exactly the order the clustering policy laid them down, so a
store that notices the sequential fault pattern can pull whole
contiguous runs of the segment in one vectored read.  This ablation
builds each persistent server version on disk, drops the buffer pool,
and replays the full history-scan query family cold — once with the
read-ahead window at its default and once with batching disabled — and
reports elapsed time, major faults (the paper's majflt), and the new
prefetch/batch counters.  A second section reports the commit path:
the same bulk load's vectored write batches.

Equivalence (bit-identical files, identical answers) is pinned by
test_readahead_equivalence.py; this bench measures only the speed and
the fault absorption.
"""

from __future__ import annotations

import os
import tempfile
import time

import pytest

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.labbase import LabBase
from repro.storage import (
    DEFAULT_READAHEAD_PAGES,
    ObjectStoreSM,
    TexasSM,
    TexasTCSM,
)
from repro.util.fmt import format_table

from _common import emit

_CONFIG = BenchmarkConfig(clones_per_interval=12, intervals=(0.5, 1.0))

#: Small pool, as in the equivalence test: cold means the scan faults.
_POOL_PAGES = 64

#: The acceptance floor: read-ahead must absorb at least half the major
#: faults of the cold scan on at least one persistent server version.
_FAULT_FLOOR = 2.0

_SERVERS = [
    ("OStore", ObjectStoreSM),
    ("Texas+TC", TexasTCSM),
    ("Texas", TexasSM),
]


def _run(cls, window: int) -> dict:
    """Build a file-backed store, then scan every history cold."""
    with tempfile.TemporaryDirectory() as workdir:
        sm = cls(
            path=os.path.join(workdir, "db.pages"),
            buffer_pages=_POOL_PAGES,
            readahead_pages=window,
        )
        db = LabBase(sm)
        before_load = sm.stats.snapshot()
        workload = LabFlowWorkload(db, _CONFIG)
        workload.run_all()
        load = sm.stats.delta(before_load)

        oids = [oid for oid, _record in db.iter_materials()]
        sm.drop_buffer()  # chill: every page of the scan starts on disk
        before_scan = sm.stats.snapshot()
        started = time.perf_counter()
        steps_seen = 0
        for oid in oids:
            for _step_oid, _step in db.material_history(oid):
                steps_seen += 1
        elapsed = time.perf_counter() - started
        scan = sm.stats.delta(before_scan)
        sm.close()
    return {
        "window": window,
        "scan_ms": elapsed * 1e3,
        "steps_seen": steps_seen,
        "major_faults": scan["major_faults"],
        "buffer_hits": scan["buffer_hits"],
        "prefetch_hits": scan["prefetch_hits"],
        "pages_prefetched": scan["pages_prefetched"],
        "io_batches": scan["io_batches"],
        "load_page_writes": load["page_writes"],
        "load_io_batches": load["io_batches"],
        "load_meta_bytes": load["meta_bytes_written"],
    }


@pytest.fixture(scope="module")
def ablation():
    results: dict[str, dict[str, dict]] = {}
    for name, cls in _SERVERS:
        results[name] = {
            "on": _run(cls, DEFAULT_READAHEAD_PAGES),
            "off": _run(cls, 0),
        }
    return results


def test_a5_emit_table(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scan_rows, load_rows = [], []
    fault_ratios: dict[str, float] = {}
    for name, _cls in _SERVERS:
        on, off = ablation[name]["on"], ablation[name]["off"]
        ratio = off["major_faults"] / max(1, on["major_faults"])
        fault_ratios[name] = ratio
        scan_rows.append([
            name,
            f"{off['scan_ms']:.1f}",
            f"{on['scan_ms']:.1f}",
            f"{off['major_faults']}",
            f"{on['major_faults']}",
            f"{on['prefetch_hits']}",
            f"{on['io_batches']}",
            f"{ratio:.2f}x",
        ])
        load_rows.append([
            name,
            f"{off['load_page_writes']}",
            f"{on['load_page_writes']}",
            f"{on['load_io_batches']}",
            f"{on['load_meta_bytes']:,}",
        ])
    scan_text = format_table(
        ["server", "off ms", "on ms", "off majflt", "on majflt",
         "prefetch hits", "read batches", "fault ratio"],
        scan_rows,
        title=(
            "A5: cold history scan (Q7 over every material), "
            f"read-ahead {DEFAULT_READAHEAD_PAGES} vs off"
        ),
        align_right=tuple(range(1, 8)),
    )
    load_text = format_table(
        ["server", "off page writes", "on page writes",
         "on write batches", "on meta bytes"],
        load_rows,
        title="A5: bulk load commit path (vectored writes)",
        align_right=(1, 2, 3, 4),
    )
    emit(
        "a5_readahead",
        scan_text + "\n\n" + load_text,
        payload={"servers": ablation, "fault_ratios": fault_ratios},
    )

    # ≥2x fault absorption on at least one persistent server version —
    # asserted on majflt (deterministic) rather than wall clock.
    assert max(fault_ratios.values()) >= _FAULT_FLOOR, (
        f"best fault ratio {max(fault_ratios.values()):.2f}x "
        f"below {_FAULT_FLOOR}x floor: {fault_ratios}"
    )
    for name, _cls in _SERVERS:
        on, off = ablation[name]["on"], ablation[name]["off"]
        # the accounting balance the property test pins, re-checked on
        # the real workload: absorbed faults became prefetch hits
        assert on["major_faults"] + on["prefetch_hits"] == off["major_faults"]
        # both runs scanned the same chains
        assert on["steps_seen"] == off["steps_seen"]
        # batching off means exactly that
        assert off["prefetch_hits"] == 0 and off["io_batches"] == 0
        assert off["load_io_batches"] == 0
        # the bulk load writes the same pages, batched or not
        assert on["load_page_writes"] == off["load_page_writes"]
        # and the commit path did coalesce something
        assert on["load_io_batches"] > 0


@pytest.mark.parametrize(
    "window",
    [DEFAULT_READAHEAD_PAGES, 0],
    ids=["readahead_on", "readahead_off"],
)
@pytest.mark.parametrize("name,cls", _SERVERS, ids=[n for n, _ in _SERVERS])
def test_a5_cold_scan_latency(benchmark, name, cls, window, tmp_path):
    """Timed cold scan per server version and window (pytest-benchmark)."""
    sm = cls(
        path=os.path.join(tmp_path, "db.pages"),
        buffer_pages=_POOL_PAGES,
        readahead_pages=window,
    )
    db = LabBase(sm)
    LabFlowWorkload(db, _CONFIG).run_all()
    oids = [oid for oid, _record in db.iter_materials()]

    def cold_scan():
        sm.drop_buffer()
        for oid in oids:
            for _pair in db.material_history(oid):
                pass

    benchmark(cold_scan)
    sm.close()
