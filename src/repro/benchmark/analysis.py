"""Executable reproduction claims.

EXPERIMENTS.md states which of the paper's relationships this
reproduction preserves.  This module makes those statements *checkable*:
:func:`check_shapes` evaluates every claim against a
:class:`~repro.benchmark.harness.ComparisonResult` and returns a list of
:class:`ShapeCheck` verdicts — so "the shape holds" is a test, not prose.

The checks encode the Section 10 relationships the paper text attests:

S1  identical logical workload across all server versions;
S2  Texas-family database larger than OStore (paper: 1.46-1.48x);
S3  OStore fewest major faults among persistent versions;
S4  main-memory versions: zero size and zero (simulated) faults;
S5  Texas+TC user CPU >= plain OStore user CPU (client clustering cost);
S6  database size grows monotonically across intervals;
S7  Texas swizzles (swizzle_operations > 0 when it faults), OStore never.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmark.harness import ComparisonResult
from repro.storage import registry


@dataclass(frozen=True)
class ShapeCheck:
    """One verified relationship."""

    claim_id: str
    description: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.claim_id}: {self.description} ({self.detail})"


def _ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else float("inf")


def check_shapes(comparison: ComparisonResult) -> list[ShapeCheck]:
    """Evaluate every reproduction claim; raises nothing, reports all."""
    checks: list[ShapeCheck] = []
    servers = {run.server: run for run in comparison.runs}
    final = comparison.interval_labels[-1]

    # S1: identical workload
    reads = {run.final_stats.get("objects_read") for run in comparison.runs}
    writes = {run.final_stats.get("objects_written") for run in comparison.runs}
    checks.append(ShapeCheck(
        "S1", "identical logical workload on every server version",
        len(reads) == 1 and len(writes) == 1,
        f"objects_read values {sorted(reads)}",
    ))

    # S2: size ratio band.  The Texas family is every persistent backend
    # that swizzles (SWIZZLE_WORK is the family's class marker) — not a
    # hand-kept name list.
    if "OStore" in servers and "Texas" in servers:
        ostore_size = servers["OStore"].usage_for(final).size_bytes
        texas_family = [
            info.name for info in registry.backends(persistent=True)
            if getattr(info.cls, "SWIZZLE_WORK", 0) > 0
        ]
        for texas_name in texas_family:
            if texas_name not in servers:
                continue
            ratio = _ratio(servers[texas_name].usage_for(final).size_bytes,
                           ostore_size)
            # The paper measured 1.46-1.48x with its own record layouts;
            # the schema-aware codec shrinks records enough that the
            # power-of-two rounding waste narrows, so the durable shape
            # is "strictly larger", with the paper's 2.2x as the ceiling.
            checks.append(ShapeCheck(
                "S2", f"{texas_name} database larger than OStore "
                      "(paper 1.46-1.48x)",
                1.0 < ratio < 2.2,
                f"measured {ratio:.2f}x",
            ))

    # S3: OStore fewest faults among persistent versions
    persistent = [info.name for info in registry.backends(persistent=True)
                  if info.name in servers]
    if "OStore" in persistent and len(persistent) > 1:
        faults = {
            name: servers[name].final_stats.get("major_faults", 0)
            for name in persistent
        }
        checks.append(ShapeCheck(
            "S3", "OStore has the fewest faults among persistent versions",
            all(faults["OStore"] <= faults[name] for name in persistent),
            f"faults {faults}",
        ))

    # S4: main-memory versions
    for info in registry.backends(persistent=False):
        name = info.name
        if name not in servers:
            continue
        total = servers[name].total_usage()
        checks.append(ShapeCheck(
            "S4", f"{name}: no database file, no faults",
            total.size_bytes == 0 and total.majflt == 0,
            f"size {total.size_bytes}, faults {total.majflt}",
        ))

    # S5: client clustering costs CPU
    if "Texas+TC" in servers and "OStore" in servers:
        tc_cpu = servers["Texas+TC"].total_usage().user_cpu_sec
        ostore_cpu = servers["OStore"].total_usage().user_cpu_sec
        checks.append(ShapeCheck(
            "S5", "Texas+TC user CPU >= OStore user CPU (clustering in "
                  "client code)",
            # 5% relative slack, plus two os.times clock ticks: at tiny
            # scale the totals are ~0.1 s and the 10 ms granularity
            # alone can flip the raw comparison.
            tc_cpu >= ostore_cpu * 0.95 - 0.02,
            f"{tc_cpu:.3f}s vs {ostore_cpu:.3f}s",
        ))

    # S6: monotone growth
    for name in persistent:
        sizes = [interval.usage.size_bytes
                 for interval in servers[name].intervals]
        checks.append(ShapeCheck(
            "S6", f"{name}: database size grows monotonically",
            sizes == sorted(sizes) and sizes[0] > 0,
            f"sizes {sizes}",
        ))

    # S7: swizzling happens exactly on the Texas family.  Whether a
    # backend swizzles at fault time is a class property (SWIZZLE_WORK),
    # not a name pattern — the mmap version faults like OStore and must
    # show zero swizzles too.
    for name in persistent:
        swizzles = servers[name].final_stats.get("swizzle_operations", 0)
        faults = servers[name].final_stats.get("major_faults", 0)
        if getattr(registry.backend(name).cls, "SWIZZLE_WORK", 0) > 0:
            passed = (swizzles > 0) == (faults > 0)
            detail = f"{swizzles} swizzles for {faults} faults"
        else:
            passed = swizzles == 0
            detail = f"{swizzles} swizzles"
        checks.append(ShapeCheck(
            "S7", f"{name}: swizzle work iff Texas-style faults", passed, detail,
        ))

    return checks


def failed_checks(checks: list[ShapeCheck]) -> list[ShapeCheck]:
    return [check for check in checks if not check.passed]


def render_checks(checks: list[ShapeCheck]) -> str:
    return "\n".join(str(check) for check in checks)
