"""Paper-style rendering of benchmark results.

:func:`render_comparison` prints the Section 10 table layout::

    Database Server Version
    Intvl  Resource      OStore  Texas+TC  Texas  OStore-mm  Texas-mm
    0.5X   elapsed sec    1.424     1.469  1.402      1.384     1.407
           user cpu sec     ...
           sys cpu sec      ...
           majflt           ...
           size (bytes)     ...   (persistent versions only; "-" for mm)
    1.0X   ...

plus helpers for the extended stats the ablation benches report.
"""

from __future__ import annotations

from repro.benchmark.harness import ComparisonResult, RunResult
from repro.util.fmt import format_table

_RESOURCES = ("elapsed sec", "user cpu sec", "sys cpu sec", "majflt", "size (bytes)")


def render_comparison(comparison: ComparisonResult, title: str | None = None) -> str:
    """The paper's per-interval resource table, all server versions."""
    headers = ["Intvl", "Resource"] + [run.server for run in comparison.runs]
    rows: list[list[str]] = []
    for label in comparison.interval_labels:
        for row_index, resource in enumerate(_RESOURCES):
            row = [label if row_index == 0 else "", resource]
            for run in comparison.runs:
                usage = run.usage_for(label)
                row.append(dict(usage.as_rows())[resource])
            rows.append(row)
        rows.append([])  # spacer between interval groups
    if rows and not rows[-1]:
        rows.pop()
    return format_table(
        headers,
        rows,
        title=title or "Database Server Version",
        align_right=tuple(range(2, 2 + len(comparison.runs))),
    )


def render_run(run: RunResult, title: str | None = None) -> str:
    """One server's per-interval table (resources as columns)."""
    headers = ["Intvl"] + list(_RESOURCES)
    rows = []
    for interval in run.intervals:
        values = dict(interval.usage.as_rows())
        rows.append([interval.label] + [values[resource] for resource in _RESOURCES])
    return format_table(
        headers,
        rows,
        title=title or f"Server version: {run.server}",
        align_right=tuple(range(1, len(headers))),
    )


def render_stats(
    comparison: ComparisonResult,
    counters: tuple[str, ...] = (
        "major_faults",
        "buffer_hits",
        "page_reads",
        "page_writes",
        "bytes_read",
        "bytes_written",
        "pages_prefetched",
        "prefetch_hits",
        "io_batches",
        "mapped_reads",
        "records_fast_path",
        "records_fallback",
        "intern_table_size",
        "meta_bytes_written",
        "swizzle_operations",
        "objects_read",
        "objects_written",
        "objects_deleted",
        "commits",
        "aborts",
        "lock_acquisitions",
        "lock_waits",
        "lock_upgrades",
        "group_commits",
        "sessions_per_group",
        "commit_stalls",
        "cache_hits",
        "cache_misses",
        "cache_coalesced",
        "cache_evictions",
    ),
    derived: tuple[str, ...] = ("hit_ratio", "cache_hit_ratio", "group_width"),
) -> str:
    """Storage-counter totals per server (the locality evidence).

    Raw counters first, then the ``derived`` ratios from the metric
    registry (:func:`repro.obs.registry.gauges_from`) — reports stop at
    raw numbers only when a ratio would mislead (per-interval tables),
    not here, where the whole-run ratios are the headline.
    """
    from repro.obs.registry import gauges_from

    headers = ["Counter"] + [run.server for run in comparison.runs]
    rows: list[list[str]] = []
    for counter in counters:
        rows.append(
            [counter]
            + [f"{run.final_stats.get(counter, 0):,}" for run in comparison.runs]
        )
    gauge_columns = [gauges_from(run.final_stats) for run in comparison.runs]
    for name in derived:
        rows.append(
            [name] + [f"{gauges[name]:.3f}" for gauges in gauge_columns]
        )
    return format_table(
        headers,
        rows,
        title="Storage counters (whole run)",
        align_right=tuple(range(1, 1 + len(comparison.runs))),
    )


def render_workload(run: RunResult) -> str:
    """Operation mix actually executed (identical across servers)."""
    all_ops: set[str] = set()
    for interval in run.intervals:
        all_ops.update(interval.tally.operations.counts)
    headers = ["Intvl", "txns", "steps", "queries"] + sorted(all_ops)
    rows = []
    for interval in run.intervals:
        tally = interval.tally
        rows.append(
            [
                interval.label,
                tally.transactions,
                tally.steps_executed,
                tally.queries_executed,
            ]
            + [tally.operations.counts.get(op, 0) for op in sorted(all_ops)]
        )
    return format_table(
        headers,
        rows,
        title="Workload (identical for every server version)",
        align_right=tuple(range(1, len(headers))),
    )
