"""Synthetic BLAST homology-search results.

The paper's "Set and List Generation" requirement: as the lab produces
DNA sequences it searches GenBank/EMBL for homologous sequences with
BLAST and stores the resulting hit lists locally.  Hit lists are the
benchmark's large, infrequently-read values — they dominate the cold
segment and exercise the large-object path of the storage managers.

We have no GenBank, so hits are synthesized with BLAST-shaped fields
(accession, bit score, E-value, alignment span, identity fraction) and a
heavy-tailed list-length distribution: most searches find a handful of
homologs, a few find very many — which is what makes fixed-size record
assumptions fail, the point of including them in the benchmark.
"""

from __future__ import annotations

import math

from repro.util.rng import DeterministicRng

#: Database names hits are attributed to (weights sum to 1).
DATABASES = ("genbank", "embl", "dbest")
_DATABASE_WEIGHTS = (0.6, 0.3, 0.1)


def hit_count(rng: DeterministicRng, mean: int, maximum: int) -> int:
    """Heavy-tailed number of hits: log-normal, clamped to [0, maximum]."""
    if mean <= 0:
        return 0
    # log-normal with median ~mean/2 and a fat right tail
    mu = math.log(max(1.0, mean / 2))
    draw = math.exp(mu + 0.9 * _gauss(rng))
    return min(maximum, int(draw))


def _gauss(rng: DeterministicRng) -> float:
    # Box-Muller from the substream's uniform draws (keeps the interface
    # of DeterministicRng minimal).
    u1 = max(1e-12, rng.random())
    u2 = rng.random()
    return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)


def generate_hit(rng: DeterministicRng, query_length: int) -> dict:
    """One homology hit with BLAST-shaped fields."""
    span = rng.randint(30, max(31, query_length))
    score = round(span * rng.uniform(0.8, 2.1), 1)
    # E-value shrinks exponentially with score
    expect = math.exp(-score / 40.0) * rng.uniform(0.1, 10.0)
    return {
        "accession": rng.identifier("gb", 6),
        "database": rng.weighted_choice(DATABASES, _DATABASE_WEIGHTS),
        "score": score,
        "expect": expect,
        "align_start": rng.randint(1, max(2, query_length - span)),
        "align_length": span,
        "identity": round(rng.uniform(0.55, 1.0), 3),
    }


def generate_hit_list(
    rng: DeterministicRng,
    query_length: int = 400,
    mean_hits: int = 20,
    max_hits: int = 120,
) -> list[dict]:
    """A full hit list, best (highest score) first."""
    count = hit_count(rng, mean_hits, max_hits)
    hits = [generate_hit(rng, query_length) for _ in range(count)]
    hits.sort(key=lambda hit: hit["score"], reverse=True)
    return hits


def summarize(hits: list[dict]) -> dict:
    """The report row the lab keeps about a search (used by Q4/Q6)."""
    if not hits:
        return {"n_hits": 0, "best_score": None, "best_accession": None}
    best = hits[0]
    return {
        "n_hits": len(hits),
        "best_score": best["score"],
        "best_accession": best["accession"],
    }
