"""The five server versions of the paper's Section 10.

Each :class:`ServerSpec` knows how to construct its storage manager;
``all_servers()`` returns them in the paper's column order (OStore,
Texas+TC, Texas, OStore-mm, Texas-mm).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.benchmark.config import SERVER_ORDER, BenchmarkConfig
from repro.errors import ConfigError
from repro.labbase.database import LabBase
from repro.storage.base import StorageManager
from repro.storage.clustered import TexasTCSM
from repro.storage.memstore import OStoreMM, TexasMM
from repro.storage.objectstore import ObjectStoreSM
from repro.storage.texas import TexasSM


@dataclass(frozen=True)
class ServerSpec:
    """One benchmark server version."""

    name: str
    persistent: bool
    description: str
    _factory: Callable[[str | None, int, int], StorageManager]

    def make(self, config: BenchmarkConfig) -> StorageManager:
        """Construct the storage manager per the benchmark config."""
        path = None
        if self.persistent and config.db_dir is not None:
            os.makedirs(config.db_dir, exist_ok=True)
            filename = self.name.replace("+", "_").lower() + ".db"
            path = os.path.join(config.db_dir, filename)
        return self._factory(path, config.buffer_pages, config.readahead)


_SPECS: dict[str, ServerSpec] = {
    "OStore": ServerSpec(
        name="OStore",
        persistent=True,
        description="ObjectStore-style: segments, dense pages, page server",
        _factory=lambda path, pages, readahead: ObjectStoreSM(
            path=path, buffer_pages=pages, readahead_pages=readahead
        ),
    ),
    "Texas+TC": ServerSpec(
        name="Texas+TC",
        persistent=True,
        description="Texas plus client-code object clustering",
        _factory=lambda path, pages, readahead: TexasTCSM(
            path=path, buffer_pages=pages, readahead_pages=readahead
        ),
    ),
    "Texas": ServerSpec(
        name="Texas",
        persistent=True,
        description="Texas-style: one heap, power-of-two cells, swizzling",
        _factory=lambda path, pages, readahead: TexasSM(
            path=path, buffer_pages=pages, readahead_pages=readahead
        ),
    ),
    "OStore-mm": ServerSpec(
        name="OStore-mm",
        persistent=False,
        description="main memory, ObjectStore-flavoured API",
        _factory=lambda path, pages, readahead: OStoreMM(),
    ),
    "Texas-mm": ServerSpec(
        name="Texas-mm",
        persistent=False,
        description="main memory, Texas-flavoured API",
        _factory=lambda path, pages, readahead: TexasMM(),
    ),
}


def make_db(spec: "ServerSpec", config: BenchmarkConfig) -> tuple[StorageManager, LabBase]:
    """Storage manager + LabBase wired per the benchmark config.

    Threads every LabBase knob the config carries — most-recent index
    (A1), history chunking, and the object cache (A4) — so ablation
    benches construct servers one way.
    """
    sm = spec.make(config)
    db = LabBase(
        sm,
        use_most_recent_index=config.use_most_recent_index,
        history_chunk=config.history_chunk,
        object_cache=config.object_cache,
    )
    return sm, db


def server_spec(name: str) -> ServerSpec:
    try:
        return _SPECS[name]
    except KeyError:
        raise ConfigError(
            f"unknown server version {name!r}; know {sorted(_SPECS)}"
        ) from None


def all_servers(names: tuple[str, ...] = SERVER_ORDER) -> list[ServerSpec]:
    """Server specs in the paper's column order (or a chosen subset)."""
    return [server_spec(name) for name in names]
