"""Server versions for the benchmark harness.

Each :class:`ServerSpec` knows how to construct its storage manager;
``all_servers()`` returns them in table column order.  The set comes
from the backend registry (``repro.storage.registry``) — this module
holds no server names, only the wiring from a registered backend to a
configured LabBase.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

from repro.benchmark.config import SERVER_ORDER, BenchmarkConfig
from repro.labbase.database import LabBase
from repro.storage.base import StorageManager
from repro.storage.registry import backend


@dataclass(frozen=True)
class ServerSpec:
    """One benchmark server version."""

    name: str
    persistent: bool
    description: str
    _factory: Callable[[str | None, int, int, str], StorageManager]

    def make(self, config: BenchmarkConfig) -> StorageManager:
        """Construct the storage manager per the benchmark config."""
        path = None
        if self.persistent and config.db_dir is not None:
            os.makedirs(config.db_dir, exist_ok=True)
            filename = self.name.replace("+", "_").lower() + ".db"
            path = os.path.join(config.db_dir, filename)
        return self._factory(
            path, config.buffer_pages, config.readahead, config.codec
        )


def make_db(spec: "ServerSpec", config: BenchmarkConfig) -> tuple[StorageManager, LabBase]:
    """Storage manager + LabBase wired per the benchmark config.

    Threads every LabBase knob the config carries — most-recent index
    (A1), history chunking, and the object cache (A4) — so ablation
    benches construct servers one way.
    """
    sm = spec.make(config)
    db = LabBase(
        sm,
        use_most_recent_index=config.use_most_recent_index,
        history_chunk=config.history_chunk,
        object_cache=config.object_cache,
    )
    return sm, db


def server_spec(name: str) -> ServerSpec:
    """The spec for one registered backend.

    An unknown name raises ``UnknownBackendError`` (listing what *is*
    registered) straight from the registry lookup.
    """
    info = backend(name)
    return ServerSpec(
        name=info.name,
        persistent=info.persistent,
        description=info.description,
        _factory=info.make,
    )


def all_servers(names: tuple[str, ...] = SERVER_ORDER) -> list[ServerSpec]:
    """Server specs in table column order (or a chosen subset)."""
    return [server_spec(name) for name in names]
