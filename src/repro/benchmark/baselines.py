"""The TPC-style debit/credit contrast workload (paper Section 9).

"In our terminology, these benchmarks have one kind of material (bank
accounts), and one kind of event (change account balance).  They also
have one kind of query: look up an account record given its key, and
return its current balance."

To make the contrast concrete — not rhetorical — we run exactly that
workload through the same LabBase/storage stack: one material class
(``account``), one step class (``change_balance``), one query (balance
lookup).  Experiment E7 then compares its stream statistics against the
LabFlow-1 stream with a matched transaction count: class diversity,
query-mix diversity, state usage, and history shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.labbase.database import LabBase
from repro.labbase.temporal import LabClock
from repro.util.rng import DeterministicRng

ACCOUNT_CLASS = "account"
STEP_CLASS = "change_balance"
ACTIVE_STATE = "active"


@dataclass(frozen=True)
class DebitCreditResult:
    """Stream statistics for the E7 contrast table."""

    transactions: int
    material_classes_used: int
    step_classes_used: int
    query_kinds_used: int
    states_used: int
    max_history_length: int
    mean_history_length: float


class DebitCreditWorkload:
    """One-material-kind, one-event-kind, one-query-kind stream."""

    def __init__(self, db: LabBase, seed: int = 1996, accounts: int = 100) -> None:
        self.db = db
        self.rng = DeterministicRng(seed)
        self.clock = LabClock()
        self.accounts = accounts
        self._oids: list[int] = []

    def setup(self) -> None:
        self.db.begin()
        self.db.define_material_class(ACCOUNT_CLASS, description="bank account")
        self.db.define_step_class(
            STEP_CLASS,
            ["amount", "balance"],
            involves_classes=(ACCOUNT_CLASS,),
            description="debit or credit",
        )
        for index in range(self.accounts):
            oid = self.db.create_material(
                ACCOUNT_CLASS,
                f"acct-{index:06d}",
                self.clock.tick(),
                state=ACTIVE_STATE,
            )
            # opening balance
            self.db.record_step(
                STEP_CLASS, self.clock.tick(), [oid], {"amount": 0, "balance": 0}
            )
            self._oids.append(oid)
        self.db.commit()

    def run(self, transactions: int) -> DebitCreditResult:
        """The debit/credit stream: update + the single query kind."""
        for _ in range(transactions):
            oid = self.rng.choice(self._oids)
            amount = self.rng.randint(-500, 500)
            self.db.begin()
            balance = self.db.most_recent(oid, "balance")  # the one query
            self.db.record_step(
                STEP_CLASS,
                self.clock.tick(),
                [oid],
                {"amount": amount, "balance": balance + amount},
            )
            self.db.commit()
        return self._statistics(transactions)

    def _statistics(self, transactions: int) -> DebitCreditResult:
        lengths = [self.db.history_length(oid) for oid in self._oids]
        return DebitCreditResult(
            transactions=transactions,
            material_classes_used=1,
            step_classes_used=1,
            query_kinds_used=1,
            states_used=1,
            max_history_length=max(lengths),
            mean_history_length=sum(lengths) / len(lengths),
        )


def labflow_stream_statistics(db: LabBase, workload_tallies) -> dict:
    """The matching statistics for a LabFlow-1 run (E7's other column)."""
    ops: set[str] = set()
    transactions = 0
    for tally in workload_tallies:
        ops.update(tally.operations.counts)
        transactions += tally.transactions
    lengths = [record["history_len"] for _oid, record in db.iter_materials()]
    states = [s for s, n in db.sets.state_census().items()]
    return {
        "transactions": transactions,
        "material_classes_used": len(
            [c for c, n in db.catalog.material_counts.items() if n]
        ),
        "step_classes_used": len(
            [c for c, n in db.catalog.step_counts.items() if n]
        ),
        "query_kinds_used": len({op for op in ops if op.startswith("Q")}),
        "states_used": len(states),
        "max_history_length": max(lengths) if lengths else 0,
        "mean_history_length": (sum(lengths) / len(lengths)) if lengths else 0.0,
    }
