"""Textual rendering of the benchmark's EER schema (paper Figure 1).

The paper describes the schema with an extended entity-relationship
diagram in two levels separated by a dashed line: the upper level is
fixed by the benchmark (``material`` and ``step`` entities joined by the
``involves`` relationship, with ``state`` on materials and ``results``
on steps); the lower level is workflow-specific (the concrete material
and step classes with is-a links up to the fixed entities).

E3's bench emits this rendering for the genome workflow and measures
the catalog operations that maintain it.
"""

from __future__ import annotations

from repro.workflow.spec import WorkflowSpec

UPPER_LEVEL = """\
                       +----------+   involves    +----------+
                       | material |---------------|   step   |
                       +----------+  (many:many)  +----------+
                        | key      |               | class version
                        | state    |               | valid time
                        | history  |               | results: (attr, value)*
"""

DASHED = "  " + "-" * 72 + "   (is-a links below; workflow-specific)"


def eer_text(spec: WorkflowSpec) -> str:
    """Figure 1 as text, instantiated for a concrete workflow."""
    lines = [f"EER schema for workflow {spec.name!r}", "", UPPER_LEVEL, DASHED, ""]
    lines.append("  material classes (is-a material):")
    for material in spec.materials:
        parent = f" is-a {material.parent}" if material.parent else ""
        lines.append(
            f"    {material.class_name}{parent}  "
            f"[key prefix {material.key_prefix!r}]"
            + (f" — {material.description}" if material.description else "")
        )
    lines.append("")
    lines.append("  step classes (is-a step):")
    for step in spec.steps:
        involves = ", ".join(step.involves_classes)
        lines.append(f"    {step.class_name}  (involves: {involves})")
        for attribute in step.attributes:
            lines.append(
                f"        {attribute.name}: {attribute.kind.value}"
                + (f" — {attribute.description}" if attribute.description else "")
            )
    return "\n".join(lines)


def schema_statistics(spec: WorkflowSpec) -> dict[str, int]:
    """Size of the schema (tests pin these so the figure stays honest)."""
    return {
        "material_classes": len(spec.materials),
        "step_classes": len(spec.steps),
        "attributes": sum(len(step.attributes) for step in spec.steps),
        "transitions": len(spec.transitions),
        "terminal_states": len(spec.terminal_states),
    }
