"""Text figures for benchmark results.

The paper's figures are line charts; a terminal reproduction renders
them as aligned bar series.  :func:`ascii_chart` is the generic
renderer; :func:`interval_series_chart` plots a per-interval resource
for every server version of a comparison (the E1 companion figure), and
:func:`growth_chart` plots database growth.
"""

from __future__ import annotations

from typing import Sequence

from repro.benchmark.harness import ComparisonResult

DEFAULT_WIDTH = 44


def ascii_chart(
    title: str,
    labels: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = DEFAULT_WIDTH,
    unit: str = "",
) -> str:
    """Render one bar row per (series, label) pair, scaled to ``width``.

    All series share one scale so bars are comparable across series —
    the property that makes the chart a figure rather than decoration.
    """
    if not series:
        return title
    peak = max((max(values) for values in series.values() if values), default=0.0)
    label_width = max(len(label) for label in labels) if labels else 0
    name_width = max(len(name) for name in series)
    lines = [title]
    for name, values in series.items():
        if len(values) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(labels)} labels"
            )
        lines.append(f"  {name}:")
        for label, value in zip(labels, values):
            bar_len = 0 if peak <= 0 else max(
                1 if value > 0 else 0, round(width * value / peak)
            )
            bar = "#" * bar_len
            lines.append(
                f"    {label:>{label_width}} |{bar:<{width}}| "
                f"{value:,.3f}{unit}"
            )
    return "\n".join(lines)


def interval_series_chart(
    comparison: ComparisonResult,
    resource: str = "elapsed_sec",
    title: str | None = None,
) -> str:
    """Per-interval resource chart across server versions.

    ``resource`` is a :class:`~repro.util.timing.ResourceUsage` field
    name (``elapsed_sec``, ``user_cpu_sec``, ``majflt``, ...).
    """
    labels = list(comparison.interval_labels)
    series = {
        run.server: [
            float(getattr(interval.usage, resource))
            for interval in run.intervals
        ]
        for run in comparison.runs
    }
    return ascii_chart(
        title or f"{resource} per interval",
        labels,
        series,
    )


def growth_chart(comparison: ComparisonResult) -> str:
    """Database size per interval for the persistent versions."""
    labels = list(comparison.interval_labels)
    series = {}
    for run in comparison.runs:
        sizes = [interval.usage.size_bytes for interval in run.intervals]
        if any(sizes):
            series[run.server] = [size / 1024.0 for size in sizes]
    return ascii_chart(
        "database size per interval (KiB)",
        labels,
        series,
        unit=" KiB",
    )
