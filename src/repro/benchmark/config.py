"""Benchmark configuration.

The paper reports results per *interval*: its table rows are labelled
``0.5X``, ``1.0X``, ... where X is the base database size, and every
server version processes the identical stream.  :class:`BenchmarkConfig`
pins all scale and mix knobs, and — crucially — the seed: two configs
with the same seed generate byte-identical workloads, which is what
makes the cross-server comparison (E1) meaningful.

Defaults are sized so a full five-server comparison finishes in well
under a minute on one CPU; ``scale()`` produces proportionally larger
runs for the scaling experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.storage.buffer import DEFAULT_READAHEAD_PAGES
from repro.storage.codec import CODEC_NAMES, DEFAULT_CODEC
from repro.storage.objcache import DEFAULT_CACHE_OBJECTS
from repro.storage.registry import backend_names

#: Server versions in table column order — derived from the backend
#: registry, so a newly registered backend appears everywhere at once.
SERVER_ORDER: tuple[str, ...] = backend_names()


@dataclass(frozen=True)
class BenchmarkConfig:
    """All knobs of a LabFlow-1 run."""

    # scale: clones entering the lab per 0.5X interval
    clones_per_interval: int = 30
    #: interval labels, as multiples of X (cumulative database growth)
    intervals: tuple[float, ...] = (0.5, 1.0, 1.5, 2.0)

    seed: int = 1996

    # stream mix
    #: workflow steps pumped after each clone intake (work-in-progress mix)
    pump_budget_per_intake: int = 36
    #: interactive queries interleaved after each intake+pump block
    queries_per_intake: int = 4
    #: drive queries through the deductive language instead of the API
    query_path: str = "api"  # "api" | "dql"

    # LabBase knobs
    use_most_recent_index: bool = True
    history_chunk: int = 32

    # storage knobs
    buffer_pages: int = 256
    #: object-cache capacity (ablation A4): 0 = off (reads always hit the
    #: storage manager; the unit-of-work write path is identical either way)
    object_cache: int = DEFAULT_CACHE_OBJECTS
    #: read-ahead window in pages (ablation A5): 0 = off, which also
    #: disables vectored commit writes — the single batched-I/O switch.
    #: Database bytes and query answers are identical either way.
    readahead: int = DEFAULT_READAHEAD_PAGES
    #: record codec (ablation A8): "labf" = schema-aware fixed layouts
    #: with pickle fallback, "pickle" = every record as a legacy pickle.
    #: Query answers are identical either way; bytes and speed are not.
    codec: str = DEFAULT_CODEC
    #: directory for database files; None = in-memory page files
    db_dir: str | None = None

    # BLAST hit-list sizing (the large cold-data records)
    blast_mean_hits: int = 20
    blast_max_hits: int = 120

    #: refuse to run unless the static concurrency sanitizer (LF08 +
    #: LF09) is clean on the shipped tree — a cheap pre-flight for runs
    #: whose numbers would be worthless under a latent lock-order bug
    sanitize: bool = False

    def __post_init__(self) -> None:
        if self.clones_per_interval < 1:
            raise ConfigError("clones_per_interval must be positive")
        if not self.intervals:
            raise ConfigError("at least one interval required")
        if any(b <= a for a, b in zip(self.intervals, self.intervals[1:])):
            raise ConfigError("intervals must be strictly increasing")
        if self.query_path not in ("api", "dql"):
            raise ConfigError(f"unknown query path {self.query_path!r}")
        if self.pump_budget_per_intake < 0 or self.queries_per_intake < 0:
            raise ConfigError("mix knobs must be non-negative")
        if self.buffer_pages < 1:
            raise ConfigError("buffer_pages must be positive")
        if self.object_cache < 0:
            raise ConfigError("object_cache must be >= 0 (0 disables it)")
        if self.readahead < 0:
            raise ConfigError("readahead must be >= 0 (0 disables batched I/O)")
        if self.codec not in CODEC_NAMES:
            raise ConfigError(
                f"unknown codec {self.codec!r} (choose from {CODEC_NAMES})"
            )
        if self.blast_mean_hits < 0 or self.blast_max_hits < self.blast_mean_hits:
            raise ConfigError("invalid BLAST hit-list sizing")

    # -- derived -----------------------------------------------------------

    @property
    def interval_labels(self) -> tuple[str, ...]:
        return tuple(f"{interval:.1f}X" for interval in self.intervals)

    def total_clones(self) -> int:
        return self.clones_per_interval * len(self.intervals)

    # -- variants --------------------------------------------------------------

    def scaled(self, factor: float) -> "BenchmarkConfig":
        """A config with proportionally more clones per interval."""
        clones = max(1, round(self.clones_per_interval * factor))
        return replace(self, clones_per_interval=clones)

    def with_(self, **overrides) -> "BenchmarkConfig":
        """Convenience wrapper around dataclasses.replace."""
        return replace(self, **overrides)


#: Tiny config for unit tests and doc examples (sub-second runs).
TINY = BenchmarkConfig(
    clones_per_interval=4,
    intervals=(0.5, 1.0),
    pump_budget_per_intake=20,
    queries_per_intake=2,
    buffer_pages=64,
)

#: Default benchmark scale (used by the benches).
DEFAULT = BenchmarkConfig()
