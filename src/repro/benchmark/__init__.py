"""LabFlow-1: the benchmark itself (the paper's primary contribution).

Quick use::

    from repro.benchmark import BenchmarkConfig, run_comparison, render_comparison

    comparison = run_comparison(BenchmarkConfig(clones_per_interval=10))
    print(render_comparison(comparison))
"""

from repro.benchmark.analysis import ShapeCheck, check_shapes, failed_checks, render_checks
from repro.benchmark.config import DEFAULT, SERVER_ORDER, TINY, BenchmarkConfig
from repro.benchmark.figures import ascii_chart, growth_chart, interval_series_chart
from repro.benchmark.harness import (
    ComparisonResult,
    IntervalResult,
    RunResult,
    run_comparison,
    run_server,
)
from repro.benchmark.operations import (
    CLASS_ATTRIBUTES,
    QUERY_MIX,
    MaterialRegistry,
    OperationTally,
    QueryRunner,
)
from repro.benchmark.report import (
    render_comparison,
    render_run,
    render_stats,
    render_workload,
)
from repro.benchmark.servers import ServerSpec, all_servers, make_db, server_spec
from repro.benchmark.trace import Trace, TracingServer, replay
from repro.benchmark.workload import IntervalTally, LabFlowWorkload

__all__ = [
    "BenchmarkConfig",
    "DEFAULT",
    "TINY",
    "SERVER_ORDER",
    "LabFlowWorkload",
    "IntervalTally",
    "QueryRunner",
    "MaterialRegistry",
    "OperationTally",
    "QUERY_MIX",
    "CLASS_ATTRIBUTES",
    "ServerSpec",
    "Trace",
    "TracingServer",
    "replay",
    "server_spec",
    "all_servers",
    "make_db",
    "run_server",
    "run_comparison",
    "RunResult",
    "IntervalResult",
    "ComparisonResult",
    "render_comparison",
    "check_shapes",
    "failed_checks",
    "render_checks",
    "ShapeCheck",
    "ascii_chart",
    "growth_chart",
    "interval_series_chart",
    "render_run",
    "render_stats",
    "render_workload",
]
