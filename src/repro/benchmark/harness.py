"""The benchmark harness: run the stream, meter per interval, compare.

Reproduces the measurement protocol behind the paper's Section 10 table:
the same seeded stream runs against each server version; after every
interval the harness snapshots elapsed/user-cpu/sys-cpu, the simulated
major-fault counter, and the database size — the exact row set of the
paper's "Database Server Version / Intvl / Resource" table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.benchmark.config import SERVER_ORDER, BenchmarkConfig
from repro.benchmark.servers import ServerSpec, all_servers, make_db
from repro.benchmark.workload import IntervalTally, LabFlowWorkload
from repro.labbase.database import LabBase
from repro.obs.registry import gauges_from
from repro.util.timing import ResourceMeter, ResourceUsage


@dataclass
class IntervalResult:
    """Metering for one interval of one server's run."""

    label: str
    usage: ResourceUsage
    stats_delta: dict[str, int]
    tally: IntervalTally


@dataclass
class RunResult:
    """One server version's full benchmark run."""

    server: str
    intervals: list[IntervalResult] = field(default_factory=list)
    final_stats: dict[str, int] = field(default_factory=dict)
    final_gauges: dict[str, float] = field(default_factory=dict)

    def total_usage(self) -> ResourceUsage:
        total = ResourceUsage(0.0, 0.0, 0.0, 0, 0)
        for interval in self.intervals:
            total = total + interval.usage
        return total

    def usage_for(self, label: str) -> ResourceUsage:
        for interval in self.intervals:
            if interval.label == label:
                return interval.usage
        raise KeyError(label)


@dataclass
class ComparisonResult:
    """All server versions over the identical stream."""

    config: BenchmarkConfig
    runs: list[RunResult] = field(default_factory=list)

    def run_for(self, server: str) -> RunResult:
        for run in self.runs:
            if run.server == server:
                return run
        raise KeyError(server)

    @property
    def interval_labels(self) -> tuple[str, ...]:
        return self.config.interval_labels


_sanitized_clean = False


def assert_sanitizer_clean() -> None:
    """The ``config.sanitize`` pre-flight: static LF08/LF09 must pass.

    Raises :class:`~repro.errors.SanitizerError` listing every finding;
    a clean verdict is cached for the process, so ``run_comparison``
    over six servers pays for one analysis, not six.
    """
    global _sanitized_clean
    if _sanitized_clean:
        return
    from repro.analysis.core import run_rules
    from repro.analysis.main import collect_paths, default_root, load_project
    from repro.analysis.rules import rules_by_id
    from repro.errors import SanitizerError

    project, errors = load_project(collect_paths([default_root()]))
    if errors:
        raise SanitizerError(
            "sanitize pre-flight could not parse the tree: " + "; ".join(errors)
        )
    findings = run_rules(project, rules_by_id(["LF08", "LF09"]))
    if findings:
        rendered = "\n".join(found.render() for found in findings)
        raise SanitizerError(
            f"concurrency sanitizer found {len(findings)} problem(s); "
            f"refusing to benchmark:\n{rendered}"
        )
    _sanitized_clean = True


def run_server(
    spec: ServerSpec,
    config: BenchmarkConfig,
    keep_db: bool = False,
) -> RunResult | tuple[RunResult, LabBase]:
    """Run the full stream against one server version.

    With ``keep_db=True`` the (still open) LabBase is returned alongside
    the result so callers can issue follow-up queries (E5 does this);
    otherwise the store is closed.
    """
    if config.sanitize:
        assert_sanitizer_clean()
    sm, db = make_db(spec, config)
    workload = LabFlowWorkload(db, config)
    meter = ResourceMeter(fault_source=sm.stats)
    result = RunResult(server=spec.name)

    workload.setup_schema()
    meter.start()
    before = sm.stats.snapshot()
    for label in config.interval_labels:
        tally = workload.run_interval(label)
        usage = meter.lap(size_bytes=sm.size_bytes())
        result.intervals.append(
            IntervalResult(
                label=label,
                usage=usage,
                stats_delta=sm.stats.delta(before),
                tally=tally,
            )
        )
        before = sm.stats.snapshot()
    result.final_stats = sm.stats.snapshot()
    result.final_gauges = gauges_from(result.final_stats)

    if keep_db:
        return result, db
    sm.close()
    return result


def run_comparison(
    config: BenchmarkConfig,
    servers: tuple[str, ...] = SERVER_ORDER,
) -> ComparisonResult:
    """Run every requested server version over the identical stream."""
    comparison = ComparisonResult(config=config)
    for spec in all_servers(servers):
        result = run_server(spec, config)
        assert isinstance(result, RunResult)
        comparison.runs.append(result)
    return comparison
