"""Workload traces: record a stream once, replay it anywhere.

The paper's methodology replays the identical stream against every
server version.  Our generators guarantee that via seeding; traces make
the guarantee *portable*: a recorded trace is a JSON-lines file of
logical operations that replays bit-identically onto any
:class:`~repro.arch.wrapper.WorkflowDataServer` — another storage
manager, Architecture (A)'s DirectServer, or a future backend — without
re-running the generator.

Materials are identified by ``(class, key)`` — never by oid, which is
backend-specific — and step-class versions by their attribute set, the
paper's own version identity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable

from repro.errors import BenchmarkError


@dataclass
class Trace:
    """An ordered list of logical workload events."""

    events: list[dict] = field(default_factory=list)

    def append(self, op: str, **payload) -> None:
        self.events.append({"op": op, **payload})

    def __len__(self) -> int:
        return len(self.events)

    def operations(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event["op"]] = counts.get(event["op"], 0) + 1
        return counts

    # -- persistence ----------------------------------------------------------

    def dump(self, fp: IO[str]) -> None:
        for event in self.events:
            fp.write(json.dumps(event, sort_keys=True) + "\n")

    @classmethod
    def load(cls, fp: IO[str]) -> "Trace":
        trace = cls()
        for number, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                trace.events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise BenchmarkError(f"trace line {number}: {exc}") from exc
        return trace


class TracingServer:
    """A recording proxy around any workflow data server.

    Delegates every call; records the update operations (U1-U4, state
    changes, transactions) into a :class:`Trace` in replayable, logical
    form.  Query methods pass through unrecorded (replays regenerate
    them or not, per the caller's purpose).
    """

    def __init__(self, inner, trace: Trace | None = None) -> None:
        self._inner = inner
        self.trace = trace if trace is not None else Trace()
        self._names: dict[int, tuple[str, str]] = {}  # oid -> (class, key)

    # -- recording helpers ---------------------------------------------------------

    def _name(self, oid: int) -> tuple[str, str]:
        name = self._names.get(oid)
        if name is None:
            raise BenchmarkError(
                f"oid {oid} was not created through this TracingServer"
            )
        return name

    # -- schema ----------------------------------------------------------------------

    def define_material_class(self, name, key_attribute="name",
                              description="", parent=None):
        self.trace.append(
            "define_material_class",
            name=name, key_attribute=key_attribute,
            description=description, parent=parent,
        )
        return self._inner.define_material_class(
            name, key_attribute, description, parent
        )

    def define_step_class(self, name, attributes, involves_classes=(),
                          description=""):
        attributes = list(attributes)
        self.trace.append(
            "define_step_class",
            name=name, attributes=attributes,
            involves_classes=list(involves_classes), description=description,
        )
        return self._inner.define_step_class(
            name, attributes, involves_classes, description
        )

    # -- updates -----------------------------------------------------------------------

    def create_material(self, class_name, key, valid_time, state=None):
        self.trace.append(
            "create_material",
            class_name=class_name, key=key, valid_time=valid_time, state=state,
        )
        oid = self._inner.create_material(class_name, key, valid_time, state)
        self._names[oid] = (class_name, key)
        return oid

    def record_step(self, class_name, valid_time, involves,
                    results=None, version_id=None):
        involved = [int(oid) for oid in involves]
        version_attrs = None
        if version_id is not None:
            version = self._inner.catalog.step_class(class_name).version_by_id(
                version_id
            )
            version_attrs = sorted(version.attributes)
        self.trace.append(
            "record_step",
            class_name=class_name,
            valid_time=valid_time,
            involves=[list(self._name(oid)) for oid in involved],
            # lists, not tuples: events must survive a JSON round trip
            results=[[attr, value] for attr, value in sorted((results or {}).items())],
            version_attrs=version_attrs,
        )
        return self._inner.record_step(
            class_name, valid_time, involved, results, version_id
        )

    def set_state(self, material_oid, state, valid_time):
        class_name, key = self._name(material_oid)
        self.trace.append(
            "set_state",
            class_name=class_name, key=key, state=state, valid_time=valid_time,
        )
        return self._inner.set_state(material_oid, state, valid_time)

    # -- transactions --------------------------------------------------------------------

    def begin(self):
        self.trace.append("begin")
        self._inner.begin()

    def commit(self):
        self.trace.append("commit")
        self._inner.commit()

    def abort(self):
        self.trace.append("abort")
        self._inner.abort()

    # -- everything else passes through -----------------------------------------------------

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def replay(trace: Trace, server) -> dict[str, int]:
    """Apply a trace to a fresh server; returns operation counts.

    The server must implement the
    :class:`~repro.arch.wrapper.WorkflowDataServer` protocol.  Replay is
    deterministic: logical names resolve through the server's own key
    index, so backend oids never leak between runs.
    """
    counts: dict[str, int] = {}
    for event in trace.events:
        op = event["op"]
        counts[op] = counts.get(op, 0) + 1
        if op == "define_material_class":
            server.define_material_class(
                event["name"], event["key_attribute"],
                event["description"], event["parent"],
            )
        elif op == "define_step_class":
            server.define_step_class(
                event["name"], event["attributes"],
                tuple(event["involves_classes"]), event["description"],
            )
        elif op == "create_material":
            server.create_material(
                event["class_name"], event["key"],
                event["valid_time"], event["state"],
            )
        elif op == "record_step":
            involves = [
                server.lookup(class_name, key)
                for class_name, key in event["involves"]
            ]
            version_id = None
            if event.get("version_attrs") is not None:
                step_class = server.catalog.step_class(event["class_name"])
                version = step_class.find_version(
                    frozenset(event["version_attrs"])
                )
                if version is None:
                    raise BenchmarkError(
                        f"replay: no version of {event['class_name']!r} with "
                        f"attributes {event['version_attrs']}"
                    )
                version_id = version.version_id
            server.record_step(
                event["class_name"], event["valid_time"], involves,
                dict(event["results"]), version_id,
            )
        elif op == "set_state":
            oid = server.lookup(event["class_name"], event["key"])
            server.set_state(oid, event["state"], event["valid_time"])
        elif op == "begin":
            server.begin()
        elif op == "commit":
            server.commit()
        elif op == "abort":
            server.abort()
        else:
            raise BenchmarkError(f"replay: unknown trace op {op!r}")
    return counts
