"""LF08/LF09 — the static prong of the concurrency sanitizer.

Both rules run over one interprocedural :class:`ConcurrencyModel` of the
project:

* an inventory of every lock attribute (``threading.Lock`` / ``RLock``
  / ``Condition`` assigned to ``self._x``, including watchdog-wrapped
  ones), mapped onto the ground-truth ordering table
  (``LOCK_RANKS`` / ``LOCK_SITES`` in ``repro.obs.tracing``);
* a call graph with type-inference-lite receiver resolution (constructor
  assignments, parameter annotations, container element types);
* a held-lock fixpoint: for every function, the set of lock contexts it
  can be entered under, propagated through ``with <lock>:`` bodies and
  call sites;
* the thread entry points (``threading.Thread(target=...)`` sites plus
  the public surface of thread-creating classes) and per-entry
  reachability.

**LF08** (lock order / strict 2PL) reports:

* a lock attribute in the served core missing from ``LOCK_SITES``;
* an acquisition edge that inverts the ranks, re-acquires a
  non-reentrant lock, or participates in a cycle of the edge graph;
* on the 2PL policy layer (``repro.labbase.sessions`` + ``repro.server``),
  a page-lock release outside an ``except``/``finally`` unwind path and
  not covered by a justified ``# lint: ignore[LF08]`` — moving a release
  before unit end becomes a visible diff;
* a rollback handler that partially unwinds page locks
  (``unlock_page``) without restoring upgrades (``downgrade_page``) —
  the PR 6 lock-upgrade leak, generalized;
* a loop that (transitively) acquires locks while iterating a
  non-canonically-ordered source — LF04's name heuristic widened into a
  dataflow check (``sorted`` results tracked through locals, acquisition
  detected through callees).

**LF09** (shared-state confinement) flags mutable module globals and
``self.`` attributes reachable from more than one thread entry point
whose accesses are not all dominated by one common ``with <lock>``.
Exemptions: state frozen after ``__init__``, thread-safe containers
(locks, ``Event``, ``Queue`` ...), and classes confined to a single
entry's call subtree (per-thread instances).

The model is deliberately conservative-but-honest: unresolved calls add
no edges, so the rules under-report rather than guess; the fixture
corpus under ``tests/lint_fixtures/LF08,LF09/`` pins what must be
caught.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.core import (
    Finding,
    Project,
    Rule,
    SourceModule,
    _receiver_is_self,
)

#: Where the ground-truth ordering table lives in the shipped tree.
_TRACING_MODULE = "repro.obs.tracing"

#: Modules the sanitizer analyses for shared state (LF09) and whose
#: policy code LF08's 2PL checks cover.
_SCOPE_PREFIXES = (
    "repro.server",
    "repro.storage.locks",
    "repro.storage.objcache",
    "repro.labbase.sessions",
    "repro.obs",
)

#: Modules whose lock attributes must appear in ``LOCK_SITES``.
_REGISTRY_PREFIXES = ("repro.server", "repro.obs")

#: Modules that own the strict-2PL *policy* (release timing).  The lock
#: manager itself (``storage/locks.py``) is mechanism, not policy.
_POLICY_PREFIXES = ("repro.labbase.sessions", "repro.server")

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})
_WATCHDOG_FACTORIES = frozenset({"lock", "rlock"})
_THREAD_SAFE_FACTORIES = frozenset(
    {
        "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore", "Barrier", "Queue", "SimpleQueue",
        "LifoQueue", "PriorityQueue", "local",
    }
) | _WATCHDOG_FACTORIES

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "add", "discard", "remove",
        "pop", "popitem", "clear", "update", "setdefault", "sort",
        "reverse",
    }
)

_PAGE_ACQUIRE = frozenset(
    {"acquire", "lock_page", "lock_object", "lock_objects", "lock_material"}
)
_PAGE_RELEASE = frozenset(
    {"unlock_page", "unlock_all", "release", "release_all", "unlock",
     "release_locks"}
)
_PAGE_DOWNGRADE = frozenset({"downgrade_page", "downgrade"})

#: Iteration sources LF08's sorted-loop check accepts outright.
_ORDERED_ITER_CALLS = frozenset({"sorted", "range", "enumerate", "zip", "reversed"})

#: Method names too generic for name-unique fallback resolution — they
#: belong to ubiquitous stdlib types (Thread, socket, file, dict ...),
#: so an untyped receiver must not resolve to a project class.
_FALLBACK_DENY = frozenset(
    {
        "start", "stop", "join", "close", "open", "get", "put", "read",
        "write", "flush", "send", "recv", "accept", "bind", "listen",
        "connect", "shutdown", "wait", "notify", "notify_all", "set",
        "is_set", "acquire", "release", "items", "keys", "values",
        "copy", "run", "name",
    }
)


def in_sanitizer_scope(name: str) -> bool:
    return name.startswith(_SCOPE_PREFIXES)


def in_lock_registry(name: str) -> bool:
    return name.startswith(_REGISTRY_PREFIXES)


def in_lock_policy(name: str) -> bool:
    return name.startswith(_POLICY_PREFIXES)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


# ---------------------------------------------------------------------------
# Model data
# ---------------------------------------------------------------------------


@dataclass
class LockDecl:
    """One lock attribute: ``self._x = threading.Lock()`` (or wrapped)."""

    owner: str          #: class name
    attr: str
    kind: str           #: ``lock`` | ``rlock`` | ``condition``
    alias_of: str | None   #: Condition over another attr of the class
    watch_name: str | None  #: explicit watchdog registration name
    module: SourceModule
    node: ast.AST


@dataclass
class FuncInfo:
    """One function/method, addressable by qualified name."""

    qualname: str
    module: SourceModule
    node: ast.FunctionDef
    owner: str | None = None       #: class name for methods
    nested_in: str | None = None   #: parent function qualname

    # Populated by the scanner:
    accesses: list["AccessEvent"] = field(default_factory=list)
    acquires: list["AcquireEvent"] = field(default_factory=list)
    calls: list["CallEvent"] = field(default_factory=list)
    loops: list["LoopEvent"] = field(default_factory=list)
    direct_names: set[str] = field(default_factory=set)  #: called names

    @property
    def is_init(self) -> bool:
        return self.node.name in ("__init__", "__post_init__")


@dataclass
class AccessEvent:
    """One read/write of tracked state inside one function."""

    item: tuple[str, str]   #: (class name | module name, attribute/global)
    write: bool
    in_init: bool
    func: str
    node: ast.AST
    held: frozenset[str]    #: locks held locally at the access


@dataclass
class AcquireEvent:
    lock: str               #: canonical lock id
    kind: str               #: lock | rlock | condition
    func: str
    node: ast.AST
    held: frozenset[str]    #: locks held locally *before* this one


@dataclass
class CallEvent:
    callee: str             #: resolved qualname
    node: ast.AST
    held: frozenset[str]


@dataclass
class LoopEvent:
    """One ``for`` loop, with its iteration-source classification."""

    node: ast.For
    func: str
    ordered: bool           #: iterates a canonically ordered source
    body_names: set[str]    #: call names in the loop body
    body_callees: set[str]  #: resolved qualnames called in the body


@dataclass
class ThreadEntry:
    label: str
    roots: tuple[str, ...]  #: function qualnames
    multi: bool             #: more than one thread may run this entry


@dataclass
class ClassInfo:
    name: str
    module: SourceModule
    node: ast.ClassDef
    bases: tuple[str, ...]
    methods: dict[str, FuncInfo] = field(default_factory=dict)
    attr_types: dict[str, tuple[str, str]] = field(default_factory=dict)
    locks: dict[str, LockDecl] = field(default_factory=dict)
    #: attrs whose assigned value is a thread-safe primitive
    safe_attrs: set[str] = field(default_factory=set)
    creates_threads: bool = False


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------


class ConcurrencyModel:
    """Everything LF08/LF09 need, built once per project."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FuncInfo] = {}
        #: (module name, bare name) -> qualname, for top-level functions
        self.module_funcs: dict[tuple[str, str], str] = {}
        #: per module: imported name -> (source module, source name)
        self.imports: dict[str, dict[str, tuple[str, str]]] = {}
        self.ranks: dict[str, int] = {}
        self.sites: dict[str, str] = {}     #: canonical name -> Class._attr
        self.site_ids: dict[str, str] = {}  #: Class._attr -> canonical name
        self.entries: list[ThreadEntry] = []
        self.table_module: SourceModule | None = None
        self._module_mutable_cache: dict[str, set[str]] = {}

        self._index()
        self._decode_tables()
        self._infer_attr_types()
        for info in list(self.functions.values()):
            _FunctionScanner(self, info).run()
        self._find_entries()
        self.contexts_all = self._propagate(seed_all=True)
        self.contexts_entry = self._propagate(seed_all=False)
        self.reach: dict[str, set[str]] = {
            entry.label: self._reachable(entry.roots) for entry in self.entries
        }
        self._close_flags()

    # -- indexing ------------------------------------------------------------

    def _index(self) -> None:
        for module in self.project:
            imports: dict[str, tuple[str, str]] = {}
            self.imports[module.name] = imports
            for node in module.tree.body:
                if isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        imports[alias.asname or alias.name] = (
                            node.module, alias.name
                        )
                elif isinstance(node, ast.FunctionDef):
                    self._index_function(module, node, owner=None, parent=None)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(module, node)

    def _index_class(self, module: SourceModule, node: ast.ClassDef) -> None:
        bases = tuple(
            base.id if isinstance(base, ast.Name) else base.attr
            for base in node.bases
            if isinstance(base, (ast.Name, ast.Attribute))
        )
        info = ClassInfo(node.name, module, node, bases)
        # First definition wins (fixture modules may shadow real names).
        self.classes.setdefault(node.name, info)
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                fn = self._index_function(
                    module, item, owner=node.name, parent=None
                )
                info.methods[item.name] = fn

    def _index_function(
        self,
        module: SourceModule,
        node: ast.FunctionDef,
        owner: str | None,
        parent: str | None,
    ) -> FuncInfo:
        if parent is not None:
            qualname = f"{parent}.{node.name}"
        elif owner is not None:
            qualname = f"{module.name}.{owner}.{node.name}"
        else:
            qualname = f"{module.name}.{node.name}"
        info = FuncInfo(qualname, module, node, owner=owner, nested_in=parent)
        self.functions[qualname] = info
        if owner is None and parent is None:
            self.module_funcs[(module.name, node.name)] = qualname
        for child in node.body:
            self._index_nested(module, child, owner, qualname)
        return info

    def _index_nested(
        self,
        module: SourceModule,
        node: ast.stmt,
        owner: str | None,
        parent: str,
    ) -> None:
        if isinstance(node, ast.FunctionDef):
            self._index_function(module, node, owner=owner, parent=parent)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._index_nested(module, child, owner, parent)

    # -- ordering tables -----------------------------------------------------

    def _decode_tables(self) -> None:
        candidates = [self.project.module(_TRACING_MODULE)]
        candidates += [m for m in self.project if m is not candidates[0]]
        for module in candidates:
            if module is None:
                continue
            ranks = _dict_literal(module.tree, "LOCK_RANKS", int)
            sites = _dict_literal(module.tree, "LOCK_SITES", str)
            if ranks is not None and sites is not None:
                self.ranks = {
                    key: value
                    for key, value in ranks.items()
                    if isinstance(value, int)
                }
                self.sites = {
                    key: value
                    for key, value in sites.items()
                    if isinstance(value, str)
                }
                self.site_ids = {site: name for name, site in sites.items()}
                self.table_module = module
                return

    # -- attribute types and lock declarations -------------------------------

    def _infer_attr_types(self) -> None:
        for cls in self.classes.values():
            for method in cls.methods.values():
                for stmt in ast.walk(method.node):
                    self._attr_assignment(cls, stmt)
            # One-hop property resolution: ``@property def x: return self._y``
            for name, method in cls.methods.items():
                if not _is_property(method.node):
                    continue
                body = method.node.body
                last = body[-1] if body else None
                if (
                    isinstance(last, ast.Return)
                    and isinstance(last.value, ast.Attribute)
                    and _receiver_is_self(last.value.value)
                ):
                    target = cls.attr_types.get(last.value.attr)
                    if target is not None:
                        cls.attr_types.setdefault(name, target)

    def _attr_assignment(self, cls: ClassInfo, stmt: ast.AST) -> None:
        target: ast.expr | None = None
        value: ast.expr | None = None
        annotation: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value, annotation = stmt.target, stmt.value, stmt.annotation
        if not (
            isinstance(target, ast.Attribute)
            and _receiver_is_self(target.value)
        ):
            return
        attr = target.attr
        decl = self._lock_from_value(cls, attr, value)
        if decl is not None:
            cls.locks.setdefault(attr, decl)
            cls.safe_attrs.add(attr)
            return
        if value is not None and any(
            isinstance(call, ast.Call)
            and _call_name(call) in _THREAD_SAFE_FACTORIES
            for call in ast.walk(value)
        ):
            cls.safe_attrs.add(attr)
        inferred = None
        if annotation is not None:
            inferred = self._type_from_annotation(annotation)
        if inferred is None and value is not None:
            inferred = self._type_from_value(cls, value)
        if inferred is not None:
            cls.attr_types.setdefault(attr, inferred)

    def _lock_from_value(
        self, cls: ClassInfo, attr: str, value: ast.expr | None
    ) -> LockDecl | None:
        if value is None:
            return None
        kind = alias_of = watch_name = None
        for call in ast.walk(value):
            if not isinstance(call, ast.Call):
                continue
            name = _call_name(call)
            if name in _LOCK_FACTORIES:
                kind = kind or name.lower()
            elif name in _WATCHDOG_FACTORIES:
                kind = kind or ("rlock" if name == "rlock" else "lock")
                if call.args and isinstance(call.args[0], ast.Constant):
                    if isinstance(call.args[0].value, str):
                        watch_name = call.args[0].value
            elif name == "Condition":
                kind = "condition"
                if (
                    call.args
                    and isinstance(call.args[0], ast.Attribute)
                    and _receiver_is_self(call.args[0].value)
                ):
                    alias_of = call.args[0].attr
        if kind is None:
            return None
        return LockDecl(
            cls.name, attr, kind, alias_of, watch_name, cls.module, value
        )

    def _type_from_annotation(
        self, annotation: ast.expr
    ) -> tuple[str, str] | None:
        if isinstance(annotation, ast.Name):
            if annotation.id in self.classes:
                return ("inst", annotation.id)
            return None
        if isinstance(annotation, ast.BinOp) and isinstance(
            annotation.op, ast.BitOr
        ):
            return self._type_from_annotation(
                annotation.left
            ) or self._type_from_annotation(annotation.right)
        if isinstance(annotation, ast.Subscript):
            base = annotation.value
            base_name = base.id if isinstance(base, ast.Name) else None
            inner = annotation.slice
            if base_name in ("list", "set", "frozenset", "tuple"):
                if isinstance(inner, ast.Name) and inner.id in self.classes:
                    return ("coll", inner.id)
            elif base_name == "dict" and isinstance(inner, ast.Tuple):
                if len(inner.elts) == 2:
                    value_t = inner.elts[1]
                    if (
                        isinstance(value_t, ast.Name)
                        and value_t.id in self.classes
                    ):
                        return ("coll", value_t.id)
            elif base_name == "Optional":
                return self._type_from_annotation(inner)
        return None

    def _type_from_value(
        self, cls: ClassInfo, value: ast.expr
    ) -> tuple[str, str] | None:
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in self.classes:
                return ("inst", name)
        if isinstance(value, ast.IfExp):
            return self._type_from_value(cls, value.body) or \
                self._type_from_value(cls, value.orelse)
        return None

    # -- lock identity -------------------------------------------------------

    def lock_id(self, decl: LockDecl) -> str:
        """Canonical id: watchdog name, ``LOCK_SITES`` name, or site path."""
        if decl.alias_of is not None:
            cls = self.classes.get(decl.owner)
            if cls is not None:
                aliased = cls.locks.get(decl.alias_of)
                if aliased is not None and aliased.attr != decl.attr:
                    return self.lock_id(aliased)
        if decl.watch_name is not None:
            return decl.watch_name
        site = f"{decl.owner}.{decl.attr}"
        return self.site_ids.get(site, site)

    def lock_decl(self, cls_name: str | None, attr: str) -> LockDecl | None:
        if cls_name is None:
            return None
        cls = self.classes.get(cls_name)
        return cls.locks.get(attr) if cls is not None else None

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self, call: ast.Call, ctx: "FuncInfo", local_types: dict[str, tuple[str, str]]
    ) -> list[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id, ctx)
        if not isinstance(func, ast.Attribute):
            return []
        method = func.attr
        recv = func.value
        if _receiver_is_self(recv) and ctx.owner is not None:
            resolved = self.lookup_method(ctx.owner, method)
            return [resolved.qualname] if resolved is not None else []
        recv_type = self._expr_type(recv, ctx, local_types)
        if recv_type is not None and recv_type[0] == "inst":
            resolved = self.lookup_method(recv_type[1], method)
            return [resolved.qualname] if resolved is not None else []
        if (
            method in _MUTATORS
            or method in _FALLBACK_DENY
            or method.startswith("__")
        ):
            return []
        # Name-unique fallback: a method name defined by at most two
        # project classes resolves to all of them.
        owners = [
            cls.methods[method].qualname
            for cls in self.classes.values()
            if method in cls.methods
        ]
        return owners if 0 < len(owners) <= 2 else []

    def _resolve_name(self, name: str, ctx: FuncInfo) -> list[str]:
        nested = self.functions.get(f"{ctx.qualname}.{name}")
        if nested is not None:
            return [nested.qualname]
        if ctx.nested_in is not None:
            sibling = self.functions.get(f"{ctx.nested_in}.{name}")
            if sibling is not None:
                return [sibling.qualname]
        top = self.module_funcs.get((ctx.module.name, name))
        if top is not None:
            return [top]
        imported = self.imports.get(ctx.module.name, {}).get(name)
        if imported is not None:
            source_module, source_name = imported
            target = self.module_funcs.get((source_module, source_name))
            if target is not None:
                return [target]
            cls = self.classes.get(source_name)
            if cls is not None and "__init__" in cls.methods:
                return [cls.methods["__init__"].qualname]
        cls = self.classes.get(name)
        if cls is not None and "__init__" in cls.methods:
            return [cls.methods["__init__"].qualname]
        return []

    def lookup_method(self, cls_name: str, method: str) -> FuncInfo | None:
        seen: set[str] = set()
        queue = [cls_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            queue.extend(cls.bases)
        return None

    def _expr_type(
        self,
        expr: ast.expr,
        ctx: FuncInfo,
        local_types: dict[str, tuple[str, str]],
    ) -> tuple[str, str] | None:
        if isinstance(expr, ast.Name):
            return local_types.get(expr.id)
        if isinstance(expr, ast.Attribute) and _receiver_is_self(expr.value):
            if ctx.owner is not None:
                cls = self.classes.get(ctx.owner)
                if cls is not None:
                    return self._attr_type(cls, expr.attr)
        if isinstance(expr, ast.Attribute):
            inner = self._expr_type(expr.value, ctx, local_types)
            if inner is not None and inner[0] == "inst":
                cls = self.classes.get(inner[1])
                if cls is not None:
                    return self._attr_type(cls, expr.attr)
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in self.classes:
                return ("inst", name)
        return None

    def _attr_type(self, cls: ClassInfo, attr: str) -> tuple[str, str] | None:
        seen: set[str] = set()
        queue = [cls.name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if attr in info.attr_types:
                return info.attr_types[attr]
            queue.extend(info.bases)
        return None

    # -- thread entry points -------------------------------------------------

    def _find_entries(self) -> None:
        thread_sites: list[tuple[FuncInfo, ast.Call, bool]] = []
        for info in self.functions.values():
            loops = 0
            for node, depth in _walk_with_loop_depth(info.node):
                if (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "Thread"
                ):
                    thread_sites.append((info, node, depth > 0))
                    loops += 1
        creators: set[str] = set()
        for info, call, multi in thread_sites:
            creators.add(info.qualname)
            if info.owner is not None:
                cls = self.classes.get(info.owner)
                if cls is not None:
                    cls.creates_threads = True
            target = self._thread_target(call, info)
            if target is not None:
                label = f"thread:{target}"
                self.entries.append(ThreadEntry(label, (target,), multi))
        # "main" = the public surface of thread-creating scope classes and
        # the thread-creating scope functions themselves — code the
        # launching thread keeps running while workers are live.
        main_roots: set[str] = set()
        for cls in self.classes.values():
            if not cls.creates_threads:
                continue
            if not in_sanitizer_scope(cls.module.name):
                continue
            for name, method in cls.methods.items():
                if not name.startswith("_") and not _is_property(method.node):
                    main_roots.add(method.qualname)
        for info, _call, _multi in thread_sites:
            if in_sanitizer_scope(info.module.name) and info.owner is None:
                root = self.functions.get(info.nested_in or info.qualname)
                if root is not None:
                    main_roots.add(root.qualname)
        if main_roots:
            self.entries.append(
                ThreadEntry("main", tuple(sorted(main_roots)), False)
            )

    def _thread_target(self, call: ast.Call, ctx: FuncInfo) -> str | None:
        target: ast.expr | None = None
        for keyword in call.keywords:
            if keyword.arg == "target":
                target = keyword.value
        if target is None:
            return None
        if isinstance(target, ast.Attribute) and _receiver_is_self(
            target.value
        ):
            if ctx.owner is not None:
                resolved = self.lookup_method(ctx.owner, target.attr)
                return resolved.qualname if resolved is not None else None
        if isinstance(target, ast.Name):
            resolved = self._resolve_name(target.id, ctx)
            return resolved[0] if resolved else None
        return None

    # -- held-context fixpoint ----------------------------------------------

    def _propagate(self, *, seed_all: bool) -> dict[str, set[frozenset[str]]]:
        contexts: dict[str, set[frozenset[str]]] = {
            name: set() for name in self.functions
        }
        worklist: list[tuple[str, frozenset[str]]] = []
        if seed_all:
            roots: Iterable[str] = self.functions
        else:
            roots = [
                root for entry in self.entries for root in entry.roots
            ]
        for root in roots:
            if root in contexts:
                worklist.append((root, frozenset()))
        while worklist:
            name, ctx = worklist.pop()
            if ctx in contexts[name]:
                continue
            contexts[name].add(ctx)
            info = self.functions[name]
            for call in info.calls:
                callee_ctx = ctx | call.held
                if (
                    call.callee in contexts
                    and callee_ctx not in contexts[call.callee]
                ):
                    worklist.append((call.callee, callee_ctx))
        return contexts

    def _reachable(self, roots: tuple[str, ...]) -> set[str]:
        seen: set[str] = set()
        frontier = [root for root in roots if root in self.functions]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            for call in self.functions[name].calls:
                if call.callee not in seen and call.callee in self.functions:
                    frontier.append(call.callee)
        return seen

    # -- transitive 2PL flags ------------------------------------------------

    def _close_flags(self) -> None:
        """Per function: can it (transitively) acquire/release/downgrade?"""
        self.can_acquire: dict[str, bool] = {}
        self.can_release_page: dict[str, bool] = {}
        self.can_downgrade: dict[str, bool] = {}
        for names, out in (
            (_PAGE_ACQUIRE, self.can_acquire),
            (frozenset({"unlock_page"}), self.can_release_page),
            (_PAGE_DOWNGRADE, self.can_downgrade),
        ):
            for qualname, info in self.functions.items():
                out[qualname] = bool(info.direct_names & names)
            changed = True
            while changed:
                changed = False
                for qualname, info in self.functions.items():
                    if out[qualname]:
                        continue
                    if any(
                        out.get(call.callee, False) for call in info.calls
                    ):
                        out[qualname] = True
                        changed = True


def _is_property(node: ast.FunctionDef) -> bool:
    return any(
        isinstance(dec, ast.Name) and dec.id in ("property", "cached_property")
        for dec in node.decorator_list
    )


def _dict_literal(
    tree: ast.AST, name: str, value_type: type
) -> dict[str, object] | None:
    """A module-level ``NAME: ... = {str: value_type}`` literal, decoded."""
    for node in ast.walk(tree):
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        if not isinstance(value, ast.Dict):
            return None
        table: dict[str, object] = {}
        for key, item in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(item, ast.Constant)
                and isinstance(item.value, value_type)
            ):
                return None
            table[key.value] = item.value
        return table
    return None


def _walk_with_loop_depth(
    fn: ast.FunctionDef,
) -> Iterator[tuple[ast.AST, int]]:
    """Walk a function, tracking enclosing loop/comprehension depth."""

    def visit(node: ast.AST, depth: int) -> Iterator[tuple[ast.AST, int]]:
        for child in ast.iter_child_nodes(node):
            yield child, depth
            inner = depth
            if isinstance(
                child,
                (ast.For, ast.While, ast.ListComp, ast.SetComp,
                 ast.GeneratorExp, ast.DictComp),
            ):
                inner = depth + 1
            yield from visit(child, inner)

    yield from visit(fn, 0)


# ---------------------------------------------------------------------------
# Function scanner: events with locally-held lock sets
# ---------------------------------------------------------------------------


class _FunctionScanner:
    """One pass over one function body, recording model events."""

    def __init__(self, model: ConcurrencyModel, info: FuncInfo) -> None:
        self.model = model
        self.info = info
        self.local_types: dict[str, tuple[str, str]] = {}
        #: locals known to hold a canonically ordered iterable
        self.ordered_locals: set[str] = set()
        self._seed_params()

    def _seed_params(self) -> None:
        args = self.info.node.args
        for arg in list(args.args) + list(args.kwonlyargs) + list(args.posonlyargs):
            if arg.annotation is not None:
                inferred = self.model._type_from_annotation(arg.annotation)
                if inferred is not None:
                    self.local_types[arg.arg] = inferred

    def run(self) -> None:
        self._stmts(self.info.node.body, frozenset())

    # -- statement walk with held tracking -----------------------------------

    def _stmts(self, stmts: list[ast.stmt], held: frozenset[str]) -> None:
        for stmt in stmts:
            self._stmt(stmt, held)

    def _stmt(self, stmt: ast.stmt, held: frozenset[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are scanned separately
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = set(held)
            for item in stmt.items:
                self._expr(item.context_expr, frozenset(inner))
                lock = self._lock_of(item.context_expr)
                if lock is not None:
                    lock_id, kind = lock
                    self.info.acquires.append(
                        AcquireEvent(
                            lock_id, kind, self.info.qualname,
                            item.context_expr, frozenset(inner),
                        )
                    )
                    inner.add(lock_id)
            self._stmts(stmt.body, frozenset(inner))
            return
        if isinstance(stmt, ast.For):
            self._expr(stmt.iter, held)
            self._record_loop(stmt, held)
            self._bind_loop_target(stmt)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, held)
            self._stmts(stmt.body, held)
            self._stmts(stmt.orelse, held)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body, held)
            for handler in stmt.handlers:
                self._stmts(handler.body, held)
            self._stmts(stmt.orelse, held)
            self._stmts(stmt.finalbody, held)
            return
        # Simple statements: scan expressions, track assignments.
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, held)
            for target in stmt.targets:
                self._target(target, held)
                if isinstance(target, ast.Name):
                    self._bind_local(target.id, stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, held)
            self._target(stmt.target, held)
            if isinstance(stmt.target, ast.Name):
                inferred = self.model._type_from_annotation(stmt.annotation)
                if inferred is not None:
                    self.local_types[stmt.target.id] = inferred
                if stmt.value is not None:
                    self._bind_local(stmt.target.id, stmt.value)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, held)
            self._target(stmt.target, held)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target, held)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._expr(child, held)

    def _bind_loop_target(self, stmt: ast.For) -> None:
        if not isinstance(stmt.target, ast.Name):
            return
        source = self.model._expr_type(
            stmt.iter, self.info, self.local_types
        )
        if source is not None and source[0] == "coll":
            self.local_types[stmt.target.id] = ("inst", source[1])
        elif isinstance(stmt.iter, ast.Call):
            name = _call_name(stmt.iter)
            if name in ("list", "sorted", "set", "tuple") and stmt.iter.args:
                inner = self.model._expr_type(
                    stmt.iter.args[0], self.info, self.local_types
                )
                if inner is not None and inner[0] == "coll":
                    self.local_types[stmt.target.id] = ("inst", inner[1])

    def _bind_local(self, name: str, value: ast.expr) -> None:
        inferred = self.model._expr_type(value, self.info, self.local_types)
        if inferred is not None:
            self.local_types[name] = inferred
        if self._is_ordered_expr(value):
            self.ordered_locals.add(name)
        else:
            self.ordered_locals.discard(name)

    # -- expression scan -----------------------------------------------------

    def _expr(self, expr: ast.expr, held: frozenset[str]) -> None:
        for node in self._expr_nodes(expr):
            if isinstance(node, ast.Call):
                self._call(node, held)
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                self._access(node, write=False, held=held)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self._global_access(node, write=False, held=held)

    def _target(self, target: ast.expr, held: frozenset[str]) -> None:
        """A store target: record writes to tracked state."""
        if isinstance(target, ast.Attribute):
            self._access(target, write=True, held=held)
            self._expr(target.value, held)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Attribute):
                self._access(target.value, write=True, held=held)
            elif isinstance(target.value, ast.Name):
                self._global_access(target.value, write=True, held=held)
            self._expr(target.slice, held)
        elif isinstance(target, ast.Name):
            self._global_access(target, write=True, held=held)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._target(element, held)

    def _expr_nodes(self, expr: ast.expr) -> Iterator[ast.AST]:
        """Walk an expression, skipping deferred bodies (lambdas)."""
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _call(self, call: ast.Call, held: frozenset[str]) -> None:
        name = _call_name(call)
        if name is not None:
            self.info.direct_names.add(name)
        # Mutator call on tracked state == a write.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MUTATORS
        ):
            recv = call.func.value
            if isinstance(recv, ast.Attribute):
                self._access(recv, write=True, held=held)
            elif isinstance(recv, ast.Name):
                self._global_access(recv, write=True, held=held)
        # ``lock.acquire()`` outside a with-statement.
        if (
            name == "acquire"
            and isinstance(call.func, ast.Attribute)
        ):
            lock = self._lock_of(call.func.value)
            if lock is not None:
                self.info.acquires.append(
                    AcquireEvent(
                        lock[0], lock[1], self.info.qualname, call, held
                    )
                )
        for callee in self.model.resolve_call(call, self.info, self.local_types):
            self.info.calls.append(CallEvent(callee, call, held))

    def _access(
        self, node: ast.Attribute, write: bool, held: frozenset[str]
    ) -> None:
        if not _receiver_is_self(node.value) or self.info.owner is None:
            return
        cls = self.model.classes.get(self.info.owner)
        if cls is None or not in_sanitizer_scope(cls.module.name):
            return
        if node.attr in cls.safe_attrs:
            return
        self.info.accesses.append(
            AccessEvent(
                (cls.name, node.attr), write, self.info.is_init,
                self.info.qualname, node, held,
            )
        )

    def _global_access(
        self, node: ast.Name, write: bool, held: frozenset[str]
    ) -> None:
        module = self.info.module
        if not in_sanitizer_scope(module.name):
            return
        if node.id not in _module_mutables(self.model, module):
            return
        self.info.accesses.append(
            AccessEvent(
                (module.name, node.id), write, self.info.is_init,
                self.info.qualname, node, held,
            )
        )

    # -- lock expression resolution ------------------------------------------

    def _lock_of(self, expr: ast.expr) -> tuple[str, str] | None:
        """``self._x`` (or typed ``obj._x``) naming a lock declaration."""
        if not isinstance(expr, ast.Attribute):
            return None
        decl: LockDecl | None = None
        if _receiver_is_self(expr.value):
            decl = self.model.lock_decl(self.info.owner, expr.attr)
        else:
            recv_type = self.model._expr_type(
                expr.value, self.info, self.local_types
            )
            if recv_type is not None and recv_type[0] == "inst":
                decl = self.model.lock_decl(recv_type[1], expr.attr)
        if decl is None:
            return None
        return self.model.lock_id(decl), decl.kind

    # -- loop classification (sorted-iteration dataflow) ---------------------

    def _record_loop(self, stmt: ast.For, held: frozenset[str]) -> None:
        body_names: set[str] = set()
        body_callees: set[str] = set()
        for part in stmt.body:
            for node in ast.walk(part):
                if isinstance(node, ast.Call):
                    name = _call_name(node)
                    if name is not None:
                        body_names.add(name)
                    for callee in self.model.resolve_call(
                        node, self.info, self.local_types
                    ):
                        body_callees.add(callee)
        self.info.loops.append(
            LoopEvent(
                stmt, self.info.qualname,
                self._is_ordered_expr(stmt.iter), body_names, body_callees,
            )
        )

    def _is_ordered_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in _ORDERED_ITER_CALLS:
                return True
            if isinstance(expr.func, ast.Attribute):
                recv = expr.func.value
                # ``self._helper(...)`` — trust same-class helpers, as LF04
                # does; the helper's own loops are checked on their own.
                if _receiver_is_self(recv):
                    return True
                # ``x.items()`` / ``x.keys()`` over an ordered local.
                if (
                    isinstance(recv, ast.Name)
                    and recv.id in self.ordered_locals
                ):
                    return True
            if name in ("list", "tuple") and expr.args:
                return self._is_ordered_expr(expr.args[0])
            return False
        if isinstance(expr, ast.Name):
            return expr.id in self.ordered_locals
        if isinstance(expr, ast.Attribute) and _receiver_is_self(expr.value):
            return True  # canonical per-instance source; its builder is checked
        if isinstance(expr, (ast.List, ast.Tuple)):
            return True  # literal order is author-chosen, not hash order
        return False


_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def _module_mutables(model: ConcurrencyModel, module: SourceModule) -> set[str]:
    """Module-level names bound to mutable containers (cached per module)."""
    cache = model._module_mutable_cache
    if module.name in cache:
        return cache[module.name]
    names: set[str] = set()
    for node in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if not isinstance(target, ast.Name):
            continue
        if isinstance(value, _MUTABLE_LITERALS):
            # Constant tables (dict literals read, never written) are
            # only tracked if some function in the module writes them.
            names.add(target.id)
    if not names:
        cache[module.name] = names
        return names
    written: set[str] = set()
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                written.update(set(child.names) & names)
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _MUTATORS
                and isinstance(child.func.value, ast.Name)
                and child.func.value.id in names
            ):
                written.add(child.func.value.id)
            elif (
                isinstance(child, ast.Subscript)
                and isinstance(child.ctx, (ast.Store, ast.Del))
                and isinstance(child.value, ast.Name)
                and child.value.id in names
            ):
                written.add(child.value.id)
    cache[module.name] = written
    return written


# ---------------------------------------------------------------------------
# Shared model cache (both rules run over one build)
# ---------------------------------------------------------------------------

_MODEL_CACHE: dict[int, ConcurrencyModel] = {}


def model_for(project: Project) -> ConcurrencyModel:
    key = id(project)
    model = _MODEL_CACHE.get(key)
    if model is None or model.project is not project:
        _MODEL_CACHE.clear()
        model = ConcurrencyModel(project)
        _MODEL_CACHE[key] = model
    return model


# ---------------------------------------------------------------------------
# LF08 — lock order, deadlock shape, strict 2PL
# ---------------------------------------------------------------------------


class LockGraphRule(Rule):
    id = "LF08"
    title = "lock acquisition must follow the ranked order and strict 2PL"

    def check(self, project: Project) -> Iterable[Finding]:
        model = model_for(project)
        yield from self._check_registry(model)
        yield from self._check_edges(model)
        yield from self._check_release_sites(model)
        yield from self._check_rollback_downgrade(model)
        yield from self._check_sorted_loops(model)

    # -- (a) every served-core lock is registered ----------------------------

    def _check_registry(self, model: ConcurrencyModel) -> Iterator[Finding]:
        if not model.sites:
            return  # no ordering table in this project — nothing to check
        for cls in model.classes.values():
            if not in_lock_registry(cls.module.name):
                continue
            for decl in cls.locks.values():
                if decl.alias_of is not None:
                    continue
                site = f"{decl.owner}.{decl.attr}"
                name = decl.watch_name or model.site_ids.get(site)
                if name is None:
                    yield self.finding(
                        cls.module, decl.node,
                        f"lock attribute {site} is not registered in "
                        "LOCK_SITES; every lock in the served core must "
                        "declare its rank in the ordering table",
                    )
                elif name not in model.ranks:
                    yield self.finding(
                        cls.module, decl.node,
                        f"lock {name!r} ({site}) has a LOCK_SITES entry but "
                        "no LOCK_RANKS rank",
                    )
        table = model.table_module
        if table is not None:
            mismatch = set(model.sites) ^ set(model.ranks)
            for name in sorted(mismatch):
                yield self.finding(
                    table, table.tree,
                    f"lock {name!r} appears in only one of LOCK_RANKS / "
                    "LOCK_SITES; the two tables must list the same locks",
                )

    # -- (b) acquisition edges: inversions, self-deadlock, cycles ------------

    def _check_edges(self, model: ConcurrencyModel) -> Iterator[Finding]:
        edges: dict[tuple[str, str], AcquireEvent] = {}
        for info in model.functions.values():
            for event in info.acquires:
                for ctx in model.contexts_all[info.qualname]:
                    full = ctx | event.held
                    for held in full:
                        if held != event.lock:
                            edges.setdefault((held, event.lock), event)
                    if event.lock in full and event.kind == "lock":
                        yield self.finding(
                            info.module, event.node,
                            f"non-reentrant lock {event.lock!r} can be "
                            "re-acquired while already held (self-deadlock)",
                        )
        for (held, acquired), event in sorted(edges.items()):
            held_rank = model.ranks.get(held)
            rank = model.ranks.get(acquired)
            info = model.functions[event.func]
            if held_rank is not None and rank is not None and held_rank >= rank:
                yield self.finding(
                    info.module, event.node,
                    f"lock order inversion: acquires {acquired!r} "
                    f"(rank {rank}) while {held!r} (rank {held_rank}) "
                    "can be held",
                )
        graph: dict[str, set[str]] = {}
        for held, acquired in edges:
            graph.setdefault(held, set()).add(acquired)
        cyclic = _nodes_on_cycles(graph)
        reported: set[tuple[str, str]] = set()
        for (held, acquired), event in sorted(edges.items()):
            if held in cyclic and acquired in cyclic and (
                held, acquired
            ) not in reported:
                if model.ranks.get(held) is not None and model.ranks.get(
                    acquired
                ) is not None:
                    continue  # already reported as an inversion pair
                reported.add((held, acquired))
                info = model.functions[event.func]
                yield self.finding(
                    info.module, event.node,
                    f"potential deadlock: acquisition edge {held!r} -> "
                    f"{acquired!r} lies on a cycle of the lock graph",
                )

    # -- (c) strict 2PL: release only on unwind/commit boundaries ------------

    def _check_release_sites(self, model: ConcurrencyModel) -> Iterator[Finding]:
        callers: dict[str, list[tuple[FuncInfo, int]]] = {}
        for info in model.functions.values():
            for call in info.calls:
                callers.setdefault(call.callee, []).append(
                    (info, getattr(call.node, "lineno", 0))
                )
        unwind_cache: dict[str, list[tuple[int, int]]] = {}

        def unwind(module: SourceModule) -> list[tuple[int, int]]:
            spans = unwind_cache.get(module.name)
            if spans is None:
                spans = _unwind_spans(module.tree)
                unwind_cache[module.name] = spans
            return spans

        def in_unwind(module: SourceModule, line: int) -> bool:
            return any(start <= line <= end for start, end in unwind(module))

        def rollback_helper(qualname: str) -> bool:
            """Every call site sits in an except/finally — an unwind
            helper like ``_restore_pages``, exempt by construction."""
            sites = callers.get(qualname, [])
            return bool(sites) and all(
                in_unwind(caller.module, line) for caller, line in sites
            )

        for info in model.functions.values():
            if not in_lock_policy(info.module.name):
                continue
            for node in _own_scope(info.node):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                if name not in _PAGE_RELEASE:
                    continue
                if in_unwind(info.module, node.lineno):
                    continue
                if rollback_helper(info.qualname):
                    continue
                yield self.finding(
                    info.module, node,
                    f"{name}() outside an except/finally unwind path: "
                    "strict 2PL forbids releasing locks before unit end on "
                    "update paths — if this is a commit/close boundary, "
                    "justify it with `# lint: ignore[LF08]`",
                )

    def _check_rollback_downgrade(
        self, model: ConcurrencyModel
    ) -> Iterator[Finding]:
        for module in model.project:
            if not in_lock_policy(module.name):
                continue
            for info in model.functions.values():
                if info.module is not module:
                    continue
                for node in ast.walk(info.node):
                    if not isinstance(node, ast.Try):
                        continue
                    for handler in node.handlers:
                        yield from self._handler_downgrade(
                            model, info, module, handler
                        )

    def _handler_downgrade(
        self,
        model: ConcurrencyModel,
        info: FuncInfo,
        module: SourceModule,
        handler: ast.ExceptHandler,
    ) -> Iterator[Finding]:
        releases = downgrades = False
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name == "unlock_page":
                releases = True
            if name in _PAGE_DOWNGRADE:
                downgrades = True
            for callee in model.resolve_call(node, info, {}):
                if model.can_release_page.get(callee, False):
                    releases = True
                if model.can_downgrade.get(callee, False):
                    downgrades = True
        if releases and not downgrades:
            yield self.finding(
                module, handler,
                "rollback handler unwinds page locks (unlock_page) without "
                "restoring upgrades (downgrade_page) — re-introduces the "
                "lock-upgrade leak: an upgraded page would stay EXCLUSIVE",
            )

    # -- (d) sorted-iteration dataflow ---------------------------------------

    def _check_sorted_loops(self, model: ConcurrencyModel) -> Iterator[Finding]:
        for info in model.functions.values():
            if not in_lock_policy(info.module.name):
                continue
            for loop in info.loops:
                if loop.ordered:
                    continue
                acquires = bool(loop.body_names & _PAGE_ACQUIRE) or any(
                    model.can_acquire.get(callee, False)
                    for callee in loop.body_callees
                )
                if acquires:
                    yield self.finding(
                        info.module, loop.node,
                        "loop body (transitively) acquires locks but "
                        "iterates a source not proven canonically ordered; "
                        "iterate sorted(...) so concurrent sessions rank "
                        "their acquisitions identically",
                    )


def _own_scope(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk a function without descending into nested defs (they are
    separate :class:`FuncInfo` scopes)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _unwind_spans(tree: ast.AST) -> list[tuple[int, int]]:
    """Line spans of except handlers and finally blocks."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                end = getattr(handler, "end_lineno", handler.lineno)
                spans.append((handler.lineno, end or handler.lineno))
            if node.finalbody:
                first = node.finalbody[0].lineno
                last = getattr(
                    node.finalbody[-1], "end_lineno", node.finalbody[-1].lineno
                )
                spans.append((first, last or first))
    return spans


def _nodes_on_cycles(graph: dict[str, set[str]]) -> set[str]:
    """Nodes in a strongly connected component of size > 1 (or a self-loop)."""
    index_counter = [0]
    indices: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    result: set[str] = set()
    nodes = set(graph) | {n for targets in graph.values() for n in targets}

    def strongconnect(node: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [
            (node, iter(sorted(graph.get(node, ()))))
        ]
        indices[node] = low[node] = index_counter[0]
        index_counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, children = work[-1]
            advanced = False
            for child in children:
                if child not in indices:
                    indices[child] = low[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    low[current] = min(low[current], indices[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[current])
            if low[current] == indices[current]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1 or current in graph.get(current, ()):
                    result.update(component)

    for node in sorted(nodes):
        if node not in indices:
            strongconnect(node)
    return result


# ---------------------------------------------------------------------------
# LF09 — shared mutable state must be lock-dominated
# ---------------------------------------------------------------------------


class SharedStateRule(Rule):
    id = "LF09"
    title = "state shared across thread entry points needs one common lock"

    def check(self, project: Project) -> Iterable[Finding]:
        model = model_for(project)
        items: dict[tuple[str, str], list[AccessEvent]] = {}
        for info in model.functions.values():
            for event in info.accesses:
                items.setdefault(event.item, []).append(event)
        for item in sorted(items):
            yield from self._check_item(model, item, items[item])

    def _check_item(
        self,
        model: ConcurrencyModel,
        item: tuple[str, str],
        events: list[AccessEvent],
    ) -> Iterator[Finding]:
        # Frozen after construction: no writes outside __init__ anywhere.
        if not any(e.write and not e.in_init for e in events):
            return
        live = [
            e for e in events
            if not e.in_init and model.contexts_entry[e.func]
        ]
        if not live:
            return
        labels: set[str] = set()
        for event in live:
            for entry in model.entries:
                if event.func in model.reach[entry.label]:
                    labels.add(entry.label)
        weight = sum(
            2 if self._entry(model, label).multi else 1 for label in labels
        )
        if weight < 2:
            return
        if self._confined(model, item, labels):
            return
        module = self._item_module(model, item)
        if module is None:
            return
        common: set[str] | None = None
        worst: AccessEvent | None = None
        for event in live:
            must = self._must_held(model, event)
            common = must if common is None else common & must
            if not must and worst is None:
                worst = event
        if common:
            return
        owner, attr = item
        where = ", ".join(sorted(labels))
        if worst is not None:
            yield self.finding(
                module, worst.node,
                f"{owner}.{attr} is reachable from multiple thread entry "
                f"points ({where}) but this access holds no lock; guard "
                "every read/write with one registered lock",
            )
        else:
            first = min(live, key=lambda e: getattr(e.node, "lineno", 0))
            yield self.finding(
                module, first.node,
                f"{owner}.{attr} is reachable from multiple thread entry "
                f"points ({where}) but its accesses hold no common lock",
            )

    def _must_held(
        self, model: ConcurrencyModel, event: AccessEvent
    ) -> set[str]:
        contexts = model.contexts_entry[event.func]
        must: set[str] | None = None
        for ctx in contexts:
            full = set(ctx | event.held)
            must = full if must is None else must & full
        return must or set()

    def _entry(self, model: ConcurrencyModel, label: str) -> ThreadEntry:
        for entry in model.entries:
            if entry.label == label:
                return entry
        raise KeyError(label)

    def _item_module(
        self, model: ConcurrencyModel, item: tuple[str, str]
    ) -> SourceModule | None:
        owner, _attr = item
        cls = model.classes.get(owner)
        if cls is not None:
            return cls.module
        return model.project.module(owner)

    def _confined(
        self,
        model: ConcurrencyModel,
        item: tuple[str, str],
        labels: set[str],
    ) -> bool:
        """Instances confined to one multi entry's call subtree are
        per-thread: each worker builds its own object."""
        if len(labels) != 1:
            return False
        label = next(iter(labels))
        entry = self._entry(model, label)
        if not entry.multi:
            return False
        owner, _attr = item
        if owner not in model.classes:
            return False
        reach = model.reach[label]
        other_reach: set[str] = set()
        for other in model.entries:
            if other.label != label:
                other_reach |= model.reach[other.label]
        init = model.lookup_method(owner, "__init__")
        if init is None:
            return False
        init_name = init.qualname
        constructed_in_entry = False
        for info in model.functions.values():
            if not any(call.callee == init_name for call in info.calls):
                continue
            if info.qualname in other_reach:
                return False
            if info.qualname in reach:
                constructed_in_entry = True
            elif model.contexts_entry[info.qualname]:
                return False
        return constructed_in_entry


CONCURRENCY_RULES: tuple[Rule, ...] = (LockGraphRule(), SharedStateRule())
