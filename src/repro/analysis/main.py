"""Command-line driver: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 clean, 1 findings, 2 usage or unreadable/unparsable input
(mirroring ``repro verify``'s contract of 0/1/2).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from repro.analysis.core import Project, SourceModule, run_rules, stale_ignores
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES, rules_by_id


def default_root() -> str:
    """The ``repro`` package directory — the tree the rules guard."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def collect_paths(roots: Sequence[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: set[str] = set()
    for root in roots:
        if os.path.isfile(root):
            collected.add(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for filename in filenames:
                if filename.endswith(".py"):
                    collected.add(os.path.join(dirpath, filename))
    return sorted(collected)


def load_project(paths: Sequence[str]) -> tuple[Project, list[str]]:
    """Parse every path; returns the project and per-file error strings."""
    modules = []
    errors = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
            modules.append(SourceModule(_display_path(path), text))
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{_display_path(path)}: {exc}")
    return Project(modules), errors


def _display_path(path: str) -> str:
    """Paths relative to the working directory, for stable reports."""
    relative = os.path.relpath(path)
    return relative if not relative.startswith("..") else path


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="AST-based invariant linter for the storage stack "
        "(rules LF01-LF06)",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is deterministic for CI artifacts)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="LF01,LF02,...",
        help="comma-separated subset of rules to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    parser.add_argument(
        "--check-ignores", action="store_true",
        help="also flag lint: ignore markers that suppress nothing "
        "(reported as LF00 findings)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
        return 0
    try:
        rules = rules_by_id(
            args.rules.split(",") if args.rules is not None else None
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    roots = list(args.paths) or [default_root()]
    paths = collect_paths(roots)
    if not paths:
        print("error: no Python files found", file=sys.stderr)
        return 2
    project, errors = load_project(paths)
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 2
    used: set[tuple[str, int, str]] = set()
    findings = run_rules(project, rules, used_suppressions=used)
    if args.check_ignores:
        findings.extend(
            stale_ignores(
                project, rules, used, known_ids={r.id for r in ALL_RULES}
            )
        )
        findings.sort()
    renderer = render_json if args.format == "json" else render_text
    output = renderer(findings, checked_files=len(project.modules))
    sys.stdout.write(output if output.endswith("\n") else output + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
