"""The LF rules: invariants of the storage stack, checked statically.

==== =======================================================================
LF01 all disk writes flow through the buffer pool — no direct ``PageFile``
     construction, ``os``-level I/O or write-mode ``open()`` outside
     ``storage/disk.py`` / ``storage/faultinject.py`` (otherwise the
     fault injector cannot see every write point)
LF02 nondeterminism ban on crash-path and benchmark modules: wall-clock
     time, unseeded module-level ``random``, ``os.urandom``, and
     set-iteration-order leaks (the crash matrix needs bit-identical
     write schedules)
LF03 no cross-module private-attribute reach-ins (``other._attr`` where
     the receiver is not ``self``/``cls`` and ``_attr`` is not defined in
     the accessing module — same-module friend access stays legal)
LF04 lock-ordering discipline: a loop that acquires locks must iterate a
     canonically ordered source (``sorted(...)`` or a ``self`` helper, as
     in ``labbase/sessions.py``) and sit under a ``try`` that releases
     partial grabs (or a context manager)
LF05 counter hygiene: every ``StorageStats`` field incremented anywhere
     must be declared, merged by the stats aggregator and rendered by
     ``benchmark/report.py``; every ``ResourceUsage`` field must be
     merged by ``ResourceUsage.__add__``
LF06 no broad exception handling on storage/labbase paths (``except
     Exception`` / bare ``except`` without a bare re-raise)
LF07 metric-registry hygiene: every gauge registered in ``repro.obs``
     (a ``MetricSpec(...)`` call) is shown by exactly the render
     function its spec declares — and by no other function in
     ``repro.obs.render`` — is recorded under exactly one
     ``BASELINE_SCHEMAS`` entry in ``repro.obs.baseline``, and reads
     only declared ``StorageStats`` counters; schemas must not name
     unregistered gauges
LF08 lock-order / strict-2PL discipline over the served core: every
     lock is registered in ``LOCK_RANKS``/``LOCK_SITES``, no
     acquisition edge inverts the ranks or closes a cycle, releases
     happen only on unwind/commit boundaries, rollback handlers that
     drop page locks restore upgrades, and lock-acquiring loops
     iterate canonically ordered sources (interprocedural; defined in
     ``repro.analysis.concurrency``)
LF09 shared-state confinement: mutable module globals and ``self.``
     attributes reachable from more than one thread entry point must
     have every access dominated by one common ``with <lock>``
     (defined in ``repro.analysis.concurrency``)
==== =======================================================================
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.concurrency import CONCURRENCY_RULES
from repro.analysis.core import (
    NAMEDTUPLE_METHODS,
    Finding,
    ParentMap,
    Project,
    Rule,
    SourceModule,
    _receiver_is_self,
    in_crash_path,
    in_storage_stack,
)

# ---------------------------------------------------------------------------
# LF01 — direct I/O outside the disk layer
# ---------------------------------------------------------------------------

_LF01_EXEMPT = ("repro.storage.disk", "repro.storage.faultinject")

#: os functions that read or write file state directly.
_OS_IO_FUNCS = frozenset(
    {
        "open", "write", "pwrite", "pread", "read", "lseek", "fsync",
        "fdatasync", "ftruncate", "truncate", "replace", "rename",
        "remove", "unlink",
    }
)

_PAGEFILE_NAMES = frozenset(
    {"PageFile", "FaultyPageFile", "MMapPageFile", "FaultyMMapPageFile"}
)


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _open_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open`` call, if statically known."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


class DirectIORule(Rule):
    id = "LF01"
    title = "disk writes must flow through the buffer pool"

    def applies(self, module: SourceModule) -> bool:
        return in_storage_stack(module.name) and module.name not in _LF01_EXEMPT

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name in _PAGEFILE_NAMES:
                yield self.finding(
                    module,
                    node,
                    f"constructs {name} directly; page files belong to the "
                    "disk layer (storage/disk.py, storage/faultinject.py)",
                )
            elif isinstance(node.func, ast.Name) and name == "open":
                mode = _open_mode(node)
                if mode is None or any(ch in mode for ch in "wax+"):
                    yield self.finding(
                        module,
                        node,
                        f"open() in mode {mode!r} bypasses the buffer pool; "
                        "the fault injector cannot see this write point",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "os"
                and name in _OS_IO_FUNCS
            ):
                yield self.finding(
                    module,
                    node,
                    f"os.{name}() is disk-layer I/O; route it through "
                    "storage/disk.py so every write point is injectable",
                )


# ---------------------------------------------------------------------------
# LF02 — nondeterminism on crash-path / benchmark modules
# ---------------------------------------------------------------------------

_RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "getrandbits", "triangular", "expovariate",
    }
)

_DATETIME_NOW = frozenset({"now", "utcnow", "today"})

#: Call wrappers that make iteration order irrelevant (or canonical).
_ORDER_SAFE_CONSUMERS = frozenset(
    {"sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset"}
)


def _is_set_expr(node: ast.expr, set_vars: frozenset[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_vars) or _is_set_expr(
            node.right, set_vars
        )
    return False


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function bodies.

    ``ast.walk`` yields every descendant, which would leak one function's
    locals into another's analysis; this walker stops at nested defs
    (each is analysed as its own scope).
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _set_typed_locals(scope: ast.AST) -> frozenset[str]:
    """Names assigned only set-valued expressions within one scope."""
    candidates: dict[str, bool] = {}
    for node in _walk_scope(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                is_set = _is_set_expr(node.value, frozenset())
                candidates[target.id] = candidates.get(target.id, True) and is_set
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            note = node.annotation
            is_set_note = (
                isinstance(note, ast.Subscript)
                and isinstance(note.value, ast.Name)
                and note.value.id in ("set", "frozenset")
            ) or (isinstance(note, ast.Name) and note.id in ("set", "frozenset"))
            candidates[node.target.id] = (
                candidates.get(node.target.id, True) and is_set_note
            )
    return frozenset(name for name, is_set in candidates.items() if is_set)


def _iteration_sites(scope: ast.AST) -> Iterator[tuple[ast.AST, ast.expr, str]]:
    """(node, iterated expression, description) triples within a scope."""
    for node in _walk_scope(scope):
        if isinstance(node, ast.For):
            yield node, node.iter, "for-loop"
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                yield node, generator.iter, "comprehension"
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("list", "tuple") and len(node.args) == 1:
                yield node, node.args[0], f"{node.func.id}()"


class DeterminismRule(Rule):
    id = "LF02"
    title = "crash-path and benchmark code must be deterministic"

    def applies(self, module: SourceModule) -> bool:
        return in_crash_path(module.name)

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        yield from self._banned_calls(module)
        yield from self._set_order_leaks(module)

    def _banned_calls(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if not isinstance(base, ast.Name):
                continue
            if base.id == "time" and node.attr in ("time", "time_ns"):
                yield self.finding(
                    module,
                    node,
                    "time.time() is wall-clock nondeterminism; valid time "
                    "comes from LabClock, timings from perf_counter in the "
                    "harness only",
                )
            elif base.id in ("datetime", "date") and node.attr in _DATETIME_NOW:
                yield self.finding(
                    module,
                    node,
                    f"{base.id}.{node.attr}() reads the wall clock; "
                    "crash-path schedules must be reproducible",
                )
            elif base.id == "os" and node.attr == "urandom":
                yield self.finding(
                    module, node, "os.urandom() is unseedable entropy"
                )
            elif base.id == "random" and node.attr in _RANDOM_MODULE_FUNCS:
                yield self.finding(
                    module,
                    node,
                    f"module-level random.{node.attr}() shares unseeded "
                    "global state; use repro.util.rng.DeterministicRng",
                )

    def _set_order_leaks(self, module: SourceModule) -> Iterator[Finding]:
        scopes: list[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            set_vars = _set_typed_locals(scope)
            for node, iterated, description in _iteration_sites(scope):
                if _is_set_expr(iterated, set_vars):
                    yield self.finding(
                        module,
                        node,
                        f"{description} iterates a set in hash order; wrap "
                        "the source in sorted() so the schedule is "
                        "bit-identical across runs",
                    )


# ---------------------------------------------------------------------------
# LF03 — cross-module private reach-ins
# ---------------------------------------------------------------------------


class PrivateReachInRule(Rule):
    id = "LF03"
    title = "no cross-module private-attribute access"

    def applies(self, module: SourceModule) -> bool:
        return (
            in_storage_stack(module.name)
            or module.name.startswith("repro.benchmark")
            or module.name.startswith("repro.obs")
        )

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        local_privates = module.private_names()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            attr = node.attr
            if not attr.startswith("_"):
                continue
            if attr.startswith("__") and attr.endswith("__"):
                continue
            if attr in NAMEDTUPLE_METHODS:
                continue
            if _receiver_is_self(node.value):
                continue
            if attr in local_privates:
                continue  # same-module friend access (e.g. factory helpers)
            yield self.finding(
                module,
                node,
                f"reach-in to private attribute {attr!r} defined outside "
                f"{module.name}; add or use a public accessor instead",
            )


# ---------------------------------------------------------------------------
# LF04 — lock-ordering discipline
# ---------------------------------------------------------------------------

_ACQUIRE_NAMES = frozenset(
    {"acquire", "lock_page", "lock_object", "lock_objects", "lock_material"}
)
_RELEASE_NAMES = frozenset(
    {
        "release", "release_all", "unlock_page", "unlock_all",
        "_unlock_pages", "unlock_pages", "unlock", "release_locks",
        "_restore_pages", "downgrade", "downgrade_page",
    }
)


def _calls_named(scope: ast.AST, names: frozenset[str]) -> ast.Call | None:
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in names:
                return node
    return None


def _iter_is_canonical(iterated: ast.expr, sorted_vars: set[str]) -> bool:
    """Trusted acquire-loop sources: sorted() output or a self helper."""
    if isinstance(iterated, ast.Call):
        if isinstance(iterated.func, ast.Name):
            return iterated.func.id in ("sorted", "range", "enumerate")
        if isinstance(iterated.func, ast.Attribute):
            return _receiver_is_self(iterated.func.value) or (
                isinstance(iterated.func.value, ast.Attribute)
                and _receiver_is_self(iterated.func.value.value)
            )
    if isinstance(iterated, ast.Attribute):
        return _receiver_is_self(iterated.value)
    if isinstance(iterated, ast.Name):
        return iterated.id in sorted_vars
    return False


def _sorted_assigned_names(scope: ast.AST) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "sorted"
            ):
                names.add(target.id)
    return names


def _release_guarded(loop: ast.For, parents: ParentMap) -> bool:
    """Whether a partial acquisition can be unwound on failure."""
    for node in ast.walk(loop):
        if isinstance(node, ast.Try):
            if node.finalbody or any(
                _calls_named(handler, _RELEASE_NAMES) for handler in node.handlers
            ):
                return True
    for ancestor in parents.ancestors(loop):
        if isinstance(ancestor, ast.With):
            return True
        if isinstance(ancestor, ast.Try):
            if ancestor.finalbody:
                return True
            if any(
                _calls_named(handler, _RELEASE_NAMES)
                for handler in ancestor.handlers
            ):
                return True
    return False


class LockOrderingRule(Rule):
    id = "LF04"
    title = "nested lock acquisition must be ordered and unwindable"

    def applies(self, module: SourceModule) -> bool:
        return in_storage_stack(module.name)

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        parents = ParentMap.of(module.tree)
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            sorted_vars = _sorted_assigned_names(function)
            for node in ast.walk(function):
                if not isinstance(node, ast.For):
                    continue
                acquire = None
                for stmt in node.body:
                    acquire = _calls_named(stmt, _ACQUIRE_NAMES)
                    if acquire is not None:
                        break
                if acquire is None:
                    continue
                if not _iter_is_canonical(node.iter, sorted_vars):
                    yield self.finding(
                        module,
                        node,
                        "multi-lock acquisition iterates an unordered "
                        "source; iterate sorted(...) (the canonical oid "
                        "order of labbase/sessions.py) so concurrent "
                        "clients cannot deadlock on opposite orders",
                    )
                if not _release_guarded(node, parents):
                    yield self.finding(
                        module,
                        node,
                        "lock-acquiring loop has no release guard; a "
                        "conflict partway leaks the locks already taken — "
                        "wrap it in try/finally or release in the handler",
                    )


# ---------------------------------------------------------------------------
# LF05 — counter hygiene
# ---------------------------------------------------------------------------

_STATS_MODULE = "repro.storage.stats"
_REPORT_MODULE = "repro.benchmark.report"
_TIMING_MODULE = "repro.util.timing"
_AGGREGATOR_FUNCS = ("reset", "snapshot", "delta", "merge", "__add__")


def _dataclass_fields(tree: ast.AST, class_name: str) -> dict[str, ast.AnnAssign]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return {
                stmt.target.id: stmt
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not stmt.target.id.startswith("_")
            }
    return {}


def _class_def(tree: ast.AST, class_name: str) -> ast.ClassDef | None:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node
    return None


def _names_in(node: ast.AST) -> set[str]:
    """Every identifier, attribute name, keyword and string inside a node."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.keyword) and child.arg:
            names.add(child.arg)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            names.add(child.value)
    return names


def _stats_increments(module: SourceModule) -> Iterator[tuple[ast.AST, str]]:
    """(node, field) for every ``<...>.stats.<field> +=`` in a module."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.AugAssign):
            continue
        target = node.target
        if not isinstance(target, ast.Attribute):
            continue
        receiver = target.value
        holder = None
        if isinstance(receiver, ast.Attribute):
            holder = receiver.attr
        elif isinstance(receiver, ast.Name):
            holder = receiver.id
        if holder in ("stats", "_stats"):
            yield node, target.attr


class CounterHygieneRule(Rule):
    id = "LF05"
    title = "every incremented counter is declared, merged, and rendered"

    def check(self, project: Project) -> Iterable[Finding]:
        yield from self._check_storage_stats(project)
        yield from self._check_resource_usage(project)

    def _check_storage_stats(self, project: Project) -> Iterable[Finding]:
        stats_module = project.module(_STATS_MODULE)
        if stats_module is None:
            return  # nothing to judge against (partial project)
        declared = _dataclass_fields(stats_module.tree, "StorageStats")
        merged = self._merged_fields(stats_module, declared)
        report_module = project.module(_REPORT_MODULE)
        rendered = (
            _names_in(report_module.tree) if report_module is not None else None
        )
        for module in project:
            if not (
                in_storage_stack(module.name)
                or module.name.startswith("repro.benchmark")
                or module.name == _STATS_MODULE
            ):
                continue
            for node, field_name in _stats_increments(module):
                if field_name not in declared:
                    yield self.finding(
                        module,
                        node,
                        f"increments undeclared counter {field_name!r}; "
                        "declare it as a StorageStats field",
                    )
                    continue
                if field_name not in merged:
                    yield self.finding(
                        module,
                        node,
                        f"counter {field_name!r} is declared but the stats "
                        "aggregator never merges it (reset/snapshot/delta)",
                    )
                if rendered is not None and field_name not in rendered:
                    yield self.finding(
                        module,
                        node,
                        f"counter {field_name!r} is never rendered by "
                        f"{_REPORT_MODULE}; silent counters hide "
                        "regressions — add it to render_stats",
                    )

    def _merged_fields(
        self, stats_module: SourceModule, declared: dict[str, ast.AnnAssign]
    ) -> set[str]:
        """Fields the aggregator covers.

        The shipped aggregator is field-driven (``__dataclass_fields__``),
        which covers every declared field by construction; hand-written
        aggregators must name each field.
        """
        class_def = _class_def(stats_module.tree, "StorageStats")
        if class_def is None:
            return set()
        covered: set[str] = set()
        for stmt in class_def.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name in _AGGREGATOR_FUNCS
            ):
                names = _names_in(stmt)
                if "__dataclass_fields__" in names:
                    return set(declared)
                covered.update(names & set(declared))
        return covered

    def _check_resource_usage(self, project: Project) -> Iterable[Finding]:
        timing_module = project.module(_TIMING_MODULE)
        if timing_module is None:
            return
        class_def = _class_def(timing_module.tree, "ResourceUsage")
        if class_def is None:
            return
        declared = _dataclass_fields(timing_module.tree, "ResourceUsage")
        add_def = next(
            (
                stmt
                for stmt in class_def.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "__add__"
            ),
            None,
        )
        merged = _names_in(add_def) if add_def is not None else set()
        for field_name, node in declared.items():
            if field_name not in merged:
                yield self.finding(
                    timing_module,
                    node,
                    f"ResourceUsage.{field_name} is never merged by "
                    "__add__; interval totals silently drop it",
                )


# ---------------------------------------------------------------------------
# LF06 — broad exception handling
# ---------------------------------------------------------------------------


def _is_broad(handler_type: ast.expr | None) -> bool:
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in ("Exception", "BaseException")
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(element) for element in handler_type.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """A bare ``raise`` preserves the original exception — allowed."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


class BroadExceptRule(Rule):
    id = "LF06"
    title = "storage paths must not swallow arbitrary exceptions"

    def applies(self, module: SourceModule) -> bool:
        return in_storage_stack(module.name) or module.name.startswith(
            "repro.obs"
        )

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_broad(node.type):
                continue
            if _reraises(node):
                continue
            label = "bare except" if node.type is None else "except Exception"
            yield self.finding(
                module,
                node,
                f"{label} without a bare re-raise can swallow "
                "InjectedCrashError and corruption signals; catch the "
                "concrete error types (StorageError, PageError, ...) or "
                "justify with a lint: ignore[LF06] comment",
            )


# ---------------------------------------------------------------------------
# LF07 — metric-registry hygiene
# ---------------------------------------------------------------------------

_OBS_PREFIX = "repro.obs"
_RENDER_MODULE = "repro.obs.render"
_BASELINE_MODULE = "repro.obs.baseline"


def _const_str(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _const_str_seq(node: ast.expr | None) -> tuple[str, ...] | None:
    """A tuple/list literal of string constants, statically decoded."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: list[str] = []
    for element in node.elts:
        value = _const_str(element)
        if value is None:
            return None
        values.append(value)
    return tuple(values)


def _metric_spec_calls(
    module: SourceModule,
) -> Iterator[tuple[ast.Call, dict[str, object]]]:
    """(node, keyword fields) for every ``MetricSpec(...)`` call."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or _call_name(node) != "MetricSpec":
            continue
        fields: dict[str, object] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            value: object = _const_str(keyword.value)
            if value is None:
                value = _const_str_seq(keyword.value)
            if value is not None:
                fields[keyword.arg] = value
        yield node, fields


def _baseline_schemas(
    tree: ast.AST,
) -> dict[str, tuple[str, ...]] | None:
    """The ``BASELINE_SCHEMAS`` dict literal, statically decoded."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        named = any(
            isinstance(target, ast.Name) and target.id == "BASELINE_SCHEMAS"
            for target in targets
        )
        if not named or not isinstance(value, ast.Dict):
            continue
        schemas: dict[str, tuple[str, ...]] = {}
        for key_node, value_node in zip(value.keys, value.values):
            key = _const_str(key_node)
            names = _const_str_seq(value_node)
            if key is not None and names is not None:
                schemas[key] = names
        return schemas
    return None


class MetricRegistryRule(Rule):
    id = "LF07"
    title = "every registered gauge has one render path and one baseline schema"

    def check(self, project: Project) -> Iterable[Finding]:
        render_module = project.module(_RENDER_MODULE)
        render_funcs: dict[str, set[str]] = {}
        if render_module is not None:
            render_funcs = {
                stmt.name: _names_in(stmt)
                for stmt in render_module.tree.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
        baseline_module = project.module(_BASELINE_MODULE)
        schemas = (
            _baseline_schemas(baseline_module.tree)
            if baseline_module is not None
            else None
        )
        stats_module = project.module(_STATS_MODULE)
        counters = (
            set(_dataclass_fields(stats_module.tree, "StorageStats"))
            if stats_module is not None
            else None
        )
        registered: set[str] = set()
        for module in project:
            if not module.name.startswith(_OBS_PREFIX):
                continue
            for node, fields in _metric_spec_calls(module):
                name = fields.get("name")
                if not isinstance(name, str):
                    yield self.finding(
                        module,
                        node,
                        "MetricSpec registration without a statically known "
                        "name= keyword; the registry contract cannot be "
                        "checked",
                    )
                    continue
                registered.add(name)
                yield from self._check_render(
                    module, node, name, fields, render_funcs, render_module
                )
                yield from self._check_baseline(module, node, name, fields, schemas)
                yield from self._check_counters(module, node, name, fields, counters)
        if registered and schemas is not None and baseline_module is not None:
            for schema, names in sorted(schemas.items()):
                for gauge in names:
                    if gauge not in registered:
                        yield self.finding(
                            baseline_module,
                            baseline_module.tree,
                            f"baseline schema {schema!r} records {gauge!r}, "
                            "which no MetricSpec registers; stale schema "
                            "entries record noise",
                        )

    def _check_render(
        self,
        module: SourceModule,
        node: ast.AST,
        name: str,
        fields: dict[str, object],
        render_funcs: dict[str, set[str]],
        render_module: SourceModule | None,
    ) -> Iterator[Finding]:
        if render_module is None:
            return  # partial project: nothing to judge against
        declared = fields.get("render")
        if not isinstance(declared, str) or declared not in render_funcs:
            yield self.finding(
                module,
                node,
                f"gauge {name!r} declares render path {declared!r} but "
                f"{_RENDER_MODULE} defines no such function",
            )
            return
        hosts = sorted(f for f, names in render_funcs.items() if name in names)
        if hosts == [declared]:
            return
        if declared not in hosts:
            yield self.finding(
                module,
                node,
                f"gauge {name!r} is registered but {declared} never shows "
                "it; unrendered gauges hide regressions — add its column",
            )
        extra = [host for host in hosts if host != declared]
        if extra:
            yield self.finding(
                module,
                node,
                f"gauge {name!r} appears in {', '.join(extra)} besides its "
                f"declared render path {declared}; one gauge, one render "
                "path",
            )

    def _check_baseline(
        self,
        module: SourceModule,
        node: ast.AST,
        name: str,
        fields: dict[str, object],
        schemas: dict[str, tuple[str, ...]] | None,
    ) -> Iterator[Finding]:
        if schemas is None:
            return
        declared = fields.get("baseline")
        if not isinstance(declared, str) or declared not in schemas:
            yield self.finding(
                module,
                node,
                f"gauge {name!r} declares baseline schema {declared!r} but "
                f"{_BASELINE_MODULE} BASELINE_SCHEMAS has no such entry",
            )
            return
        hosts = sorted(schema for schema, names in schemas.items() if name in names)
        if hosts == [declared]:
            return
        if len(hosts) > 1:
            yield self.finding(
                module,
                node,
                f"gauge {name!r} is recorded under {len(hosts)} baseline "
                f"schemas ({', '.join(hosts)}); exactly one schema owns "
                "each gauge",
            )
        elif not hosts or declared not in hosts:
            yield self.finding(
                module,
                node,
                f"gauge {name!r} declares baseline schema {declared!r} but "
                f"that schema's BASELINE_SCHEMAS entry does not record it",
            )

    def _check_counters(
        self,
        module: SourceModule,
        node: ast.AST,
        name: str,
        fields: dict[str, object],
        counters: set[str] | None,
    ) -> Iterator[Finding]:
        if counters is None:
            return
        numerator = fields.get("numerator")
        denominator = fields.get("denominator")
        sources: list[str] = []
        if isinstance(numerator, str):
            sources.append(numerator)
        if isinstance(denominator, tuple):
            sources.extend(denominator)
        for counter in sources:
            if counter not in counters:
                yield self.finding(
                    module,
                    node,
                    f"gauge {name!r} reads {counter!r}, which is not a "
                    "declared StorageStats field",
                )


ALL_RULES: tuple[Rule, ...] = (
    DirectIORule(),
    DeterminismRule(),
    PrivateReachInRule(),
    LockOrderingRule(),
    CounterHygieneRule(),
    BroadExceptRule(),
    MetricRegistryRule(),
) + CONCURRENCY_RULES


def rules_by_id(ids: Iterable[str] | None = None) -> tuple[Rule, ...]:
    """Resolve rule ids (``None`` = all), raising on unknown ids."""
    if ids is None:
        return ALL_RULES
    wanted = [identifier.strip().upper() for identifier in ids if identifier.strip()]
    known = {rule.id: rule for rule in ALL_RULES}
    unknown = [identifier for identifier in wanted if identifier not in known]
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(unknown)}")
    return tuple(known[identifier] for identifier in wanted)
