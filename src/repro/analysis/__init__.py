"""Repo-specific static analysis for the storage stack.

The storage layers accumulate invariants the test suite can only check
probabilistically — deterministic crash-matrix write points, canonical
lock ordering, balanced counter accounting, cache-coherence drain order.
This package enforces them *mechanically*, the way
``repro.storage.integrity`` enforces the data-level invariants I1–I9:
an AST pass over the source tree with repo-specific rules (LF01–LF06),
run by CI and by ``repro lint`` / ``python -m repro.analysis``.

Only the standard library is used (``ast``, ``argparse``, ``json``), so
the checker runs anywhere the code itself runs.
"""

from __future__ import annotations

from repro.analysis.core import Finding, Project, SourceModule, run_rules
from repro.analysis.main import main
from repro.analysis.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "Project",
    "SourceModule",
    "main",
    "rules_by_id",
    "run_rules",
]
