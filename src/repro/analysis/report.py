"""Deterministic rendering of lint findings (text and JSON).

Both formats are pure functions of the finding list — no timestamps, no
absolute paths, no environment — so two runs over the same tree emit
byte-identical output.  CI diffs the JSON report across commits, which
only works if formatting noise is zero.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.core import Finding

#: Schema version of the JSON report; bump on breaking layout changes.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], checked_files: int) -> str:
    """Human-readable report, one finding per line, stable order."""
    lines = [finding.render() for finding in findings]
    if findings:
        by_rule: dict[str, int] = {}
        for finding in findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {checked_files} file(s) ({summary})"
        )
    else:
        lines.append(f"clean: {checked_files} file(s), 0 findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], checked_files: int) -> str:
    """Machine-readable report with a stable schema and key order."""
    payload = {
        "version": REPORT_VERSION,
        "checked_files": checked_files,
        "counts": _counts(findings),
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts
