"""Rule engine: source modules, findings, suppression, the run loop.

A :class:`Project` is the unit of analysis — every module is parsed up
front so rules can consult cross-module facts (which private names a
module defines, which counters the stats block declares).  Rules are
small classes over the parsed trees; the engine applies per-line
suppression comments and returns findings in a deterministic order, so
two runs over the same tree render byte-identical reports.

Suppression syntax (the only escape hatch)::

    risky_call()  # lint: ignore[LF06] -- justification here

The marker silences the named rule(s) on its own line, or — when the
comment stands alone — on the next code line below it.  Rule ids may be
comma-separated: ``# lint: ignore[LF01, LF03]``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: ``# module: repro.storage.foo`` near the top of a file overrides the
#: path-derived module name — test fixtures use this to pose as storage
#: modules without living inside the package.
_MODULE_OVERRIDE = re.compile(r"#\s*module:\s*([A-Za-z_][\w.]*)")

_SUPPRESS = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Underscore attributes that are public API of stdlib types, not
#: privacy violations (namedtuple's documented methods).
NAMEDTUPLE_METHODS = frozenset(
    {"_replace", "_asdict", "_fields", "_make", "_field_defaults"}
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class SourceModule:
    """One parsed source file plus its lint-relevant derived data."""

    def __init__(self, path: str, text: str, name: str | None = None) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.name = name or _module_name(path, text)
        self.tree = ast.parse(text, filename=path)
        self._suppressions: dict[int, set[str]] | None = None

    # -- suppression ---------------------------------------------------------

    def suppressed_rules(self, line: int) -> set[str]:
        """Rule ids suppressed at a 1-based source line."""
        if self._suppressions is None:
            self._suppressions = self._scan_suppressions()
        return self._suppressions.get(line, set())

    def _scan_suppressions(self) -> dict[int, set[str]]:
        table: dict[int, set[str]] = {}
        for index, raw in enumerate(self.lines, start=1):
            match = _SUPPRESS.search(raw)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            rules.discard("")
            target = index
            if raw.lstrip().startswith("#"):
                # Comment-only line: the marker covers the line below.
                target = index + 1
            table.setdefault(target, set()).update(rules)
        return table

    # -- private-name inventory (LF03's ground truth) ------------------------

    def private_names(self) -> set[str]:
        """Every ``_name`` this module defines as attribute or method.

        Collected from ``self._x`` / ``cls._x`` assignments, class-body
        assignments (dataclass fields included), method definitions, and
        module-level bindings — anything an ``obj._x`` access inside the
        same module could legitimately refer to.
        """
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    names.add(node.name)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                if node.attr.startswith("_") and _receiver_is_self(node.value):
                    names.add(node.attr)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id.startswith("_"):
                        names.add(target.id)
        return names


def _receiver_is_self(node: ast.expr) -> bool:
    """Whether an attribute receiver is ``self``/``cls`` (or ``super()``)."""
    if isinstance(node, ast.Name):
        return node.id in ("self", "cls")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "super"
    return False


def _module_name(path: str, text: str) -> str:
    for raw in text.splitlines()[:10]:
        match = _MODULE_OVERRIDE.search(raw)
        if match is not None:
            return match.group(1)
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        index = len(parts) - 2 - parts[-2::-1].index("repro")
        dotted = parts[index:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


class Project:
    """Every module under analysis, parsed, addressable by dotted name."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = sorted(modules, key=lambda m: m.path)
        self.by_name = {module.name: module for module in self.modules}

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    def module(self, name: str) -> SourceModule | None:
        return self.by_name.get(name)


class Rule:
    """Base class: one invariant, checked over the whole project."""

    id: str = "LF00"
    title: str = ""

    def applies(self, module: SourceModule) -> bool:
        return True

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            if self.applies(module):
                yield from self.check_module(project, module)

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        return ()

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def run_rules(project: Project, rules: Sequence[Rule]) -> list[Finding]:
    """Apply rules, drop suppressed findings, return in stable order."""
    findings: list[Finding] = []
    for rule in rules:
        for found in rule.check(project):
            module = next(
                (m for m in project if m.path == found.path), None
            )
            if module is not None and rule.id in module.suppressed_rules(found.line):
                continue
            findings.append(found)
    findings.sort()
    return findings


# -- shared scope predicates -------------------------------------------------


def in_storage_stack(name: str) -> bool:
    """The modules whose invariants the LF rules guard."""
    return (
        name.startswith("repro.storage")
        or name.startswith("repro.labbase")
        or name.startswith("repro.server")
    )


def in_crash_path(name: str) -> bool:
    """Modules where nondeterminism breaks the crash matrix or benches."""
    return name in (
        "repro.storage.disk",
        "repro.storage.faultinject",
        "repro.storage.base",
        "repro.storage.buffer",
        "repro.storage.mmapstore",
        # The record codec writes the bytes the crash matrix replays and
        # the bit-identity properties compare; encode order must never
        # depend on hash order or the clock.
        "repro.storage.codec",
    ) or name.startswith("repro.benchmark")


@dataclass
class ParentMap:
    """Child -> parent links for one tree (guard-context queries)."""

    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ParentMap":
        mapping = cls()
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                mapping.parents[child] = parent
        return mapping

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)
