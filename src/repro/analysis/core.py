"""Rule engine: source modules, findings, suppression, the run loop.

A :class:`Project` is the unit of analysis — every module is parsed up
front so rules can consult cross-module facts (which private names a
module defines, which counters the stats block declares).  Rules are
small classes over the parsed trees; the engine applies per-line
suppression comments and returns findings in a deterministic order, so
two runs over the same tree render byte-identical reports.

Suppression syntax (the only escape hatch)::

    risky_call()  # lint: ignore[LF06] -- justification here

The marker silences the named rule(s) on its own line, or — when the
comment stands alone — on the next code line below it.  Rule ids may be
comma-separated: ``# lint: ignore[LF01, LF03]``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: ``# module: repro.storage.foo`` near the top of a file overrides the
#: path-derived module name — test fixtures use this to pose as storage
#: modules without living inside the package.
_MODULE_OVERRIDE = re.compile(r"#\s*module:\s*([A-Za-z_][\w.]*)")

_SUPPRESS = re.compile(r"#\s*lint:\s*ignore\[([A-Za-z0-9_,\s]+)\]")

#: Underscore attributes that are public API of stdlib types, not
#: privacy violations (namedtuple's documented methods).
NAMEDTUPLE_METHODS = frozenset(
    {"_replace", "_asdict", "_fields", "_make", "_field_defaults"}
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True, order=True)
class SuppressionSite:
    """One ``lint: ignore[...]`` marker: where it sits, what it covers."""

    path: str
    line: int    #: the marker's own 1-based line
    target: int  #: the line whose findings it suppresses
    rule: str


class SourceModule:
    """One parsed source file plus its lint-relevant derived data."""

    def __init__(self, path: str, text: str, name: str | None = None) -> None:
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.name = name or _module_name(path, text)
        self.tree = ast.parse(text, filename=path)
        self._suppressions: dict[int, set[str]] | None = None
        self._sites: tuple[SuppressionSite, ...] | None = None

    # -- suppression ---------------------------------------------------------

    def suppressed_rules(self, line: int) -> set[str]:
        """Rule ids suppressed at a 1-based source line."""
        if self._suppressions is None:
            table: dict[int, set[str]] = {}
            for site in self.suppression_sites():
                table.setdefault(site.target, set()).add(site.rule)
            self._suppressions = table
        return self._suppressions.get(line, set())

    def suppression_sites(self) -> tuple[SuppressionSite, ...]:
        """Every marker in the file (``--check-ignores`` ground truth).

        Only real ``COMMENT`` tokens count: a marker *mentioned* in a
        docstring or an error-message string is documentation, not a
        suppression — the tokenizer is what tells them apart.
        """
        if self._sites is None:
            sites: list[SuppressionSite] = []
            reader = io.StringIO(self.text).readline
            for token in tokenize.generate_tokens(reader):
                if token.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS.search(token.string)
                if match is None:
                    continue
                rules = {part.strip() for part in match.group(1).split(",")}
                rules.discard("")
                index = token.start[0]
                target = index
                if not self.lines[index - 1][: token.start[1]].strip():
                    # Comment-only line: the marker covers the line below.
                    target = index + 1
                sites.extend(
                    SuppressionSite(self.path, index, target, rule)
                    for rule in sorted(rules)
                )
            self._sites = tuple(sites)
        return self._sites

    # -- private-name inventory (LF03's ground truth) ------------------------

    def private_names(self) -> set[str]:
        """Every ``_name`` this module defines as attribute or method.

        Collected from ``self._x`` / ``cls._x`` assignments, class-body
        assignments (dataclass fields included), method definitions, and
        module-level bindings — anything an ``obj._x`` access inside the
        same module could legitimately refer to.
        """
        names: set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if node.name.startswith("_"):
                    names.add(node.name)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Store):
                if node.attr.startswith("_") and _receiver_is_self(node.value):
                    names.add(node.attr)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id.startswith("_"):
                        names.add(target.id)
        return names


def _receiver_is_self(node: ast.expr) -> bool:
    """Whether an attribute receiver is ``self``/``cls`` (or ``super()``)."""
    if isinstance(node, ast.Name):
        return node.id in ("self", "cls")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "super"
    return False


def _module_name(path: str, text: str) -> str:
    for raw in text.splitlines()[:10]:
        match = _MODULE_OVERRIDE.search(raw)
        if match is not None:
            return match.group(1)
    parts = path.replace("\\", "/").split("/")
    stem = parts[-1][:-3] if parts[-1].endswith(".py") else parts[-1]
    if "repro" in parts[:-1]:
        index = len(parts) - 2 - parts[-2::-1].index("repro")
        dotted = parts[index:-1] + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return stem


class Project:
    """Every module under analysis, parsed, addressable by dotted name."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = sorted(modules, key=lambda m: m.path)
        self.by_name = {module.name: module for module in self.modules}

    def __iter__(self) -> Iterator[SourceModule]:
        return iter(self.modules)

    def module(self, name: str) -> SourceModule | None:
        return self.by_name.get(name)


class Rule:
    """Base class: one invariant, checked over the whole project."""

    id: str = "LF00"
    title: str = ""

    def applies(self, module: SourceModule) -> bool:
        return True

    def check(self, project: Project) -> Iterable[Finding]:
        for module in project:
            if self.applies(module):
                yield from self.check_module(project, module)

    def check_module(
        self, project: Project, module: SourceModule
    ) -> Iterable[Finding]:
        return ()

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


def run_rules(
    project: Project,
    rules: Sequence[Rule],
    used_suppressions: set[tuple[str, int, str]] | None = None,
) -> list[Finding]:
    """Apply rules, drop suppressed findings, return in stable order.

    When ``used_suppressions`` is given, every suppression that actually
    swallowed a finding is recorded into it as ``(path, line, rule)`` —
    the evidence ``--check-ignores`` subtracts from the marker inventory
    to expose stale ignores.
    """
    findings: list[Finding] = []
    for rule in rules:
        for found in rule.check(project):
            module = next(
                (m for m in project if m.path == found.path), None
            )
            if module is not None and rule.id in module.suppressed_rules(found.line):
                if used_suppressions is not None:
                    used_suppressions.add((found.path, found.line, rule.id))
                continue
            findings.append(found)
    findings.sort()
    return findings


def stale_ignores(
    project: Project,
    rules: Sequence[Rule],
    used_suppressions: set[tuple[str, int, str]],
    known_ids: set[str] | None = None,
) -> list[Finding]:
    """Markers that suppress nothing, plus markers naming unknown rules.

    Staleness is only judged for markers of rules in ``rules`` — a
    marker for a rule the caller did not run may be load-bearing, and
    silence about it is the only honest answer.  A marker naming a rule
    outside ``known_ids`` (the full registered set) is always flagged:
    it can never suppress anything.  Returned as ``LF00`` findings so
    the reporters and exit codes treat dead markers like any other
    defect.
    """
    selected = {rule.id for rule in rules}
    findings = []
    for module in project:
        for site in module.suppression_sites():
            if known_ids is not None and site.rule not in known_ids:
                findings.append(
                    Finding(
                        path=site.path,
                        line=site.line,
                        col=1,
                        rule="LF00",
                        message=(
                            f"unknown rule id {site.rule!r} in lint: "
                            "ignore marker; it suppresses nothing"
                        ),
                    )
                )
                continue
            if site.rule not in selected:
                continue
            if (module.path, site.target, site.rule) in used_suppressions:
                continue
            findings.append(
                Finding(
                    path=site.path,
                    line=site.line,
                    col=1,
                    rule="LF00",
                    message=(
                        f"stale suppression: {site.rule} reports nothing "
                        f"on line {site.target}; remove the "
                        "lint: ignore marker or fix the rule id"
                    ),
                )
            )
    findings.sort()
    return findings


# -- shared scope predicates -------------------------------------------------


def in_storage_stack(name: str) -> bool:
    """The modules whose invariants the LF rules guard."""
    return (
        name.startswith("repro.storage")
        or name.startswith("repro.labbase")
        or name.startswith("repro.server")
    )


def in_crash_path(name: str) -> bool:
    """Modules where nondeterminism breaks the crash matrix or benches."""
    return name in (
        "repro.storage.disk",
        "repro.storage.faultinject",
        "repro.storage.base",
        "repro.storage.buffer",
        "repro.storage.mmapstore",
        # The record codec writes the bytes the crash matrix replays and
        # the bit-identity properties compare; encode order must never
        # depend on hash order or the clock.
        "repro.storage.codec",
    ) or name.startswith("repro.benchmark")


@dataclass
class ParentMap:
    """Child -> parent links for one tree (guard-context queries)."""

    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ParentMap":
        mapping = cls()
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                mapping.parents[child] = parent
        return mapping

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)
