"""Architecture (A): the benchmark straight against a storage manager.

"Architecture (A) represents the most direct test of a DBMS.  Here,
queries and updates from LabFlow-1 are submitted directly to the DBMS,
without any intervening software.  This architecture is suitable for
testing DBMSs that have been designed with workflow management in mind."

A bare object storage manager has *not* been designed with workflow
management in mind, so :class:`DirectServer` is deliberately naive: it
satisfies the :class:`~repro.arch.wrapper.WorkflowDataServer` contract
using only flat records and linear scans — no most-recent index, no
state sets, no key hashing.  Comparing it against LabBase on the same
store (examples and the A1/E10 ablations) shows exactly what the
wrapper buys, which is the paper's argument for Architecture (C).

Storage-level batched I/O (segment-aware read-ahead and vectored commit
writes, ablation A5) lives *below* this layer, inside the storage
manager's buffer pool — so Architecture (A) benefits from it exactly as
LabBase does, with no intervening software added.  Its linear scans are
in fact the friendliest possible fault pattern for the prefetcher.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import (
    DuplicateKeyError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownMaterialError,
)
from repro.storage.base import StorageManager
from repro.storage.objcache import ObjectCache

_INDEX_ROOT = "direct_index"


class DirectServer:
    """Benchmark-complete, wrapper-free server (Architecture A).

    Data layout: one record per material ``{class, key, steps: [oid]}``
    and one per step ``{class, valid_time, results, involves}``; a single
    root record lists every material oid per class.  Current values are
    found by scanning the material's steps — the cost LabBase's access
    structures exist to avoid.

    ``object_cache`` sets the A4 object-cache capacity.  It defaults to
    0 — Architecture A means *no* intervening software, so even the
    cache layer is opt-in here (LabBase defaults it on).
    """

    def __init__(self, sm: StorageManager, object_cache: int = 0) -> None:
        self._sm = ObjectCache(sm, capacity=object_cache)
        root = self._sm.get_root(_INDEX_ROOT)
        if root is None:
            self._index_oid = self._sm.allocate_write({"classes": {}, "steps": {}})
            self._sm.set_root(_INDEX_ROOT, self._index_oid)
        else:
            self._index_oid = root

    # -- index record -------------------------------------------------------

    def _index(self) -> dict:
        return self._sm.read(self._index_oid)

    def _write_index(self, index: dict) -> None:
        self._sm.write(self._index_oid, index)

    # -- schema -----------------------------------------------------------------

    def define_material_class(
        self,
        name: str,
        key_attribute: str = "name",
        description: str = "",
        parent: str | None = None,
    ) -> None:
        index = self._index()
        index["classes"].setdefault(name, [])
        self._write_index(index)

    def define_step_class(
        self,
        name: str,
        attributes: Iterable[str],
        involves_classes: Iterable[str] = (),
        description: str = "",
    ) -> None:
        index = self._index()
        index["steps"].setdefault(name, list(attributes))
        self._write_index(index)

    # -- updates ------------------------------------------------------------------

    def create_material(
        self,
        class_name: str,
        key: str,
        valid_time: int,
        state: str | None = None,
    ) -> int:
        index = self._index()
        if class_name not in index["classes"]:
            raise UnknownClassError(class_name)
        for oid in index["classes"][class_name]:
            if self._sm.read(oid)["key"] == key:  # linear duplicate check
                raise DuplicateKeyError(class_name, key)
        oid = self._sm.allocate_write(
            {
                "class": class_name,
                "key": key,
                "created": valid_time,
                "state": state,
                "steps": [],
            }
        )
        index["classes"][class_name].append(oid)
        self._write_index(index)
        return oid

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: Iterable[int],
        results: dict | None = None,
        version_id: int | None = None,
    ) -> int:
        index = self._index()
        if class_name not in index["steps"]:
            raise UnknownClassError(class_name)
        involved = [int(oid) for oid in involves]
        step_oid = self._sm.allocate_write(
            {
                "class": class_name,
                "valid_time": valid_time,
                "results": sorted((results or {}).items()),
                "involves": involved,
            }
        )
        for material_oid in involved:
            record = self._sm.read(material_oid)
            record["steps"].append(step_oid)
            self._sm.write(material_oid, record)
        return step_oid

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None:
        record = self._sm.read(material_oid)
        record["state"] = state
        self._sm.write(material_oid, record)

    # -- queries --------------------------------------------------------------------

    def lookup(self, class_name: str, key: str) -> int:
        index = self._index()
        if class_name not in index["classes"]:
            raise UnknownClassError(class_name)
        for oid in index["classes"][class_name]:  # linear scan
            if self._sm.read(oid)["key"] == key:
                return oid
        raise UnknownMaterialError(f"no material {key!r} in class {class_name!r}")

    def most_recent(self, material_oid: int, attribute: str) -> object:
        record = self._sm.read(material_oid)
        best_time = None
        best_value: object = None
        for step_oid in record["steps"]:  # full history scan
            step = self._sm.read(step_oid)
            for attr, value in step["results"]:
                if attr == attribute and (
                    best_time is None or step["valid_time"] >= best_time
                ):
                    best_time = step["valid_time"]
                    best_value = value
        if best_time is None:
            raise UnknownAttributeError(f"material {material_oid}", attribute)
        return best_value

    def in_state(self, state: str) -> list[int]:
        index = self._index()
        found = []
        for oids in index["classes"].values():  # scan everything
            for oid in oids:
                if self._sm.read(oid)["state"] == state:
                    found.append(oid)
        return found

    def count_materials(self, class_name: str, include_subclasses: bool = True) -> int:
        index = self._index()
        if class_name not in index["classes"]:
            raise UnknownClassError(class_name)
        return len(index["classes"][class_name])

    def count_steps(self, class_name: str) -> int:
        index = self._index()
        if class_name not in index["steps"]:
            raise UnknownClassError(class_name)
        total = 0
        for oids in index["classes"].values():
            for oid in oids:
                for step_oid in self._sm.read(oid)["steps"]:
                    if self._sm.read(step_oid)["class"] == class_name:
                        total += 1
        return total

    def report(
        self, material_oids: Iterable[int], attributes: Iterable[str]
    ) -> list[dict]:
        attrs = list(attributes)
        rows = []
        for oid in material_oids:
            record = self._sm.read(oid)
            row: dict[str, object] = {
                "oid": oid,
                "class": record["class"],
                "key": record["key"],
                "state": record["state"],
            }
            for attr in attrs:
                try:
                    row[attr] = self.most_recent(oid, attr)
                except UnknownAttributeError:
                    row[attr] = None
            rows.append(row)
        return rows

    def material_history(self, material_oid: int) -> list:
        record = self._sm.read(material_oid)
        steps = [(oid, self._sm.read(oid)) for oid in record["steps"]]
        steps.sort(key=lambda pair: pair[1]["valid_time"], reverse=True)
        return steps

    # -- transactions ---------------------------------------------------------------

    def begin(self) -> None:
        self._sm.begin()

    def commit(self) -> None:
        self._sm.commit()

    def abort(self) -> None:
        self._sm.abort()
