"""Architecture (B): the workflow-wrapper interface.

The paper's Figure of architectures:

* **(A)** queries/updates go directly to the DBMS — suitable only for a
  DBMS designed for workflow management (``repro.arch.direct`` shows
  what that costs a plain storage manager);
* **(B)** a *workflow wrapper* between the application and a general
  DBMS supplies event histories, most-recent access and schema
  evolution;
* **(C)** the special case benchmarked in the paper: the wrapper is
  LabBase and the DBMS is an object storage manager.

:class:`WorkflowDataServer` is the wrapper contract — the operations
LabFlow-1 requires of whatever sits under Architecture (B).  LabBase is
the reference implementation; the runtime check lets tests assert that
any alternative wrapper is benchmark-complete before the harness will
accept it.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable


@runtime_checkable
class WorkflowDataServer(Protocol):
    """What LabFlow-1 requires of a workflow data server."""

    # schema (U4)
    def define_material_class(
        self, name: str, key_attribute: str = ..., description: str = ...,
        parent: str | None = ...,
    ): ...

    def define_step_class(
        self, name: str, attributes: Iterable[str],
        involves_classes: Iterable[str] = ..., description: str = ...,
    ): ...

    # updates (U1-U3)
    def create_material(
        self, class_name: str, key: str, valid_time: int,
        state: str | None = ...,
    ) -> int: ...

    def record_step(
        self, class_name: str, valid_time: int, involves: Iterable[int],
        results: dict | None = ..., version_id: int | None = ...,
    ) -> int: ...

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None: ...

    # queries (Q1-Q7)
    def lookup(self, class_name: str, key: str) -> int: ...

    def most_recent(self, material_oid: int, attribute: str) -> object: ...

    def in_state(self, state: str) -> list[int]: ...

    def count_materials(
        self, class_name: str, include_subclasses: bool = ...
    ) -> int: ...

    def count_steps(self, class_name: str) -> int: ...

    def report(
        self, material_oids: Iterable[int], attributes: Iterable[str]
    ) -> list[dict]: ...

    def material_history(self, material_oid: int) -> list: ...

    # transactions
    def begin(self) -> None: ...

    def commit(self) -> None: ...

    def abort(self) -> None: ...


def is_benchmark_complete(server: object) -> bool:
    """Whether an object implements the full wrapper contract."""
    return isinstance(server, WorkflowDataServer)
