"""The paper's three benchmark architectures.

(A) direct to the DBMS — :class:`~repro.arch.direct.DirectServer`;
(B) workflow wrapper over a DBMS — the
    :class:`~repro.arch.wrapper.WorkflowDataServer` contract;
(C) LabBase over an object storage manager — the benchmarked case,
    :class:`repro.labbase.LabBase`.
"""

from repro.arch.direct import DirectServer
from repro.arch.wrapper import WorkflowDataServer, is_benchmark_complete

__all__ = ["DirectServer", "WorkflowDataServer", "is_benchmark_complete"]
