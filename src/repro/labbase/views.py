"""Read-only views over materials.

Section 7 of the paper defines a *view* of the event history so that
queries can treat a material as an object whose attributes are its
most-recent values — while the view definition itself stays independent
of the workflow, so workflow changes never force view changes.

:class:`MaterialView` is that view as a Python mapping; the deductive
query language exposes the same view through its ``value_of/3``,
``state/2`` and ``history/2`` base predicates (see
``repro.query.program``).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Iterator

from repro.errors import UnknownAttributeError
from repro.labbase.database import LabBase


class MaterialView(Mapping):
    """Mapping view of a material's current attributes.

    The view is computed lazily per access, so it always reflects the
    database — it is a *view*, not a snapshot.  ``len``/iteration
    enumerate the attributes the material currently has, which (as the
    paper stresses) depends on its history, not only its class.
    """

    def __init__(self, db: LabBase, material_oid: int) -> None:
        self._db = db
        self.oid = material_oid

    # -- identity ----------------------------------------------------------

    @property
    def class_name(self) -> str:
        return self._db.material(self.oid)["class_name"]

    @property
    def key(self) -> str:
        return self._db.material(self.oid)["key"]

    @property
    def state(self) -> str | None:
        return self._db.state_of(self.oid)

    # -- Mapping protocol -----------------------------------------------------

    def __getitem__(self, attribute: str) -> object:
        try:
            return self._db.most_recent(self.oid, attribute)
        except UnknownAttributeError:
            raise KeyError(attribute) from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._db.current_attributes(self.oid))

    def __len__(self) -> int:
        return len(self._db.current_attributes(self.oid))

    def __contains__(self, attribute: object) -> bool:
        if not isinstance(attribute, str):
            return False
        return self._db.has_attribute(self.oid, attribute)

    def __repr__(self) -> str:
        return (
            f"MaterialView({self.class_name}:{self.key}, state={self.state!r}, "
            f"attrs={sorted(self._db.current_attributes(self.oid))})"
        )

    # -- history access ----------------------------------------------------------

    def history(self) -> list[tuple[int, dict]]:
        """The material's audit trail, newest valid time first."""
        return self._db.material_history(self.oid)

    def as_dict(self) -> dict[str, object]:
        """A plain-dict snapshot of the current attributes."""
        return self._db.current_attributes(self.oid)


def view(db: LabBase, class_name: str, key: str) -> MaterialView:
    """Look a material up by (class, key) and wrap it in a view."""
    return MaterialView(db, db.lookup(class_name, key))
