"""The fixed storage schema — the paper's Table 1.

The storage manager's schema never changes, no matter how the user-level
workflow schema evolves.  It consists of exactly three classes:

* ``sm_step`` — one instance per executed workflow step: the step-class
  *version* that created it, its valid time, its list of
  (attribute, value) results, and the materials it ``involves``.
* ``sm_material`` — one instance per material: class name, key, the head
  of its history list, and its most-recent index.
* ``material_set`` — named sets of materials (used for workflow states).

Because storage managers only accept plain data, these "classes" are
dict layouts with constructor/accessor functions, each tagged with a
``kind`` field.  LabBase additionally stores history-list nodes, key-index
buckets and the catalog record — implementation structures the paper's
Section 5.1 describes as LabBase's "special access structures".
"""

from __future__ import annotations

from typing import Iterable

KIND_STEP = "sm_step"
KIND_MATERIAL = "sm_material"
KIND_SET = "material_set"
KIND_HISTORY_NODE = "history_node"
KIND_INDEX_BUCKET = "index_bucket"
KIND_CATALOG = "catalog"

#: Null oid — no object.
NIL = 0

#: Most-recent index entries inline values up to this serialized-ish size;
#: larger values (DNA sequences, BLAST hit lists) stay in the cold step
#: record and the index holds only the step oid.  This keeps the hot
#: segments small, which is the locality design the paper credits.
INLINE_VALUE_LIMIT = 64


def is_inlineable(value: object) -> bool:
    """Whether a result value is small enough to cache in the hot index."""
    if value is None or isinstance(value, (bool, int, float)):
        return True
    if isinstance(value, (str, bytes)):
        return len(value) <= INLINE_VALUE_LIMIT
    return False


# ---------------------------------------------------------------------------
# sm_step
# ---------------------------------------------------------------------------


def make_step(
    class_version: int,
    valid_time: int,
    results: Iterable[tuple[str, object]],
    involves: Iterable[int],
) -> dict:
    """Build an ``sm_step`` record."""
    return {
        "kind": KIND_STEP,
        "class_version": int(class_version),
        "valid_time": int(valid_time),
        "results": [(str(attr), value) for attr, value in results],
        "involves": [int(oid) for oid in involves],
    }


def step_result(step: dict, attribute: str) -> object:
    """The step's value for an attribute.

    Raises :class:`KeyError` when the step recorded no such attribute —
    callers distinguish "no value" from a stored ``None``.
    """
    for attr, value in step["results"]:
        if attr == attribute:
            return value
    raise KeyError(attribute)


def step_attributes(step: dict) -> list[str]:
    return [attr for attr, _ in step["results"]]


# ---------------------------------------------------------------------------
# sm_material
# ---------------------------------------------------------------------------


def make_material(class_name: str, key: str, created: int) -> dict:
    """Build an ``sm_material`` record with an empty history."""
    return {
        "kind": KIND_MATERIAL,
        "class_name": str(class_name),
        "key": str(key),
        "created": int(created),
        "history_head": NIL,
        "history_len": 0,
        # attribute -> [valid_time, step_oid, inlined, value]
        # (lists, not tuples: records round-trip through pickle and we
        # update entries in place before writing back)
        "recent": {},
        "state": None,
        "state_since": None,
    }


def recent_entry(material: dict, attribute: str) -> list | None:
    """The most-recent index entry for an attribute, or None."""
    return material["recent"].get(attribute)


def update_recent(
    material: dict,
    attribute: str,
    valid_time: int,
    step_oid: int,
    value: object,
) -> bool:
    """Maybe install a newer value in the most-recent index.

    "Most recent" is by **valid time**, not insertion order: steps are
    entered in any order and an insert carrying an older valid time must
    not displace a newer value.  Ties go to the later insert (the lab's
    convention: a re-entered result supersedes).  Returns True when the
    index changed.
    """
    current = material["recent"].get(attribute)
    if current is not None and valid_time < current[0]:
        return False
    if is_inlineable(value):
        material["recent"][attribute] = [valid_time, step_oid, True, value]
    else:
        material["recent"][attribute] = [valid_time, step_oid, False, None]
    return True


# ---------------------------------------------------------------------------
# material_set
# ---------------------------------------------------------------------------


def make_material_set(name: str) -> dict:
    """Build an empty ``material_set`` record."""
    return {"kind": KIND_SET, "name": str(name), "members": []}


# ---------------------------------------------------------------------------
# history-list nodes
# ---------------------------------------------------------------------------

#: Step oids per history node.  Chunking keeps node records small enough
#: to update cheaply while bounding pointer-chase depth.
HISTORY_CHUNK = 32


def make_history_node(step_oids: list[int], next_node: int) -> dict:
    return {
        "kind": KIND_HISTORY_NODE,
        "step_oids": list(step_oids),
        "next": int(next_node),
    }


# ---------------------------------------------------------------------------
# key-index buckets
# ---------------------------------------------------------------------------

#: Buckets per material class in the key index.  A bucket is rewritten on
#: each insert, so more buckets = smaller writes but more objects.
KEY_INDEX_BUCKETS = 64


def make_index_bucket() -> dict:
    return {"kind": KIND_INDEX_BUCKET, "entries": {}}


def bucket_for(key: str, buckets: int = KEY_INDEX_BUCKETS) -> int:
    """Deterministic bucket number for a material key.

    Uses a stable string hash (not ``hash()``, which is salted per
    process) so bucket assignment survives reopening the database.
    """
    acc = 5381
    for char in key:
        acc = ((acc * 33) + ord(char)) & 0xFFFFFFFF
    return acc % buckets


TABLE_1 = """\
storage class   contents
--------------  ---------------------------------------------------------
sm_step         step-class version, valid time, (attribute, value)
                results, oids of materials it involves
sm_material     class name, key, history-list head, most-recent index,
                current workflow state
material_set    named sets of material oids (workflow states, cohorts)"""
