"""Multi-client sessions over LabBase.

Section 10's usability comparison: ObjectStore "offers concurrent
access with lock based concurrency control implemented in a page
server", while "Texas does not support concurrent access".  This module
surfaces that difference at the LabBase level: a :class:`Session` is a
named client whose updates take page locks on the materials they touch,
so two sessions of a multi-user lab (data entry, a BLAST daemon, a
report writer) can be driven against one LabBase and their conflicts
observed.

On a storage manager without concurrency support, opening a second
session raises — the Texas behaviour.  The simulation is single-process
(sessions interleave, they do not run in parallel), so a conflicting
lock raises :class:`~repro.errors.LockError` where a real client would
block; callers handle it the way 1996 applications did: release and
retry.  The served layer (``repro.server``) builds the blocking
behaviour — queued waits, timeouts, bounded retry — on top of exactly
this raise-and-retry surface.

Partial failure discipline: a multi-page acquisition that conflicts
partway undoes exactly what it changed — locks it *newly* took are
released, SHARED holds it *upgraded* to EXCLUSIVE are downgraded back
to SHARED.  (Releasing an upgraded page outright would drop a lock the
session held before the failed call; leaving it EXCLUSIVE would wrongly
refuse every other reader for the life of the session.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, TypeVar

from repro.errors import ConcurrencyUnsupportedError, LabBaseError, LockError
from repro.labbase.database import LabBase
from repro.storage.locks import LockGrant

T = TypeVar("T")


@dataclass
class LockedPages:
    """What one acquisition call changed, and therefore how to undo it.

    ``new`` pages are released on rollback; ``upgraded`` pages (SHARED
    promoted to EXCLUSIVE) are downgraded back to SHARED.
    """

    new: list[int] = field(default_factory=list)
    upgraded: list[int] = field(default_factory=list)

    def extend(self, other: "LockedPages") -> None:
        self.new.extend(other.new)
        self.upgraded.extend(other.upgraded)

    def __bool__(self) -> bool:
        return bool(self.new or self.upgraded)


class Session:
    """One named client working through a shared LabBase."""

    def __init__(self, manager: "SessionManager", name: str) -> None:
        self._manager = manager
        self.name = name
        self.closed = False

    @property
    def db(self) -> LabBase:
        return self._manager.db

    def _check(self) -> None:
        if self.closed:
            raise LabBaseError(f"session {self.name!r} is closed")

    # -- locking -------------------------------------------------------------

    def lock_material(self, material_oid: int, exclusive: bool = False) -> None:
        """Lock the page(s) holding a material's record."""
        self._check()
        self._manager.lock_object(self.name, material_oid, exclusive)

    # -- locked operations ---------------------------------------------------------

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: Iterable[int],
        results: dict[str, object] | None = None,
        version_id: int | None = None,
    ) -> int:
        """U1 under exclusive locks on every involved material.

        Locks are acquired in oid order regardless of the caller's
        ``involves`` order, and a conflict partway releases the locks
        this call already took — two sessions grabbing overlapping
        material sets can no longer livelock on retry or leak locks.
        The step record keeps the caller's ``involves`` order.
        """
        self._check()
        involved = [int(oid) for oid in involves]
        self._manager.lock_objects(self.name, involved, exclusive=True)
        return self._manager.run_attributed(
            self.name,
            lambda: self.db.record_step(
                class_name, valid_time, involved, results, version_id
            ),
        )

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None:
        """U3 under an exclusive lock on the material."""
        self._check()
        self.lock_material(material_oid, exclusive=True)
        self._manager.run_attributed(
            self.name, lambda: self.db.set_state(material_oid, state, valid_time)
        )

    def most_recent(self, material_oid: int, attribute: str) -> object:
        """Q2 under a shared lock on the material."""
        self._check()
        self.lock_material(material_oid, exclusive=False)
        return self.db.most_recent(material_oid, attribute)

    # -- lifecycle ------------------------------------------------------------------

    def release_locks(self) -> int:
        """Release every lock this session holds (end of transaction)."""
        self._check()
        # This IS the end-of-transaction boundary: the only
        # caller-facing point where a session's locks drop.
        # lint: ignore[LF08] -- end-of-transaction boundary
        return self._manager.release(self.name)

    def close(self, failed: bool = False) -> None:
        """Detach the session, surrendering locks *and* cache claims.

        ``failed=True`` is the exception path: writes the session
        buffered in the object cache are invalidated instead of drained
        — a client that died mid-unit-of-work must not have its
        half-finished mutations written out by the close itself.
        """
        if self.closed:
            return
        self.closed = True
        self._manager.detach(self.name, failed=failed)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close(failed=exc_type is not None)


class SessionManager:
    """Opens sessions against one LabBase, enforcing SM concurrency rules."""

    def __init__(self, db: LabBase) -> None:
        self.db = db
        self._sm = db.storage
        self._sessions: dict[str, Session] = {}
        self._session_oids: dict[str, set[int]] = {}
        if not hasattr(self._sm, "attach_client"):
            raise ConcurrencyUnsupportedError(
                f"{self._sm.name} has no client-session support at all"
            )

    def open_session(self, name: str) -> Session:
        """Attach a named client; Texas refuses the second one."""
        if name in self._sessions:
            raise LabBaseError(f"session {name!r} already open")
        self._sm.attach_client(name)  # may raise ConcurrencyUnsupportedError
        session = Session(self, name)
        self._sessions[name] = session
        return session

    def lock_object(self, client: str, oid: int, exclusive: bool) -> LockedPages:
        """Lock one object's page(s); returns what the call changed.

        All-or-nothing: a conflict on a later page of a chunked object
        restores the pages this call already touched (new locks
        released, upgrades downgraded) before re-raising.

        A *newly granted* lock is a hand-off point: another client may
        have updated the object since this client last saw it, so the
        cached copy is dropped and the next read goes through the
        storage manager — exactly what a real page-server client does
        when it re-acquires a page lock.  An upgrade is not a hand-off:
        the SHARED hold already excluded other writers.
        """
        if not self._sm.supports_concurrency:
            # single-client store: attach succeeded, locks are moot
            return LockedPages()
        taken = LockedPages()
        try:
            for page_id in self._pages_of(oid):
                grant = self._sm.lock_page(client, page_id, exclusive=exclusive)
                if grant is LockGrant.NEW:
                    taken.new.append(page_id)
                elif grant is LockGrant.UPGRADED:
                    taken.upgraded.append(page_id)
        except LockError:
            self._restore_pages(client, taken)
            raise
        if taken.new:
            self.db.cache.evict(oid)
        return taken

    def lock_objects(
        self, client: str, oids: Iterable[int], exclusive: bool
    ) -> LockedPages:
        """Lock several objects in globally consistent (oid) order.

        Sorting gives every session the same acquisition order, so two
        sessions locking ``[A, B]`` and ``[B, A]`` contend on the same
        first object instead of deadlocking/livelocking on each other's
        partial grabs; on conflict every lock newly acquired by this
        call is released — and every upgrade downgraded — before the
        LockError propagates.
        """
        taken = LockedPages()
        if not self._sm.supports_concurrency:
            return taken
        try:
            for oid in sorted(set(int(oid) for oid in oids)):
                taken.extend(self.lock_object(client, oid, exclusive))
        except LockError:
            self._restore_pages(client, taken)
            raise
        return taken

    def _restore_pages(self, client: str, taken: LockedPages) -> None:
        """Undo a partial acquisition: release new locks, demote upgrades."""
        for page_id in taken.new:
            self._sm.unlock_page(client, page_id)
        for page_id in taken.upgraded:
            self._sm.downgrade_page(client, page_id)

    def _pages_of(self, oid: int) -> list[int]:
        return self._sm.pages_of(oid)

    def run_attributed(self, client: str, operation: Callable[[], T]) -> T:
        """Run one client operation, attributing the dirty cache entries
        it creates to the client.

        Sessions interleave but do not run in parallel (single-process),
        so diffing the cache's dirty-oid set around the call names
        exactly the entries this operation buffered — including side
        records (per-state sets, histories, catalog) the client never
        locked directly.  :meth:`detach` settles the accumulated claims.
        """
        before = self.db.cache.dirty_oid_set()
        result = operation()
        created = self.db.cache.dirty_oid_set() - before
        if created:
            self._session_oids.setdefault(client, set()).update(created)
        return result

    def release(self, client: str) -> int:
        """End of transaction: all locks go, and with them the session's
        claim on cached object state (hand-off to the next locker)."""
        self._session_oids.pop(client, None)
        if not self._sm.supports_concurrency:
            return 0
        # Whole-session release at the transaction boundary (group
        # close / session end), not a mid-unit unlock.
        # lint: ignore[LF08] -- transaction-boundary release
        return self._sm.unlock_all(client)

    def detach(self, name: str, failed: bool = False) -> None:
        """Detach a client, settling its cache claims before its locks drop.

        Every dirty cache entry the session's operations created since
        its last ``release`` (tracked by :meth:`run_attributed`) is
        settled here.  A clean detach drains those entries (write-back)
        so nothing the session completed is stranded; a failed detach
        invalidates them (drop without writing) so nothing half-finished
        leaks out.  Either way the entries are settled *while the page
        locks are still held*, then ``detach_client`` surrenders the
        locks.
        """
        self._sessions.pop(name, None)
        touched = self._session_oids.pop(name, set())
        for oid in sorted(touched):
            self.db.cache.evict(oid, write_back=not failed)
        self._sm.detach_client(name)

    def open_sessions(self) -> list[str]:
        return sorted(self._sessions)
