"""Multi-client sessions over LabBase.

Section 10's usability comparison: ObjectStore "offers concurrent
access with lock based concurrency control implemented in a page
server", while "Texas does not support concurrent access".  This module
surfaces that difference at the LabBase level: a :class:`Session` is a
named client whose updates take page locks on the materials they touch,
so two sessions of a multi-user lab (data entry, a BLAST daemon, a
report writer) can be driven against one LabBase and their conflicts
observed.

On a storage manager without concurrency support, opening a second
session raises — the Texas behaviour.  The simulation is single-process
(sessions interleave, they do not run in parallel), so a conflicting
lock raises :class:`~repro.errors.LockError` where a real client would
block; callers handle it the way 1996 applications did: release and
retry.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConcurrencyUnsupportedError, LabBaseError, LockError
from repro.labbase.database import LabBase


class Session:
    """One named client working through a shared LabBase."""

    def __init__(self, manager: "SessionManager", name: str) -> None:
        self._manager = manager
        self.name = name
        self.closed = False

    @property
    def db(self) -> LabBase:
        return self._manager.db

    def _check(self) -> None:
        if self.closed:
            raise LabBaseError(f"session {self.name!r} is closed")

    # -- locking -------------------------------------------------------------

    def lock_material(self, material_oid: int, exclusive: bool = False) -> None:
        """Lock the page(s) holding a material's record."""
        self._check()
        self._manager.lock_object(self.name, material_oid, exclusive)

    # -- locked operations ---------------------------------------------------------

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: Iterable[int],
        results: dict[str, object] | None = None,
        version_id: int | None = None,
    ) -> int:
        """U1 under exclusive locks on every involved material.

        Locks are acquired in oid order regardless of the caller's
        ``involves`` order, and a conflict partway releases the locks
        this call already took — two sessions grabbing overlapping
        material sets can no longer livelock on retry or leak locks.
        The step record keeps the caller's ``involves`` order.
        """
        self._check()
        involved = [int(oid) for oid in involves]
        self._manager.lock_objects(self.name, involved, exclusive=True)
        return self.db.record_step(
            class_name, valid_time, involved, results, version_id
        )

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None:
        """U3 under an exclusive lock on the material."""
        self._check()
        self.lock_material(material_oid, exclusive=True)
        self.db.set_state(material_oid, state, valid_time)

    def most_recent(self, material_oid: int, attribute: str) -> object:
        """Q2 under a shared lock on the material."""
        self._check()
        self.lock_material(material_oid, exclusive=False)
        return self.db.most_recent(material_oid, attribute)

    # -- lifecycle ------------------------------------------------------------------

    def release_locks(self) -> int:
        """Release every lock this session holds (end of transaction)."""
        self._check()
        return self._manager.release(self.name)

    def close(self) -> None:
        if self.closed:
            return
        self._manager.release(self.name)
        self._manager.detach(self.name)
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SessionManager:
    """Opens sessions against one LabBase, enforcing SM concurrency rules."""

    def __init__(self, db: LabBase) -> None:
        self.db = db
        self._sm = db.storage
        self._sessions: dict[str, Session] = {}
        if not hasattr(self._sm, "attach_client"):
            raise ConcurrencyUnsupportedError(
                f"{self._sm.name} has no client-session support at all"
            )

    def open_session(self, name: str) -> Session:
        """Attach a named client; Texas refuses the second one."""
        if name in self._sessions:
            raise LabBaseError(f"session {name!r} already open")
        self._sm.attach_client(name)  # may raise ConcurrencyUnsupportedError
        session = Session(self, name)
        self._sessions[name] = session
        return session

    def lock_object(self, client: str, oid: int, exclusive: bool) -> list[int]:
        """Lock one object's page(s); returns the newly acquired page ids.

        All-or-nothing: a conflict on a later page of a chunked object
        releases the pages this call already took before re-raising.

        A *newly granted* lock is a hand-off point: another client may
        have updated the object since this client last saw it, so the
        cached copy is dropped and the next read goes through the
        storage manager — exactly what a real page-server client does
        when it re-acquires a page lock.
        """
        if not self._sm.supports_concurrency:
            # single-client store: attach succeeded, locks are moot
            return []
        newly: list[int] = []
        try:
            for page_id in self._pages_of(oid):
                if self._sm.lock_page(client, page_id, exclusive=exclusive):
                    newly.append(page_id)
        except LockError:
            self._unlock_pages(client, newly)
            raise
        if newly:
            self.db.cache.evict(oid)
        return newly

    def lock_objects(self, client: str, oids: Iterable[int], exclusive: bool) -> None:
        """Lock several objects in globally consistent (oid) order.

        Sorting gives every session the same acquisition order, so two
        sessions locking ``[A, B]`` and ``[B, A]`` contend on the same
        first object instead of deadlocking/livelocking on each other's
        partial grabs; on conflict every lock newly acquired by this
        call is released before the LockError propagates.
        """
        if not self._sm.supports_concurrency:
            return
        newly: list[int] = []
        try:
            for oid in sorted(set(int(oid) for oid in oids)):
                newly.extend(self.lock_object(client, oid, exclusive))
        except LockError:
            self._unlock_pages(client, newly)
            raise

    def _unlock_pages(self, client: str, page_ids: list[int]) -> None:
        for page_id in page_ids:
            self._sm.unlock_page(client, page_id)

    def _pages_of(self, oid: int) -> list[int]:
        return self._sm.pages_of(oid)

    def release(self, client: str) -> int:
        if not self._sm.supports_concurrency:
            return 0
        return self._sm.unlock_all(client)

    def detach(self, name: str) -> None:
        self._sessions.pop(name, None)
        self._sm.detach_client(name)

    def open_sessions(self) -> list[str]:
        return sorted(self._sessions)
