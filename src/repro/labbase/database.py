"""LabBase: the workflow-DBMS wrapper (the paper's Architecture C).

One :class:`LabBase` instance runs over any
:class:`~repro.storage.base.StorageManager` and provides what the
benchmark requires of a workflow DBMS:

* event histories — every step is recorded forever, materials derive
  their attributes from the steps that processed them;
* most-recent queries by valid time, served from a per-material index;
* workflow states backed by ``material_set`` records;
* dynamic schema evolution via attribute-set step-class versions;
* named material sets, counting and report generation.

Storage layout (the four segments of Section 5.1 — three small hot, one
large cold)::

    labbase.catalog    catalog record + key-index buckets      (hot)
    labbase.materials  sm_material records w/ most-recent index (hot)
    labbase.sets       material_set records                     (hot)
    labbase.history    sm_step records + history-list nodes     (cold)

On storage managers without segments (Texas) the same calls run
unchanged; everything lands in one heap in allocation order, which is
precisely the locality contrast experiment E5 measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.storage.integrity import IntegrityReport

from repro.errors import (
    DuplicateKeyError,
    UnknownAttributeError,
    UnknownMaterialError,
)
from repro.labbase import model
from repro.labbase.catalog import Catalog
from repro.labbase.history import HistoryStore
from repro.labbase.schema import MaterialClass, StepClassVersion
from repro.labbase.statestore import StateStore
from repro.storage.base import StorageManager
from repro.storage.objcache import DEFAULT_CACHE_OBJECTS, ObjectCache

SEG_CATALOG = "labbase.catalog"
SEG_MATERIALS = "labbase.materials"
SEG_SETS = "labbase.sets"
SEG_HISTORY = "labbase.history"

SEGMENT_PLAN = (
    (SEG_CATALOG, "catalog + key-index buckets (small, hot)"),
    (SEG_MATERIALS, "sm_material records with most-recent indexes (small, hot)"),
    (SEG_SETS, "material_set records (small, hot)"),
    (SEG_HISTORY, "sm_step records + history nodes (large, cold)"),
)


class LabBase:
    """The workflow data server.

    Parameters
    ----------
    sm:
        Any storage manager.  LabBase requests its four segments; a
        manager without segment support serves everything from one heap.
    use_most_recent_index:
        When False (ablation A1), most-recent queries scan history
        instead of using the per-material index.
    history_chunk:
        Step oids per history-list node.
    object_cache:
        ``True`` (default) caches :data:`~repro.storage.objcache.DEFAULT_CACHE_OBJECTS`
        deserialized objects; an int sets the capacity directly.
        ``False`` (ablation A4 "off") keeps a capacity-0 cache: reads
        always go to the storage manager, but writes still follow the
        same unit-of-work discipline, so both settings issue the
        identical storage-manager write sequence (byte-identical
        databases).
    """

    def __init__(
        self,
        sm: StorageManager,
        use_most_recent_index: bool = True,
        history_chunk: int = model.HISTORY_CHUNK,
        object_cache: bool | int = True,
    ) -> None:
        self._sm = sm
        self.use_most_recent_index = use_most_recent_index
        if object_cache is True:
            capacity = DEFAULT_CACHE_OBJECTS
        elif object_cache is False:
            capacity = 0
        else:
            capacity = int(object_cache)
        self._store = ObjectCache(sm, capacity=capacity)
        # Commit-batched most-recent index: while a unit of work is
        # buffering, record_step accumulates each material's candidate
        # index winners here (attribute -> [valid_time, step_oid,
        # inlined, value]) instead of folding them into the hot record
        # per step; the cache's flush listener installs them exactly
        # once, at the head of the commit drain.
        self._pending_recent: dict[int, dict[str, list]] = {}
        self._store.set_unit_listeners(
            flush=self._install_pending_recent,
            discard=self._pending_recent.clear,
        )
        for name, description in SEGMENT_PLAN:
            sm.create_segment(name, description)
        seg = self.segment_arg
        self.catalog = Catalog(self._store, seg(SEG_CATALOG))
        self.history = HistoryStore(self._store, seg(SEG_HISTORY), chunk=history_chunk)
        self.sets = StateStore(self._store, self.catalog, seg(SEG_SETS))

    def segment_arg(self, name: str) -> str | None:
        return name if self._sm.supports_segments else None

    @property
    def storage(self) -> StorageManager:
        return self._sm

    @property
    def cache(self) -> ObjectCache:
        """The unit-of-work object cache every component reads through."""
        return self._store

    # ------------------------------------------------------------------
    # crash consistency
    # ------------------------------------------------------------------

    def verify_storage(self) -> IntegrityReport:
        """Integrity report for the underlying store (never modifies it)."""
        return self._sm.verify()

    def recover_storage(self) -> dict[str, int]:
        """Repair the store after a crash-reopen, then reload the catalog.

        Recovery may drop objects the catalog (as read at construction)
        still references, or drop the catalog record itself; reloading
        re-reads it from the repaired roots — or bootstraps a fresh one.
        """
        outcome = self._sm.recover()
        self.catalog.reload()
        return outcome

    # ------------------------------------------------------------------
    # schema (U4)
    # ------------------------------------------------------------------

    def define_material_class(
        self,
        name: str,
        key_attribute: str = "name",
        description: str = "",
        parent: str | None = None,
    ) -> MaterialClass:
        """Register a material class (idempotent for equal definitions)."""
        material_class = MaterialClass(
            name=name,
            key_attribute=key_attribute,
            description=description,
            parent=parent,
        )
        self.catalog.register_material_class(material_class)
        return material_class

    def define_step_class(
        self,
        name: str,
        attributes: Iterable[str],
        involves_classes: Iterable[str] = (),
        description: str = "",
    ) -> StepClassVersion:
        """Register a step class / apply a schema change (operation U4).

        A new attribute set creates a new version; existing data is
        never touched (E9's measured property).
        """
        return self.catalog.register_step_class(
            name,
            tuple(attributes),
            tuple(involves_classes),
            description,
        )

    # ------------------------------------------------------------------
    # key index
    # ------------------------------------------------------------------

    def bucket_oid(self, class_name: str, key: str, create: bool) -> int:
        buckets = self.catalog.key_index[class_name]
        if not buckets:
            if not create:
                return model.NIL
            buckets.extend([model.NIL] * model.KEY_INDEX_BUCKETS)
        index = model.bucket_for(key, len(buckets))
        if buckets[index] == model.NIL:
            if not create:
                return model.NIL
            buckets[index] = self._store.allocate_write(
                model.make_index_bucket(), segment=self.segment_arg(SEG_CATALOG)
            )
            self.catalog.save()
        return buckets[index]

    def _index_insert(self, class_name: str, key: str, material_oid: int) -> None:
        bucket_oid = self.bucket_oid(class_name, key, create=True)
        bucket = self._store.read(bucket_oid)
        if key in bucket["entries"]:
            raise DuplicateKeyError(class_name, key)
        bucket["entries"][key] = material_oid
        self._store.write(bucket_oid, bucket)

    def _index_lookup(self, class_name: str, key: str) -> int:
        self.catalog.material_class(class_name)  # raise on unknown class
        bucket_oid = self.bucket_oid(class_name, key, create=False)
        if bucket_oid == model.NIL:
            raise UnknownMaterialError(f"no material {key!r} in class {class_name!r}")
        bucket = self._store.read(bucket_oid)
        oid = bucket["entries"].get(key)
        if oid is None:
            raise UnknownMaterialError(f"no material {key!r} in class {class_name!r}")
        return oid

    # ------------------------------------------------------------------
    # materials (U2)
    # ------------------------------------------------------------------

    def create_material(
        self,
        class_name: str,
        key: str,
        valid_time: int,
        state: str | None = None,
    ) -> int:
        """create_<class>(M): new material instance, returns its oid."""
        self.catalog.material_class(class_name)
        record = model.make_material(class_name, key, valid_time)
        oid = self._store.allocate_write(record, segment=self.segment_arg(SEG_MATERIALS))
        self._index_insert(class_name, key, oid)
        if state is not None:
            self.sets.enter_state(oid, record, state, valid_time)
        self._store.write(oid, record)
        self.catalog.material_counts[class_name] = (
            self.catalog.material_counts.get(class_name, 0) + 1
        )
        self.catalog.save_counters()
        return oid

    def material(self, oid: int) -> dict:
        """The raw sm_material record (treat as read-only)."""
        record = self._store.read(oid)
        if record.get("kind") != model.KIND_MATERIAL:
            raise UnknownMaterialError(f"oid {oid} is not a material")
        return record

    def lookup(self, class_name: str, key: str) -> int:
        """Q1: material oid by (class, key)."""
        return self._index_lookup(class_name, key)

    def material_exists(self, class_name: str, key: str) -> bool:
        try:
            self._index_lookup(class_name, key)
        except UnknownMaterialError:
            return False
        return True

    # ------------------------------------------------------------------
    # steps (U1) — workflow tracking
    # ------------------------------------------------------------------

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: Iterable[int],
        results: dict[str, object] | None = None,
        version_id: int | None = None,
    ) -> int:
        """U1: insert a step instance; extends every involved history.

        ``results`` must use attributes declared by the step-class
        version (the current one unless ``version_id`` pins an older
        version — old lab software keeps writing old-format steps after
        a schema change, which LabBase must accept).
        """
        step_class = self.catalog.step_class(class_name)
        version = (
            step_class.current
            if version_id is None
            else step_class.version_by_id(version_id)
        )
        results = dict(results or {})
        version.validate_results(results)
        involved = [int(oid) for oid in involves]

        step = model.make_step(
            class_version=version.version_id,
            valid_time=valid_time,
            results=sorted(results.items()),
            involves=involved,
        )
        step_oid = self._store.allocate_write(
            step, segment=self.segment_arg(SEG_HISTORY)
        )

        buffering = self._store.in_transaction
        for material_oid in involved:
            material = self.material(material_oid)
            self.history.append(material, step_oid)
            if self.use_most_recent_index:
                if buffering:
                    # Fold this step's results into the pending winners
                    # (same rule as model.update_recent: most-recent by
                    # valid time, ties to the later insert).  The hot
                    # record is still written — the history head moved —
                    # but its index is touched once per commit, not
                    # once per step.
                    pending = self._pending_recent.setdefault(material_oid, {})
                    for attr, value in results.items():
                        entry = pending.get(attr)
                        if entry is None or valid_time >= entry[0]:
                            if model.is_inlineable(value):
                                pending[attr] = [valid_time, step_oid, True, value]
                            else:
                                pending[attr] = [valid_time, step_oid, False, None]
                else:
                    for attr, value in results.items():
                        model.update_recent(
                            material, attr, valid_time, step_oid, value
                        )
            self._store.write(material_oid, material)

        self.catalog.step_counts[class_name] = (
            self.catalog.step_counts.get(class_name, 0) + 1
        )
        self.catalog.version_step_counts[version.version_id] = (
            self.catalog.version_step_counts.get(version.version_id, 0) + 1
        )
        self.catalog.save_counters()
        return step_oid

    def step(self, oid: int) -> dict:
        """The raw sm_step record (treat as read-only)."""
        record = self._store.read(oid)
        if record.get("kind") != model.KIND_STEP:
            raise UnknownMaterialError(f"oid {oid} is not a step")
        return record

    # -- commit-batched most-recent index ------------------------------------

    def _install_recent(self, material_oid: int, material: dict) -> bool:
        """Fold one material's pending index winners into its record.

        Applying the accumulated winner with ``update_recent``'s rule
        (install when ``valid_time >= current``) yields exactly the
        entry — and the key insertion order — the per-step path would
        have produced: the fold is associative, and a pending attribute
        always enters the record in first-candidate order.
        """
        pending = self._pending_recent.pop(material_oid, None)
        if not pending:
            return False
        recent = material["recent"]
        for attr, entry in pending.items():
            current = recent.get(attr)
            if current is None or entry[0] >= current[0]:
                recent[attr] = entry
        return True

    def _install_pending_recent(self) -> None:
        """Install every pending winner (the cache's flush listener).

        Runs at the head of every unit-of-work drain, in material-oid
        order, so the installed records join the same deterministic
        oid-ordered write sequence the unbatched path produced.
        """
        for material_oid in sorted(self._pending_recent):
            # The unit that buffered the winners also wrote the material
            # (the history append dirties it), so the dirty peek avoids
            # billing a logical read for pure install bookkeeping.  The
            # read fallback covers a mid-transaction lock hand-off that
            # evicted the dirty entry.
            material = self._store.peek_dirty(material_oid)
            if material is None:
                material = self._store.read(material_oid)
            if self._install_recent(material_oid, material):
                self._store.write(material_oid, material)

    def retract_step(self, step_oid: int) -> None:
        """Remove a step from the event history (correction of a mistake).

        Unlinks it from every involved material, rebuilds their
        most-recent indexes (older values may resurface), and deletes
        the step record.
        """
        step = self.step(step_oid)
        for material_oid in step["involves"]:
            material = self.material(material_oid)
            if self.history.remove_step(material, step_oid):
                if self.use_most_recent_index:
                    # Pending winners may name the retracted step; the
                    # rebuild recomputes from the full history (which
                    # subsumes every pending candidate), so they drop.
                    self._pending_recent.pop(material_oid, None)
                    self.history.rebuild_recent(material)
                self._store.write(material_oid, material)
        version = self.catalog.step_version(step["class_version"])
        self.catalog.step_counts[version.name] -= 1
        self.catalog.version_step_counts[version.version_id] -= 1
        self._store.delete(step_oid)
        self.catalog.save_counters()

    # ------------------------------------------------------------------
    # workflow states (U3)
    # ------------------------------------------------------------------

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None:
        """U3: retract old state, assert new state."""
        material = self.material(material_oid)
        self.sets.enter_state(material_oid, material, state, valid_time)
        self._store.write(material_oid, material)

    def clear_state(self, material_oid: int) -> str:
        """Retract the material's state with no replacement."""
        material = self.material(material_oid)
        old = self.sets.leave_state(material_oid, material)
        self._store.write(material_oid, material)
        return old

    def state_of(self, material_oid: int) -> str | None:
        return self.material(material_oid)["state"]

    def in_state(self, state: str) -> list[int]:
        """Q3: all materials currently in a workflow state."""
        return self.sets.in_state(state)

    # ------------------------------------------------------------------
    # most-recent queries (Q2) and views
    # ------------------------------------------------------------------

    def most_recent(self, material_oid: int, attribute: str) -> object:
        """Q2: the most-recent value (by valid time) of an attribute."""
        material = self.material(material_oid)
        if not self.use_most_recent_index:
            found = self.history.scan_most_recent(material, attribute)
            if found is None:
                raise UnknownAttributeError(f"material {material_oid}", attribute)
            return found[2]
        # A mid-unit query sees its own writes: materialize the pending
        # winners first.  The write buffers with the unit's others, so
        # this adds no storage write the commit would not issue anyway.
        if self._pending_recent and self._install_recent(material_oid, material):
            self._store.write(material_oid, material)
        entry = model.recent_entry(material, attribute)
        if entry is None:
            raise UnknownAttributeError(f"material {material_oid}", attribute)
        _valid_time, step_oid, inlined, value = entry
        if inlined:
            return value
        return model.step_result(self.step(step_oid), attribute)

    def value_as_of(
        self, material_oid: int, attribute: str, valid_time: int
    ) -> object:
        """The attribute's value as of a past valid time.

        The situation-calculus reading of the history (Section 7): the
        state at time T is the result of the most recent actions at or
        before T.  Always a history scan — the most-recent index only
        accelerates "now" — so cost is linear in history length, which
        is why the lab asks it rarely and the index exists for Q2.
        """
        material = self.material(material_oid)
        best: tuple[int, object] | None = None
        for _oid, step in self.history.steps(material):
            step_time = step["valid_time"]
            if step_time > valid_time:
                continue
            try:
                value = model.step_result(step, attribute)
            except KeyError:
                continue
            if best is None or step_time > best[0]:
                best = (step_time, value)
        if best is None:
            raise UnknownAttributeError(
                f"material {material_oid} (as of t={valid_time})", attribute
            )
        return best[1]

    def attributes_as_of(
        self, material_oid: int, valid_time: int
    ) -> dict[str, object]:
        """The material's full attribute view as of a past valid time."""
        material = self.material(material_oid)
        values: dict[str, object] = {}
        seen: dict[str, int] = {}
        for _oid, step in self.history.steps(material):
            step_time = step["valid_time"]
            if step_time > valid_time:
                continue
            for attr, value in step["results"]:
                if attr not in seen or step_time > seen[attr]:
                    seen[attr] = step_time
                    values[attr] = value
        return values

    def has_attribute(self, material_oid: int, attribute: str) -> bool:
        try:
            self.most_recent(material_oid, attribute)
        except UnknownAttributeError:
            return False
        return True

    def current_attributes(self, material_oid: int) -> dict[str, object]:
        """Merged current attribute view of a material.

        The material's *type* depends on its history, not only its
        class: attributes exist exactly when some step produced them.
        """
        material = self.material(material_oid)
        if self.use_most_recent_index:
            if self._pending_recent and self._install_recent(material_oid, material):
                self._store.write(material_oid, material)
            return {
                attr: self.most_recent(material_oid, attr)
                for attr in material["recent"]
            }
        values: dict[str, object] = {}
        seen: dict[str, int] = {}
        for _oid, step in self.history.steps(material):
            for attr, value in step["results"]:
                if attr not in seen or step["valid_time"] > seen[attr]:
                    seen[attr] = step["valid_time"]
                    values[attr] = value
        return values

    # ------------------------------------------------------------------
    # history (Q7)
    # ------------------------------------------------------------------

    def material_history(self, material_oid: int) -> list[tuple[int, dict]]:
        """Q7: the audit trail, newest valid time first."""
        material = self.material(material_oid)
        return self.history.steps_by_valid_time(material)

    def history_length(self, material_oid: int) -> int:
        return self.material(material_oid)["history_len"]

    # ------------------------------------------------------------------
    # counting (Q5) and reports (Q6)
    # ------------------------------------------------------------------

    def count_materials(self, class_name: str, include_subclasses: bool = True) -> int:
        """Q5: materials in a class (and its EER subclasses)."""
        if not include_subclasses:
            self.catalog.material_class(class_name)
            return self.catalog.material_counts.get(class_name, 0)
        return sum(
            self.catalog.material_counts.get(name, 0)
            for name in self.catalog.subclasses(class_name)
        )

    def count_steps(self, class_name: str) -> int:
        """Q5: steps recorded under a step class (all versions)."""
        self.catalog.step_class(class_name)
        return self.catalog.step_counts.get(class_name, 0)

    def report(
        self, material_oids: Iterable[int], attributes: Iterable[str]
    ) -> list[dict[str, object]]:
        """Q6: one row per material with key, state and chosen attributes.

        Missing attributes render as None (a report column, not an
        error): materials in early workflow states lack later attrs.
        """
        attrs = list(attributes)
        rows = []
        for oid in material_oids:
            material = self.material(oid)
            row: dict[str, object] = {
                "oid": oid,
                "class": material["class_name"],
                "key": material["key"],
                "state": material["state"],
            }
            for attr in attrs:
                try:
                    row[attr] = self.most_recent(oid, attr)
                except UnknownAttributeError:
                    row[attr] = None
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # iteration helpers (integrity checks, re-indexing, tests)
    # ------------------------------------------------------------------

    def iter_materials(self) -> Iterator[tuple[int, dict]]:
        """Every material record (storage scan; not a benchmark op)."""
        self._install_pending_recent()
        for oid in self._store.oids():
            record = self._store.read(oid)
            if isinstance(record, dict) and record.get("kind") == model.KIND_MATERIAL:
                yield oid, record

    def iter_steps(self) -> Iterator[tuple[int, dict]]:
        """Every step record (storage scan; not a benchmark op)."""
        for oid in self._store.oids():
            record = self._store.read(oid)
            if isinstance(record, dict) and record.get("kind") == model.KIND_STEP:
                yield oid, record

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------

    def begin(self) -> None:
        self._store.begin()

    def commit(self) -> None:
        self._store.commit()

    def abort(self) -> None:
        self._store.abort()
        self.catalog.reload()
