"""Event-history lists.

Every step applied to a material is appended to the material's history —
the audit trail at the heart of the benchmark.  Histories are stored as
chains of fixed-size nodes in the *cold* ``history`` segment: the newest
node is the list head (referenced from the hot ``sm_material`` record),
and each node points at the next-older one.  Append therefore touches at
most the head node; full-history scans (Q7) walk the chain newest-first.

The paper's "structures for rapid access into history lists" — the
most-recent index — lives in the material record itself (see
``repro.labbase.model.update_recent``); this module provides the list
mechanics plus the slow path that scans history when the index is
disabled (ablation A1) or must be rebuilt after a retraction.
"""

from __future__ import annotations

from typing import Iterator

from repro.labbase import model
from repro.storage.objcache import ObjectCache


class HistoryStore:
    """History-list operations over LabBase's cache-backed store handle.

    Chain walks (``steps``, ``steps_by_valid_time``, ``scan_most_recent``)
    read every node and step record through the object cache, so a warm
    cache serves repeat scans without touching the storage manager.
    """

    def __init__(
        self,
        sm: ObjectCache,
        segment: str | None,
        chunk: int = model.HISTORY_CHUNK,
    ) -> None:
        if chunk < 1:
            raise ValueError("history chunk must be at least 1")
        self._sm = sm
        self._segment = segment
        self._chunk = chunk

    @property
    def chunk_size(self) -> int:
        """Steps per history chunk node (bulk loading sizes its batches to this)."""
        return self._chunk

    # -- append ----------------------------------------------------------------

    def append(self, material: dict, step_oid: int) -> None:
        """Link a step into a material's history (newest at the head).

        Mutates the material record in memory; the caller persists it
        (it is rewriting the material anyway to update the index).
        """
        head_oid = material["history_head"]
        if head_oid != model.NIL:
            head = self._sm.read(head_oid)
            if len(head["step_oids"]) < self._chunk:
                head["step_oids"].append(step_oid)
                self._sm.write(head_oid, head)
                material["history_len"] += 1
                return
        node = model.make_history_node([step_oid], next_node=head_oid)
        new_head = self._sm.allocate_write(node, segment=self._segment)
        material["history_head"] = new_head
        material["history_len"] += 1

    # -- scans ------------------------------------------------------------------

    def step_oids(self, material: dict) -> Iterator[int]:
        """All step oids for a material, newest insertion first."""
        node_oid = material["history_head"]
        while node_oid != model.NIL:
            node = self._sm.read(node_oid)
            yield from reversed(node["step_oids"])
            node_oid = node["next"]

    def steps(self, material: dict) -> Iterator[tuple[int, dict]]:
        """(oid, record) pairs for a material's steps, newest first."""
        for step_oid in self.step_oids(material):
            yield step_oid, self._sm.read(step_oid)

    def steps_by_valid_time(self, material: dict) -> list[tuple[int, dict]]:
        """(oid, record) pairs ordered newest valid time first.

        Insertion order and valid-time order differ when results are
        entered late; queries about "the" history use valid time.
        """
        entries = list(self.steps(material))
        entries.sort(key=lambda pair: pair[1]["valid_time"], reverse=True)
        return entries

    # -- most-recent, the slow way --------------------------------------------------

    def scan_most_recent(self, material: dict, attribute: str) -> tuple[int, int, object] | None:
        """Find the most-recent value by scanning history.

        Returns ``(valid_time, step_oid, value)`` for the step with the
        greatest valid time that records ``attribute``, or None.  This is
        the path the most-recent index exists to avoid; the ablation A1
        and index rebuilds (after retraction) use it.
        """
        best: tuple[int, int, object] | None = None
        for step_oid, step in self.steps(material):
            try:
                value = model.step_result(step, attribute)
            except KeyError:
                continue
            valid_time = step["valid_time"]
            if best is None or valid_time > best[0]:
                best = (valid_time, step_oid, value)
        return best

    def rebuild_recent(self, material: dict) -> None:
        """Recompute the whole most-recent index from history.

        Needed after a step retraction, which can expose older values.
        Mutates the material record; caller persists.
        """
        material["recent"] = {}
        # Walk oldest-to-newest so update_recent's tie-breaking (later
        # call wins on equal valid time) reproduces insertion order.
        entries = list(self.steps(material))
        for step_oid, step in reversed(entries):
            for attr, value in step["results"]:
                model.update_recent(
                    material, attr, step["valid_time"], step_oid, value
                )

    def remove_step(self, material: dict, step_oid: int) -> bool:
        """Unlink a step from a material's history (retraction).

        Returns True if found.  The step record itself is deleted by the
        caller once every involved material is unlinked.

        A node whose ``step_oids`` list empties is unlinked from the
        chain (the predecessor — or ``history_head`` — is repointed at
        its successor) and its record deleted: retractions must not
        permanently lengthen the Q7 full-history walk or leak
        cold-segment objects.
        """
        prev_oid = model.NIL
        prev: dict | None = None
        node_oid = material["history_head"]
        while node_oid != model.NIL:
            node = self._sm.read(node_oid)
            if step_oid in node["step_oids"]:
                node["step_oids"].remove(step_oid)
                material["history_len"] -= 1
                if node["step_oids"]:
                    self._sm.write(node_oid, node)
                elif prev is None:
                    material["history_head"] = node["next"]
                    self._sm.delete(node_oid)
                else:
                    prev["next"] = node["next"]
                    self._sm.write(prev_oid, prev)
                    self._sm.delete(node_oid)
                return True
            prev_oid, prev = node_oid, node
            node_oid = node["next"]
        return False
