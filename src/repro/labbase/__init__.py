"""LabBase: the workflow DBMS wrapper the benchmark runs through.

The paper's Architecture (C): queries and updates go to LabBase, which
implements event histories, most-recent access structures, workflow
states and schema evolution on top of an object storage manager with a
fixed three-class schema (``sm_step``, ``sm_material``, ``material_set``).
"""

from repro.labbase.bulkload import BulkLoader, BulkRef
from repro.labbase.catalog import Catalog
from repro.labbase.chronicle import Chronicle, ReworkReport, StepClassProfile
from repro.labbase.database import (
    LabBase,
    SEG_CATALOG,
    SEG_HISTORY,
    SEG_MATERIALS,
    SEG_SETS,
    SEGMENT_PLAN,
)
from repro.labbase.history import HistoryStore
from repro.labbase.model import TABLE_1
from repro.labbase.schema import MaterialClass, StepClass, StepClassVersion
from repro.labbase.sessions import Session, SessionManager
from repro.labbase.statestore import StateStore, state_set_name
from repro.labbase.temporal import LabClock
from repro.labbase.views import MaterialView, view

__all__ = [
    "LabBase",
    "BulkLoader",
    "BulkRef",
    "Catalog",
    "Chronicle",
    "StepClassProfile",
    "ReworkReport",
    "HistoryStore",
    "StateStore",
    "state_set_name",
    "Session",
    "SessionManager",
    "MaterialClass",
    "StepClass",
    "StepClassVersion",
    "MaterialView",
    "view",
    "LabClock",
    "TABLE_1",
    "SEGMENT_PLAN",
    "SEG_CATALOG",
    "SEG_MATERIALS",
    "SEG_SETS",
    "SEG_HISTORY",
]
