"""User-level schema: material classes, step classes, and versions.

The benchmark's EER schema (paper Figure 1) has two levels: an upper
level fixed by the benchmark — *materials* and *steps* connected by an
``involves`` relationship, with is-a specialisation below each — and a
lower level defined by the particular workflow (clones, tclones, gels;
associate_tclone, determine_sequence, ...).

Step classes *evolve*: the lab adds or drops attributes as its process
changes.  Following Section 5.1, a step-class **version** is identified
by its attribute set; stored steps remain bound forever to the version
that created them, so schema changes never touch old data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass(frozen=True)
class MaterialClass:
    """A kind of laboratory material (EER entity below ``material``).

    ``parent`` expresses the EER is-a link (e.g. ``tclone`` is-a
    ``clone``-derived material); the root classes have ``parent=None``.
    """

    name: str
    key_attribute: str = "name"
    description: str = ""
    parent: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("material class needs a name")
        if not self.key_attribute:
            raise SchemaError(f"material class {self.name!r} needs a key attribute")


@dataclass(frozen=True)
class StepClassVersion:
    """One immutable version of a step class.

    Identified by its attribute set: registering a step class whose
    attributes differ from every existing version creates a new version
    (the paper's schema-evolution mechanism); re-registering an existing
    attribute set returns the old version.
    """

    version_id: int
    name: str
    attributes: tuple[str, ...]
    involves_classes: tuple[str, ...]
    description: str = ""

    @property
    def attribute_set(self) -> frozenset[str]:
        return frozenset(self.attributes)

    def validate_results(self, results: dict[str, object]) -> None:
        """Reject results naming attributes this version does not declare."""
        unknown = set(results) - self.attribute_set
        if unknown:
            raise SchemaError(
                f"step class {self.name!r} v{self.version_id} does not declare "
                f"attributes {sorted(unknown)} (declares {sorted(self.attributes)})"
            )

    def to_meta(self) -> dict:
        return {
            "version_id": self.version_id,
            "name": self.name,
            "attributes": list(self.attributes),
            "involves_classes": list(self.involves_classes),
            "description": self.description,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "StepClassVersion":
        return cls(
            version_id=meta["version_id"],
            name=meta["name"],
            attributes=tuple(meta["attributes"]),
            involves_classes=tuple(meta["involves_classes"]),
            description=meta.get("description", ""),
        )


@dataclass
class StepClass:
    """A named step class: the sequence of its versions, newest last."""

    name: str
    versions: list[StepClassVersion] = field(default_factory=list)

    @property
    def current(self) -> StepClassVersion:
        if not self.versions:
            raise SchemaError(f"step class {self.name!r} has no versions")
        return self.versions[-1]

    def find_version(self, attributes: frozenset[str]) -> StepClassVersion | None:
        for version in self.versions:
            if version.attribute_set == attributes:
                return version
        return None

    def version_by_id(self, version_id: int) -> StepClassVersion:
        for version in self.versions:
            if version.version_id == version_id:
                return version
        raise SchemaError(f"step class {self.name!r} has no version {version_id}")
