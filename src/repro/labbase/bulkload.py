"""Bulk loading: building the benchmark database efficiently.

LabFlow-1 runs have two phases: *build* an initial database, then
stream against it.  Loading through the one-at-a-time API pays per
operation for index-bucket rewrites, per-state set updates, counter
saves and history-node writes.  :class:`BulkLoader` batches a whole
load and writes each touched structure **once**:

* key-index buckets grouped by bucket;
* per-state material sets grouped by state;
* one history-node chain write per material (chunks filled directly);
* one counters save and one catalog save.

The result is logically identical to the equivalent API calls (tests
assert this record-for-record); bench E12 measures the difference.

Usage::

    loader = BulkLoader(db)
    ref = loader.add_material("clone", "c-1", t, state="arrived")
    loader.add_step("receive_clone", t, [ref], {"source": "MIT"})
    oids = loader.flush()          # {ref: oid}
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import DuplicateKeyError, LabBaseError
from repro.labbase import model
from repro.labbase.database import SEG_CATALOG, SEG_HISTORY, SEG_MATERIALS, LabBase
from repro.labbase.statestore import state_set_name


@dataclass(frozen=True)
class BulkRef:
    """Placeholder for a material created in a pending bulk load."""

    index: int


@dataclass
class _PendingMaterial:
    class_name: str
    key: str
    valid_time: int
    state: str | None
    record: dict = field(default_factory=dict)
    oid: int = 0


@dataclass
class _PendingStep:
    class_name: str
    valid_time: int
    involves: list
    results: dict


class BulkLoader:
    """Accumulates materials and steps, then flushes in batched writes."""

    def __init__(self, db: LabBase) -> None:
        self._db = db
        self._materials: list[_PendingMaterial] = []
        self._steps: list[_PendingStep] = []
        self._keys_seen: set[tuple[str, str]] = set()
        self._flushed = False

    # -- accumulation ------------------------------------------------------------

    def add_material(
        self,
        class_name: str,
        key: str,
        valid_time: int,
        state: str | None = None,
    ) -> BulkRef:
        """Queue a material; returns a ref usable in ``add_step``."""
        self._check_not_flushed()
        self._db.catalog.material_class(class_name)  # raise on unknown
        if (class_name, key) in self._keys_seen:
            raise DuplicateKeyError(class_name, key)
        self._keys_seen.add((class_name, key))
        self._materials.append(
            _PendingMaterial(class_name, key, valid_time, state)
        )
        return BulkRef(len(self._materials) - 1)

    def add_step(
        self,
        class_name: str,
        valid_time: int,
        involves: Iterable[BulkRef | int],
        results: dict | None = None,
    ) -> None:
        """Queue a step; ``involves`` may mix BulkRefs and existing oids."""
        self._check_not_flushed()
        version = self._db.catalog.step_class(class_name).current
        results = dict(results or {})
        version.validate_results(results)
        self._steps.append(
            _PendingStep(class_name, valid_time, list(involves), results)
        )

    def _check_not_flushed(self) -> None:
        if self._flushed:
            raise LabBaseError("bulk loader already flushed")

    # -- flush -----------------------------------------------------------------------

    def flush(self) -> dict[BulkRef, int]:
        """Write everything in batched form; returns ref -> oid."""
        self._check_not_flushed()
        self._flushed = True
        db = self._db
        sm = db.cache  # cache-backed handle: same object API as the SM
        seg = db.segment_arg

        # 1. material records (fresh, history filled in below)
        for pending in self._materials:
            pending.record = model.make_material(
                pending.class_name, pending.key, pending.valid_time
            )
            if pending.state is not None:
                pending.record["state"] = pending.state
                pending.record["state_since"] = pending.valid_time
            pending.oid = sm.allocate_write(
                pending.record, segment=seg(SEG_MATERIALS)
            )

        def resolve(target: BulkRef | int) -> int:
            if isinstance(target, BulkRef):
                return self._materials[target.index].oid
            return int(target)

        by_oid = {pending.oid: pending for pending in self._materials}

        # 2. step records + in-memory history/index accumulation
        history_chunks: dict[int, list[list[int]]] = {}
        touched_existing: dict[int, dict] = {}

        def material_record(oid: int) -> dict:
            pending = by_oid.get(oid)
            if pending is not None:
                return pending.record
            record = touched_existing.get(oid)
            if record is None:
                record = db.material(oid)
                touched_existing[oid] = record
            return record

        for step in self._steps:
            version = db.catalog.step_class(step.class_name).current
            involved = [resolve(target) for target in step.involves]
            step_record = model.make_step(
                class_version=version.version_id,
                valid_time=step.valid_time,
                results=sorted(step.results.items()),
                involves=involved,
            )
            step_oid = sm.allocate_write(step_record, segment=seg(SEG_HISTORY))
            db.catalog.step_counts[step.class_name] = (
                db.catalog.step_counts.get(step.class_name, 0) + 1
            )
            db.catalog.version_step_counts[version.version_id] = (
                db.catalog.version_step_counts.get(version.version_id, 0) + 1
            )
            for oid in involved:
                record = material_record(oid)
                chunks = history_chunks.setdefault(oid, [])
                if not chunks or len(chunks[-1]) >= db.history.chunk_size:
                    chunks.append([])
                chunks[-1].append(step_oid)
                record["history_len"] += 1
                if db.use_most_recent_index:
                    for attr, value in step.results.items():
                        model.update_recent(
                            record, attr, step.valid_time, step_oid, value
                        )

        # 3. history node chains, one write per node, chained oldest->head
        for oid, chunks in history_chunks.items():
            record = material_record(oid)
            next_node = record["history_head"]
            for chunk in chunks:  # oldest chunk first
                node = model.make_history_node(chunk, next_node=next_node)
                next_node = sm.allocate_write(node, segment=seg(SEG_HISTORY))
            record["history_head"] = next_node

        # 4. write back touched material records (once each)
        for pending in self._materials:
            sm.write(pending.oid, pending.record)
        for oid, record in touched_existing.items():
            sm.write(oid, record)

        # 5. key-index buckets, grouped
        bucket_inserts: dict[tuple[str, int], list[_PendingMaterial]] = {}
        for pending in self._materials:
            bucket = model.bucket_for(pending.key)
            bucket_inserts.setdefault(
                (pending.class_name, bucket), []
            ).append(pending)
        for (class_name, _bucket), group in bucket_inserts.items():
            bucket_oid = db.bucket_oid(class_name, group[0].key, create=True)
            record = sm.read(bucket_oid)
            for pending in group:
                if pending.key in record["entries"]:
                    raise DuplicateKeyError(class_name, pending.key)
                record["entries"][pending.key] = pending.oid
            sm.write(bucket_oid, record)

        # 6. per-state sets, grouped
        by_state: dict[str, list[int]] = {}
        for pending in self._materials:
            if pending.state is not None:
                by_state.setdefault(pending.state, []).append(pending.oid)
        for state, oids in by_state.items():
            set_oid = db.sets.ensure_set(state_set_name(state))
            record = sm.read(set_oid)
            members = record["members"]
            present = set(members)
            members.extend(oid for oid in oids if oid not in present)
            sm.write(set_oid, record)

        # 7. counters, once
        for pending in self._materials:
            db.catalog.material_counts[pending.class_name] = (
                db.catalog.material_counts.get(pending.class_name, 0) + 1
            )
        db.catalog.save_counters()
        db.catalog.save()

        return {
            BulkRef(index): pending.oid
            for index, pending in enumerate(self._materials)
        }
