"""Valid-time utilities.

The benchmark's temporal semantics follow the paper's Section 7: "most
recent" is defined over **valid time** (when the lab event actually
happened), not transaction time (when it reached the database), because
results are routinely entered late and out of order.

Valid times in this library are plain integers — ticks of a
:class:`LabClock` — which keeps workloads deterministic and comparisons
exact.  The clock can also be *skewed* to mint late-arriving timestamps,
which the workload generator uses to exercise out-of-order entry.
"""

from __future__ import annotations

from repro.errors import BenchmarkError


class LabClock:
    """Monotonic valid-time source with controlled backdating."""

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current valid time (does not advance)."""
        return self._now

    def tick(self, amount: int = 1) -> int:
        """Advance and return the new valid time."""
        if amount < 1:
            raise BenchmarkError("clock can only move forward")
        self._now += amount
        return self._now

    def backdated(self, lag: int) -> int:
        """A valid time ``lag`` ticks in the past (late data entry).

        Never returns a negative time; a lag beyond the epoch clamps to 0.
        """
        if lag < 0:
            raise BenchmarkError("lag must be non-negative")
        return max(0, self._now - lag)


def newer(valid_time_a: int, valid_time_b: int) -> bool:
    """Strictly newer in valid time."""
    return valid_time_a > valid_time_b


def within(valid_time: int, start: int, end: int) -> bool:
    """Whether a valid time falls in the closed interval [start, end]."""
    return start <= valid_time <= end
