"""Material sets and workflow states.

A ``material_set`` is the third storage class of Table 1: a named set of
material oids.  LabBase uses one set per workflow state (the set of
materials in state ``waiting_for_sequencing``, say), so the workflow
engine's "give me everything awaiting step S" query (Q3) is one hot-
segment read instead of a scan.

State transitions are the assert/retract pair of the paper's Section 7
rules: remove the material from its old state's set, add it to the new
one, and stamp the material record.
"""

from __future__ import annotations

from repro.errors import StateError
from repro.labbase import model
from repro.labbase.catalog import Catalog
from repro.storage.objcache import ObjectCache


def state_set_name(state: str) -> str:
    """Naming convention for the per-state material sets."""
    return f"state:{state}"


class StateStore:
    """Named material sets, including the per-state sets.

    ``sm`` is LabBase's cache-backed store handle — per-state set records
    are among the hottest objects in the database, so Q3 on a warm cache
    is a pure in-memory read.
    """

    def __init__(self, sm: ObjectCache, catalog: Catalog, segment: str | None) -> None:
        self._sm = sm
        self._catalog = catalog
        self._segment = segment

    # -- generic named sets ------------------------------------------------------

    def ensure_set(self, name: str) -> int:
        """Oid of the named set, creating it empty if absent."""
        oid = self._catalog.set_directory.get(name)
        if oid is None:
            oid = self._sm.allocate_write(
                model.make_material_set(name), segment=self._segment
            )
            self._catalog.set_directory[name] = oid
            self._catalog.save()
        return oid

    def set_names(self) -> list[str]:
        return sorted(self._catalog.set_directory)

    def members(self, name: str) -> list[int]:
        oid = self._catalog.set_directory.get(name)
        if oid is None:
            return []
        return list(self._sm.read(oid)["members"])

    def add_member(self, name: str, material_oid: int) -> None:
        oid = self.ensure_set(name)
        record = self._sm.read(oid)
        if material_oid not in record["members"]:
            record["members"].append(material_oid)
            self._sm.write(oid, record)

    def remove_member(self, name: str, material_oid: int) -> bool:
        oid = self._catalog.set_directory.get(name)
        if oid is None:
            return False
        record = self._sm.read(oid)
        try:
            record["members"].remove(material_oid)
        except ValueError:
            return False
        self._sm.write(oid, record)
        return True

    def cardinality(self, name: str) -> int:
        oid = self._catalog.set_directory.get(name)
        if oid is None:
            return 0
        return len(self._sm.read(oid)["members"])

    # -- workflow states -----------------------------------------------------------

    def enter_state(
        self, material_oid: int, material: dict, state: str, valid_time: int
    ) -> None:
        """assert(state(M, new)) after retract(state(M, old)).

        Mutates the material record (caller persists it) and maintains
        the per-state sets.
        """
        old_state = material["state"]
        if old_state is not None:
            self.remove_member(state_set_name(old_state), material_oid)
        self.add_member(state_set_name(state), material_oid)
        material["state"] = state
        material["state_since"] = int(valid_time)

    def leave_state(self, material_oid: int, material: dict) -> str:
        """retract(state(M, S)) with no replacement (material retires)."""
        old_state = material["state"]
        if old_state is None:
            raise StateError(f"material {material_oid} has no state to retract")
        self.remove_member(state_set_name(old_state), material_oid)
        material["state"] = None
        material["state_since"] = None
        return old_state

    def in_state(self, state: str) -> list[int]:
        """Material oids currently in a workflow state (query Q3)."""
        return self.members(state_set_name(state))

    def state_census(self) -> dict[str, int]:
        """State name -> population, over all per-state sets."""
        census = {}
        prefix = state_set_name("")
        for name in self._catalog.set_directory:
            if name.startswith(prefix):
                census[name[len(prefix):]] = self.cardinality(name)
        return census
