"""Chronicle queries: decision support over the event history.

The paper notes (Section 1, citing the chronicle data model of
Jagadish et al. and the Set Query benchmark) that workflow management
also needs aggregation, joins and report generation "for process
re-engineering ... but they are only part of the story".  This module
supplies that part: read-only analytics computed from the audit trail —
per-step throughput and latency, state-residence times, failure/rework
rates, and a cohort funnel — the queries a lab manager runs when
re-engineering the workflow.

Everything here is derived purely from stored ``sm_step`` records and
material state stamps; no extra write-path bookkeeping is added, which
is the chronicle-model discipline: the history *is* the database.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownAttributeError
from repro.labbase.database import LabBase


@dataclass(frozen=True)
class StepClassProfile:
    """Aggregate statistics for one step class."""

    class_name: str
    executions: int
    materials_touched: int
    first_valid_time: int
    last_valid_time: int
    mean_results_per_step: float

    @property
    def span(self) -> int:
        """Valid-time span over which this step class was active."""
        return self.last_valid_time - self.first_valid_time

    @property
    def throughput(self) -> float:
        """Executions per valid-time tick (0 when span is empty)."""
        if self.span <= 0:
            return float(self.executions)
        return self.executions / self.span


@dataclass
class ReworkReport:
    """Repeated executions of the same step on the same material.

    Re-running a step on a material (the sequencing re-queue) is the
    benchmark's rework signal; its rate is the first thing a process
    re-engineer looks at.
    """

    class_name: str
    materials_processed: int = 0
    materials_reworked: int = 0
    max_runs_on_one_material: int = 0

    @property
    def rework_rate(self) -> float:
        if self.materials_processed == 0:
            return 0.0
        return self.materials_reworked / self.materials_processed


class Chronicle:
    """Decision-support queries over a LabBase event history."""

    def __init__(self, db: LabBase) -> None:
        self._db = db

    # -- per-step-class aggregation -----------------------------------------

    def step_profiles(self) -> list[StepClassProfile]:
        """One profile per step class, from a full history scan."""
        by_class: dict[str, dict] = {}
        for _oid, step in self._db.iter_steps():
            version = self._db.catalog.step_version(step["class_version"])
            acc = by_class.setdefault(
                version.name,
                {
                    "executions": 0,
                    "materials": set(),
                    "first": step["valid_time"],
                    "last": step["valid_time"],
                    "results": 0,
                },
            )
            acc["executions"] += 1
            acc["materials"].update(step["involves"])
            acc["first"] = min(acc["first"], step["valid_time"])
            acc["last"] = max(acc["last"], step["valid_time"])
            acc["results"] += len(step["results"])
        profiles = [
            StepClassProfile(
                class_name=name,
                executions=acc["executions"],
                materials_touched=len(acc["materials"]),
                first_valid_time=acc["first"],
                last_valid_time=acc["last"],
                mean_results_per_step=acc["results"] / acc["executions"],
            )
            for name, acc in by_class.items()
        ]
        profiles.sort(key=lambda profile: profile.class_name)
        return profiles

    # -- rework ------------------------------------------------------------------

    def rework(self, class_name: str) -> ReworkReport:
        """How often a step class re-ran on the same material."""
        self._db.catalog.step_class(class_name)  # raise on unknown
        runs: dict[int, int] = {}
        for _oid, step in self._db.iter_steps():
            version = self._db.catalog.step_version(step["class_version"])
            if version.name != class_name:
                continue
            for material_oid in step["involves"]:
                runs[material_oid] = runs.get(material_oid, 0) + 1
        report = ReworkReport(class_name=class_name)
        report.materials_processed = len(runs)
        report.materials_reworked = sum(1 for count in runs.values() if count > 1)
        report.max_runs_on_one_material = max(runs.values(), default=0)
        return report

    # -- per-material timeline --------------------------------------------------------

    def cycle_time(self, material_oid: int) -> int:
        """Valid-time span from a material's first step to its last."""
        history = self._db.material_history(material_oid)
        if not history:
            return 0
        times = [step["valid_time"] for _oid, step in history]
        return max(times) - min(times)

    def cycle_time_statistics(
        self, material_oids: list[int]
    ) -> dict[str, float]:
        """min/mean/max cycle time over a cohort (Q6-style aggregation)."""
        times = [self.cycle_time(oid) for oid in material_oids]
        times = [t for t in times if t > 0]
        if not times:
            return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(times),
            "min": float(min(times)),
            "mean": sum(times) / len(times),
            "max": float(max(times)),
        }

    def steps_between(
        self, material_oid: int, start: int, end: int
    ) -> list[tuple[int, dict]]:
        """The material's steps with valid time in [start, end]."""
        return [
            (oid, step)
            for oid, step in self._db.material_history(material_oid)
            if start <= step["valid_time"] <= end
        ]

    # -- the funnel -------------------------------------------------------------------

    def funnel(self, class_name: str, step_order: list[str]) -> list[tuple[str, int]]:
        """How many materials of a class reached each step of a pipeline.

        The classic re-engineering view: where does work pile up?
        ``step_order`` is the expected pipeline; counts are materials of
        ``class_name`` (exact class, no is-a rollup) whose history
        contains at least one step of each class.
        """
        reached: dict[str, set[int]] = {name: set() for name in step_order}
        wanted = set(step_order)
        for _oid, step in self._db.iter_steps():
            version = self._db.catalog.step_version(step["class_version"])
            if version.name not in wanted:
                continue
            for material_oid in step["involves"]:
                material = self._db.material(material_oid)
                if material["class_name"] == class_name:
                    reached[version.name].add(material_oid)
        return [(name, len(reached[name])) for name in step_order]

    # -- attribute analytics -------------------------------------------------------------

    def value_distribution(
        self, class_name: str, attribute: str
    ) -> dict[str, float]:
        """min/mean/max of a numeric attribute's *current* values over a
        material class (with is-a rollup)."""
        values: list[float] = []
        for oid, material in self._db.iter_materials():
            if not self._db.catalog.is_subclass(material["class_name"], class_name):
                continue
            try:
                value = self._db.most_recent(oid, attribute)
            except UnknownAttributeError:
                continue
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                values.append(float(value))
        if not values:
            return {"count": 0, "min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": len(values),
            "min": min(values),
            "mean": sum(values) / len(values),
            "max": max(values),
        }
