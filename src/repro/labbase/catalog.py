"""The persistent catalog: user schema, indexes, counters.

One record in the hot ``catalog`` segment holds the user-level schema
(material classes, step-class versions), the oids of the key-index
buckets, the material-set directory, and per-class instance counters.
It is reachable from the storage root ``labbase_catalog``, which is how a
reopened LabBase finds everything.

Schema evolution happens here: :meth:`Catalog.register_step_class` keys
versions by attribute set, so changing a step's attributes creates a new
version in O(catalog) time — no stored data is visited, the property
experiment E9 measures.
"""

from __future__ import annotations

from repro.errors import SchemaError, UnknownClassError
from repro.labbase import model
from repro.labbase.schema import MaterialClass, StepClass, StepClassVersion
from repro.storage.objcache import ObjectCache

CATALOG_ROOT = "labbase_catalog"
COUNTERS_ROOT = "labbase_counters"


class Catalog:
    """In-memory image of the catalog record, persisted on change.

    ``sm`` is LabBase's cache-backed store handle (any object with the
    storage-manager object API works, e.g. a raw storage manager).
    """

    def __init__(self, sm: ObjectCache, segment: str | None) -> None:
        self._sm = sm
        self._segment = segment
        self.material_classes: dict[str, MaterialClass] = {}
        self.step_classes: dict[str, StepClass] = {}
        self.key_index: dict[str, list[int]] = {}      # class -> bucket oids
        self.set_directory: dict[str, int] = {}        # set name -> set oid
        self.material_counts: dict[str, int] = {}
        self.step_counts: dict[str, int] = {}          # per class name
        self.version_step_counts: dict[int, int] = {}  # per version id
        self._next_version_id = 1
        self._oid = model.NIL
        self._load_or_bootstrap()

    # -- persistence -----------------------------------------------------------

    def reload(self) -> None:
        """Re-read the catalog from the store's roots.

        Needed after crash recovery, which may have dropped the catalog
        record (then a fresh one is bootstrapped) or rolled it back to
        an older checkpointed image.
        """
        self._load_or_bootstrap()

    def _load_or_bootstrap(self) -> None:
        root = self._sm.get_root(CATALOG_ROOT)
        if root is None:
            self._oid = self._sm.allocate_write(self._record(), segment=self._segment)
            self._sm.set_root(CATALOG_ROOT, self._oid)
            self._counters_oid = self._sm.allocate_write(
                self._counters_record(), segment=self._segment
            )
            self._sm.set_root(COUNTERS_ROOT, self._counters_oid)
        else:
            self._oid = root
            self._restore(self._sm.read(self._oid))
            counters_root = self._sm.get_root(COUNTERS_ROOT)
            assert counters_root is not None, "catalog without counters record"
            self._counters_oid = counters_root
            self._restore_counters(self._sm.read(self._counters_oid))

    def _record(self) -> dict:
        return {
            "kind": model.KIND_CATALOG,
            "material_classes": {
                name: {
                    "name": cls.name,
                    "key_attribute": cls.key_attribute,
                    "description": cls.description,
                    "parent": cls.parent,
                }
                for name, cls in self.material_classes.items()
            },
            "step_classes": {
                name: [version.to_meta() for version in cls.versions]
                for name, cls in self.step_classes.items()
            },
            "key_index": {name: list(oids) for name, oids in self.key_index.items()},
            "set_directory": dict(self.set_directory),
            "next_version_id": self._next_version_id,
        }

    def _counters_record(self) -> dict:
        # Counters change on every tracked step, so they live in their
        # own small record: bumping a counter must not rewrite the whole
        # catalog (schema + index buckets) each time.
        return {
            "kind": "labbase_counters",
            "material_counts": dict(self.material_counts),
            "step_counts": dict(self.step_counts),
            "version_step_counts": dict(self.version_step_counts),
        }

    def _restore_counters(self, record: dict) -> None:
        self.material_counts = dict(record["material_counts"])
        self.step_counts = dict(record["step_counts"])
        self.version_step_counts = dict(record["version_step_counts"])

    def _restore(self, record: dict) -> None:
        self.material_classes = {
            name: MaterialClass(**meta)
            for name, meta in record["material_classes"].items()
        }
        self.step_classes = {}
        for name, version_metas in record["step_classes"].items():
            versions = [StepClassVersion.from_meta(m) for m in version_metas]
            self.step_classes[name] = StepClass(name=name, versions=versions)
        self.key_index = {n: list(o) for n, o in record["key_index"].items()}
        self.set_directory = dict(record["set_directory"])
        self._next_version_id = record["next_version_id"]

    def save(self) -> None:
        """Write the catalog record back to the store."""
        self._sm.write(self._oid, self._record())

    def save_counters(self) -> None:
        """Write just the counters record (hot path: once per step)."""
        self._sm.write(self._counters_oid, self._counters_record())

    def reload(self) -> None:
        """Re-read from the store (after an aborted transaction)."""
        self._restore(self._sm.read(self._oid))
        self._restore_counters(self._sm.read(self._counters_oid))

    # -- material classes ---------------------------------------------------------

    def register_material_class(self, material_class: MaterialClass) -> None:
        existing = self.material_classes.get(material_class.name)
        if existing is not None:
            if existing != material_class:
                raise SchemaError(
                    f"material class {material_class.name!r} already registered "
                    "with a different definition"
                )
            return
        if material_class.parent is not None:
            if material_class.parent not in self.material_classes:
                raise SchemaError(
                    f"material class {material_class.name!r}: unknown parent "
                    f"{material_class.parent!r}"
                )
        self.material_classes[material_class.name] = material_class
        self.material_counts.setdefault(material_class.name, 0)
        # Key-index buckets are allocated lazily on first insert; an empty
        # list marks the class as present.
        self.key_index.setdefault(material_class.name, [])
        self.save()
        self.save_counters()

    def material_class(self, name: str) -> MaterialClass:
        try:
            return self.material_classes[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """EER is-a: whether ``name`` equals or specialises ``ancestor``."""
        current: str | None = name
        while current is not None:
            if current == ancestor:
                return True
            current = self.material_class(current).parent
        return False

    def subclasses(self, ancestor: str) -> list[str]:
        """Every class equal to or below ``ancestor`` in the is-a tree."""
        return [
            name for name in self.material_classes
            if self.is_subclass(name, ancestor)
        ]

    # -- step classes & schema evolution -----------------------------------------------

    def register_step_class(
        self,
        name: str,
        attributes: tuple[str, ...],
        involves_classes: tuple[str, ...] = (),
        description: str = "",
    ) -> StepClassVersion:
        """Register a step class; returns the matching or new version.

        This is LabFlow-1's schema-change operation (U4): if ``name``
        exists and the attribute set differs from every stored version, a
        new version is appended; identical attribute sets are reused.
        """
        for class_name in involves_classes:
            if class_name not in self.material_classes:
                raise UnknownClassError(class_name)
        step_class = self.step_classes.get(name)
        if step_class is None:
            step_class = StepClass(name=name)
            self.step_classes[name] = step_class
            self.step_counts.setdefault(name, 0)
            self.save_counters()
        existing = step_class.find_version(frozenset(attributes))
        if existing is not None:
            return existing
        version = StepClassVersion(
            version_id=self._next_version_id,
            name=name,
            attributes=tuple(attributes),
            involves_classes=tuple(involves_classes),
            description=description,
        )
        self._next_version_id += 1
        step_class.versions.append(version)
        self.version_step_counts.setdefault(version.version_id, 0)
        self.save()
        self.save_counters()
        return version

    def step_class(self, name: str) -> StepClass:
        try:
            return self.step_classes[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def step_version(self, version_id: int) -> StepClassVersion:
        for step_class in self.step_classes.values():
            for version in step_class.versions:
                if version.version_id == version_id:
                    return version
        raise SchemaError(f"no step-class version {version_id}")
