"""Workflow execution: moving materials through the graph.

The engine is the glue between workflow *modelling* (the graph) and
workflow *tracking* (LabBase): advancing a material looks up the
transition for its current state, records the step (extending the event
history), creates any new materials the step produces, applies the
transition test (a seeded coin against ``fail_probability``), and
asserts the new state.

Attribute values are produced by a *value factory* so workload
generators control realism and size; :func:`default_value_factory`
provides sensible synthetic values for every :class:`ValueKind`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import TransitionError
from repro.labbase.database import LabBase
from repro.labbase.temporal import LabClock
from repro.util.rng import DeterministicRng
from repro.workflow.graph import WorkflowGraph
from repro.workflow.spec import AttributeSpec, StepSpec, ValueKind

#: (step, attribute, material_key, rng) -> value
ValueFactory = Callable[[StepSpec, AttributeSpec, str, DeterministicRng], object]


def default_value_factory(
    step: StepSpec,
    attribute: AttributeSpec,
    material_key: str,
    rng: DeterministicRng,
) -> object:
    """Small, deterministic synthetic values for every kind."""
    kind = attribute.kind
    if kind is ValueKind.IDENTIFIER:
        return rng.identifier(attribute.name[:4])
    if kind is ValueKind.DNA:
        return rng.dna(rng.gaussian_int(400, 120, minimum=50))
    if kind is ValueKind.INTEGER:
        return rng.randint(0, 10_000)
    if kind is ValueKind.FLOAT:
        return round(rng.uniform(0.0, 1.0), 4)
    if kind is ValueKind.TEXT:
        return f"{attribute.name} of {material_key}"
    if kind is ValueKind.DATE:
        return rng.randint(9_000, 9_999)
    if kind is ValueKind.HIT_LIST:
        return [
            {
                "accession": rng.identifier("gb", 6),
                "score": rng.randint(30, 2000),
                "expect": rng.uniform(0.0, 0.01),
            }
            for _ in range(rng.gaussian_int(8, 4, minimum=0))
        ]
    raise TransitionError(f"no generator for value kind {kind}")


@dataclass(frozen=True)
class StepEvent:
    """What one :meth:`WorkflowEngine.advance` call did."""

    step_class: str
    step_oid: int
    material_oid: int
    from_state: str
    to_state: str
    failed: bool
    created: tuple[int, ...] = ()


@dataclass
class EngineCounters:
    """Tallies over an engine's lifetime (workload reporting)."""

    steps: int = 0
    failures: int = 0
    materials_created: int = 0
    completed: int = 0
    per_step: dict = field(default_factory=dict)


class WorkflowEngine:
    """Drives materials through a workflow graph against a LabBase."""

    def __init__(
        self,
        db: LabBase,
        graph: WorkflowGraph,
        rng: DeterministicRng,
        clock: LabClock | None = None,
        value_factory: ValueFactory = default_value_factory,
    ) -> None:
        self.db = db
        self.graph = graph
        self.rng = rng
        self.clock = clock or LabClock()
        self.value_factory = value_factory
        self.counters = EngineCounters()
        self._key_counters: dict[str, int] = {}

    # -- schema installation -------------------------------------------------

    def install_schema(self) -> None:
        """Register the workflow's material and step classes in LabBase."""
        for material in self.graph.spec.materials:
            self.db.define_material_class(
                material.class_name,
                description=material.description,
                parent=material.parent,
            )
        for step in self.graph.spec.steps:
            self.db.define_step_class(
                step.class_name,
                step.attribute_names,
                involves_classes=step.involves_classes,
                description=step.description,
            )

    # -- material intake ---------------------------------------------------------

    def next_key(self, class_name: str) -> str:
        spec = self.graph.spec.material(class_name)
        count = self._key_counters.get(class_name, 0) + 1
        self._key_counters[class_name] = count
        return f"{spec.key_prefix}-{count:06d}"

    def create_material(self, class_name: str) -> int:
        """New material in its class's initial state."""
        spec = self.graph.spec.material(class_name)
        oid = self.db.create_material(
            class_name,
            self.next_key(class_name),
            self.clock.tick(),
            state=spec.initial_state,
        )
        self.counters.materials_created += 1
        return oid

    # -- advancing ------------------------------------------------------------------

    def advance(self, material_oid: int) -> StepEvent | None:
        """Apply the next workflow step to a material.

        Returns None when the material's state is terminal (or it has no
        state).  Raises :class:`TransitionError` if the material sits in
        a state with no transition that is not terminal — validation
        should make that impossible, so it indicates database damage.
        """
        state = self.db.state_of(material_oid)
        if state is None or self.graph.is_terminal(state):
            return None
        transition = self.graph.transition_for(state)
        if transition is None:
            raise TransitionError(
                f"material {material_oid} in state {state!r} has no transition"
            )
        step_spec = self.graph.spec.step(transition.step)
        material = self.db.material(material_oid)
        material_key = material["key"]

        results = {
            attr.name: self.value_factory(step_spec, attr, material_key, self.rng)
            for attr in step_spec.attributes
        }

        created = tuple(
            self.create_material(class_name) for class_name in step_spec.creates
        )

        step_oid = self.db.record_step(
            step_spec.class_name,
            self.clock.tick(),
            involves=(material_oid, *created),
            results=results,
        )

        failed = transition.fail_probability > 0 and self.rng.chance(
            transition.fail_probability
        )
        to_state = transition.fail_state if failed else transition.to_state
        assert to_state is not None  # guaranteed by Transition validation
        self.db.set_state(material_oid, to_state, self.clock.tick())

        self.counters.steps += 1
        self.counters.per_step[step_spec.class_name] = (
            self.counters.per_step.get(step_spec.class_name, 0) + 1
        )
        if failed:
            self.counters.failures += 1
        if self.graph.is_terminal(to_state):
            self.counters.completed += 1

        return StepEvent(
            step_class=step_spec.class_name,
            step_oid=step_oid,
            material_oid=material_oid,
            from_state=state,
            to_state=to_state,
            failed=failed,
            created=created,
        )

    def run_to_completion(self, material_oid: int, max_steps: int = 1000) -> list[StepEvent]:
        """Advance one material until it reaches a terminal state."""
        events = []
        for _ in range(max_steps):
            event = self.advance(material_oid)
            if event is None:
                return events
            events.append(event)
        raise TransitionError(
            f"material {material_oid} did not terminate within {max_steps} steps"
        )

    def pump(self, max_steps: int) -> int:
        """Advance whatever work is pending, round-robin over states.

        Returns the number of steps executed (may be less than
        ``max_steps`` if the lab runs dry).
        """
        executed = 0
        while executed < max_steps:
            progressed = False
            for state in self.graph.states():
                if self.graph.is_terminal(state):
                    continue
                pending = self.db.in_state(state)
                if not pending:
                    continue
                self.advance(pending[0])
                executed += 1
                progressed = True
                if executed >= max_steps:
                    break
            if not progressed:
                break
        return executed
