"""Workflow graphs.

"Workflow graphs are based on the idea that each material has a workflow
state, and as the material is processed, it moves from one state to
another" (Section 2.2).  Nodes are states; edges are steps, possibly
with failure branches (the re-queue edges of the paper's Appendix B
graph).  The graph largely determines the DBMS workload, so validation
here is strict: a malformed graph would silently skew every experiment.

``networkx`` backs the structural checks (reachability, cycles) and the
layered ASCII rendering the E4 bench emits as its "figure".
"""

from __future__ import annotations

import networkx as nx

from repro.errors import InvalidWorkflowError
from repro.workflow.spec import Transition, WorkflowSpec


class WorkflowGraph:
    """A validated workflow graph built from a :class:`WorkflowSpec`."""

    def __init__(self, spec: WorkflowSpec) -> None:
        self.spec = spec
        self._graph = nx.MultiDiGraph()
        self._by_state: dict[str, list[Transition]] = {}
        self._build()
        self.validate()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        for transition in self.spec.transitions:
            self._graph.add_edge(
                transition.from_state,
                transition.to_state,
                step=transition.step,
                outcome="ok",
            )
            if transition.fail_state is not None:
                self._graph.add_edge(
                    transition.from_state,
                    transition.fail_state,
                    step=transition.step,
                    outcome="fail",
                )
            self._by_state.setdefault(transition.from_state, []).append(transition)
        for state in self.spec.terminal_states:
            self._graph.add_node(state)
        for material in self.spec.materials:
            if material.initial_state is not None:
                self._graph.add_node(material.initial_state)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`InvalidWorkflowError` on any structural defect."""
        spec = self.spec
        step_names = {step.class_name for step in spec.steps}
        material_names = {material.class_name for material in spec.materials}

        if not spec.terminal_states:
            raise InvalidWorkflowError(f"workflow {spec.name!r}: no terminal states")

        for transition in spec.transitions:
            if transition.step not in step_names:
                raise InvalidWorkflowError(
                    f"transition from {transition.from_state!r} uses unknown "
                    f"step {transition.step!r}"
                )

        for step in spec.steps:
            for class_name in step.involves_classes + step.creates:
                if class_name not in material_names:
                    raise InvalidWorkflowError(
                        f"step {step.class_name!r} references unknown material "
                        f"class {class_name!r}"
                    )

        for state in spec.terminal_states:
            if self._by_state.get(state):
                raise InvalidWorkflowError(
                    f"terminal state {state!r} has outgoing transitions"
                )

        initials = self.initial_states()
        if not initials:
            raise InvalidWorkflowError(
                f"workflow {spec.name!r}: no material has an initial state"
            )

        reachable: set[str] = set()
        for initial in initials:
            reachable.add(initial)
            reachable |= nx.descendants(self._graph, initial)
        unreachable = set(self._graph.nodes) - reachable
        if unreachable:
            raise InvalidWorkflowError(
                f"states unreachable from any initial state: {sorted(unreachable)}"
            )

        terminal_set = set(spec.terminal_states)
        for state in self._graph.nodes:
            if state in terminal_set:
                continue
            if not any(nx.has_path(self._graph, state, t) for t in terminal_set):
                raise InvalidWorkflowError(
                    f"state {state!r} cannot reach any terminal state"
                )

    # -- queries -----------------------------------------------------------------

    def initial_states(self) -> list[str]:
        return sorted(
            {
                material.initial_state
                for material in self.spec.materials
                if material.initial_state is not None
            }
        )

    def states(self) -> list[str]:
        return sorted(self._graph.nodes)

    def transitions_from(self, state: str) -> list[Transition]:
        return list(self._by_state.get(state, ()))

    def transition_for(self, state: str) -> Transition | None:
        """The (first) transition out of a state, or None if terminal."""
        transitions = self._by_state.get(state)
        return transitions[0] if transitions else None

    def is_terminal(self, state: str) -> bool:
        return state in self.spec.terminal_states

    def has_cycles(self) -> bool:
        """Whether re-queue edges create cycles (Appendix B's graph does)."""
        try:
            nx.find_cycle(self._graph)
        except nx.NetworkXNoCycle:
            return False
        return True

    def longest_acyclic_path(self) -> int:
        """Steps on the longest success path (cycle edges removed)."""
        acyclic = nx.MultiDiGraph(
            (u, v, data)
            for u, v, data in self._graph.edges(data=True)
            if data.get("outcome") == "ok"
        )
        if not nx.is_directed_acyclic_graph(acyclic):
            # success edges alone may still cycle in exotic workflows
            return -1
        return nx.dag_longest_path_length(acyclic)

    @property
    def nx_graph(self) -> nx.MultiDiGraph:
        return self._graph

    # -- rendering (the E4 "figure") ------------------------------------------------

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT (for documentation figures).

        Success edges are solid and labelled with the step; failure
        edges are dashed and labelled with the probability and test.
        """
        lines = [f'digraph "{self.spec.name}" {{', "  rankdir=LR;"]
        terminal = set(self.spec.terminal_states)
        initial = set(self.initial_states())
        for state in self.states():
            shape = "doublecircle" if state in terminal else (
                "box" if state in initial else "ellipse"
            )
            lines.append(f'  "{state}" [shape={shape}];')
        for transition in self.spec.transitions:
            lines.append(
                f'  "{transition.from_state}" -> "{transition.to_state}" '
                f'[label="{transition.step}"];'
            )
            if transition.fail_state is not None:
                label = f"{transition.fail_probability:.0%}"
                if transition.test:
                    label += f"\\n{transition.test} fails"
                lines.append(
                    f'  "{transition.from_state}" -> "{transition.fail_state}" '
                    f'[label="{label}", style=dashed];'
                )
        lines.append("}")
        return "\n".join(lines)

    def to_text(self) -> str:
        """Render the graph as indented text, one transition per line."""
        lines = [f"workflow {self.spec.name!r}"]
        lines.append(f"  initial states : {', '.join(self.initial_states())}")
        lines.append(f"  terminal states: {', '.join(self.spec.terminal_states)}")
        lines.append("  transitions:")
        for transition in self.spec.transitions:
            arrow = f"{transition.from_state} --[{transition.step}]--> {transition.to_state}"
            if transition.fail_state is not None:
                arrow += (
                    f"  (fail {transition.fail_probability:.0%} -> "
                    f"{transition.fail_state}"
                )
                if transition.test:
                    arrow += f", test {transition.test}"
                arrow += ")"
            lines.append(f"    {arrow}")
        return "\n".join(lines)
