"""Declarative workflow specifications.

A workflow is specified by three kinds of objects, mirroring the paper's
Section 2.2 split between workflow *modelling* (the graph) and workflow
*tracking* (what LabBase records):

* :class:`MaterialSpec` — a material class and its key prefix;
* :class:`StepSpec` — a step class: the attributes it produces (each
  tagged with a :class:`ValueKind` so workload generators can synthesize
  realistic values), the material classes it involves, and any new
  materials it creates (e.g. ``associate_tclone`` creates a tclone from
  a clone);
* :class:`Transition` — an edge of the workflow graph: materials in
  ``from_state`` undergo ``step`` and move to ``to_state``, or to
  ``fail_state`` with probability ``fail_probability`` (the paper's
  transition tests, like ``test:sequencing_ok``, decide which).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import InvalidWorkflowError


class ValueKind(Enum):
    """What kind of value an attribute carries (drives generation)."""

    IDENTIFIER = "identifier"   # short lab identifier
    DNA = "dna"                 # DNA sequence, hundreds of bases
    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"               # short free text
    DATE = "date"               # integer day stamp
    HIT_LIST = "hit_list"       # list of BLAST homology hits (large!)


@dataclass(frozen=True)
class AttributeSpec:
    """One attribute a step class produces."""

    name: str
    kind: ValueKind
    description: str = ""


@dataclass(frozen=True)
class MaterialSpec:
    """A material class in the workflow."""

    class_name: str
    key_prefix: str
    description: str = ""
    parent: str | None = None
    initial_state: str | None = None  # state assigned at creation


@dataclass(frozen=True)
class StepSpec:
    """A step class: what it involves, produces and creates."""

    class_name: str
    attributes: tuple[AttributeSpec, ...]
    involves_classes: tuple[str, ...]
    creates: tuple[str, ...] = ()  # material classes instantiated by the step
    description: str = ""

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def attribute(self, name: str) -> AttributeSpec:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        raise InvalidWorkflowError(
            f"step {self.class_name!r} has no attribute {name!r}"
        )


@dataclass(frozen=True)
class Transition:
    """One workflow-graph edge."""

    step: str                      # StepSpec.class_name
    from_state: str
    to_state: str
    fail_state: str | None = None
    fail_probability: float = 0.0
    test: str | None = None        # name of the transition test (informational)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_probability <= 1.0:
            raise InvalidWorkflowError(
                f"transition {self.step!r}: fail probability "
                f"{self.fail_probability} outside [0, 1]"
            )
        if self.fail_probability > 0.0 and self.fail_state is None:
            raise InvalidWorkflowError(
                f"transition {self.step!r}: fail probability without fail state"
            )


@dataclass
class WorkflowSpec:
    """The full declarative bundle a :class:`WorkflowGraph` is built from."""

    name: str
    materials: list[MaterialSpec] = field(default_factory=list)
    steps: list[StepSpec] = field(default_factory=list)
    transitions: list[Transition] = field(default_factory=list)
    terminal_states: tuple[str, ...] = ()
    description: str = ""

    def material(self, class_name: str) -> MaterialSpec:
        for spec in self.materials:
            if spec.class_name == class_name:
                return spec
        raise InvalidWorkflowError(f"no material spec {class_name!r}")

    def step(self, class_name: str) -> StepSpec:
        for spec in self.steps:
            if spec.class_name == class_name:
                return spec
        raise InvalidWorkflowError(f"no step spec {class_name!r}")
