"""A small text DSL for workflow specifications.

The paper presents its workflow as an appendix listing; labs maintain
such definitions as documents, not Python.  This module parses a
line-oriented description into a :class:`WorkflowSpec`, so workflows
can be versioned as plain text and loaded at run time — which is also
how the examples keep alternative workflows without code changes.

Grammar (``#`` starts a comment; blank lines ignored)::

    workflow <name>

    material <class> key <prefix> [initial <state>] [is-a <parent>]
        [-- description text]

    step <class> involves <class>[, <class>...] [creates <class>[, ...]]
        [-- description text]
        attr <name> : <kind>            # one line per attribute
        ...

    transition <from-state> -> <to-state> via <step>
        [fail <probability> -> <fail-state> [test <test-name>]]

    terminal <state>[, <state>...]

Kinds are the :class:`~repro.workflow.spec.ValueKind` values:
``identifier dna integer float text date hit_list``.
"""

from __future__ import annotations

from repro.errors import InvalidWorkflowError
from repro.workflow.graph import WorkflowGraph
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)

_KINDS = {kind.value: kind for kind in ValueKind}


class _Parser:
    def __init__(self, text: str) -> None:
        self._lines = text.splitlines()
        self.name: str | None = None
        self.materials: list[MaterialSpec] = []
        self.steps: list[StepSpec] = []
        self.transitions: list[Transition] = []
        self.terminals: list[str] = []
        # mutable accumulation for the step currently being defined
        self._step_header: dict | None = None
        self._step_attrs: list[AttributeSpec] = []

    def parse(self) -> WorkflowSpec:
        for number, raw in enumerate(self._lines, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                self._dispatch(line)
            except Exception as exc:
                raise InvalidWorkflowError(
                    f"workflow DSL line {number}: {exc}: {raw.strip()!r}"
                ) from exc
        self._flush_step()
        if self.name is None:
            raise InvalidWorkflowError("workflow DSL: missing 'workflow <name>'")
        return WorkflowSpec(
            name=self.name,
            materials=self.materials,
            steps=self.steps,
            transitions=self.transitions,
            terminal_states=tuple(self.terminals),
        )

    # -- dispatch ------------------------------------------------------------

    def _dispatch(self, line: str) -> None:
        keyword = line.split(None, 1)[0]
        if keyword == "attr":
            self._parse_attr(line)
            return
        # any non-attr directive closes the open step block
        if keyword != "attr":
            self._flush_step_if(keyword)
        if keyword == "workflow":
            self.name = _rest(line, "workflow")
        elif keyword == "material":
            self._parse_material(line)
        elif keyword == "step":
            self._parse_step_header(line)
        elif keyword == "transition":
            self._parse_transition(line)
        elif keyword == "terminal":
            names = _rest(line, "terminal")
            self.terminals.extend(n.strip() for n in names.split(","))
        else:
            raise InvalidWorkflowError(f"unknown directive {keyword!r}")

    def _flush_step_if(self, keyword: str) -> None:
        if self._step_header is not None and keyword != "attr":
            self._flush_step()

    def _flush_step(self) -> None:
        if self._step_header is None:
            return
        header = self._step_header
        self.steps.append(
            StepSpec(
                class_name=header["name"],
                attributes=tuple(self._step_attrs),
                involves_classes=tuple(header["involves"]),
                creates=tuple(header["creates"]),
                description=header["description"],
            )
        )
        self._step_header = None
        self._step_attrs = []

    # -- directives --------------------------------------------------------------

    def _parse_material(self, line: str) -> None:
        body, description = _split_description(_rest(line, "material"))
        tokens = body.split()
        name = tokens.pop(0)
        prefix = name
        initial = None
        parent = None
        while tokens:
            keyword = tokens.pop(0)
            if keyword == "key":
                prefix = tokens.pop(0)
            elif keyword == "initial":
                initial = tokens.pop(0)
            elif keyword == "is-a":
                parent = tokens.pop(0)
            else:
                raise InvalidWorkflowError(f"material: unknown token {keyword!r}")
        self.materials.append(
            MaterialSpec(
                class_name=name,
                key_prefix=prefix,
                initial_state=initial,
                parent=parent,
                description=description,
            )
        )

    def _parse_step_header(self, line: str) -> None:
        body, description = _split_description(_rest(line, "step"))
        tokens = body.replace(",", " , ").split()
        name = tokens.pop(0)
        involves: list[str] = []
        creates: list[str] = []
        target: list[str] | None = None
        for token in tokens:
            if token == "involves":
                target = involves
            elif token == "creates":
                target = creates
            elif token == ",":
                continue
            else:
                if target is None:
                    raise InvalidWorkflowError(
                        f"step {name!r}: unexpected token {token!r}"
                    )
                target.append(token)
        if not involves:
            raise InvalidWorkflowError(f"step {name!r}: missing 'involves'")
        self._step_header = {
            "name": name,
            "involves": involves,
            "creates": creates,
            "description": description,
        }

    def _parse_attr(self, line: str) -> None:
        if self._step_header is None:
            raise InvalidWorkflowError("'attr' outside a step block")
        body, description = _split_description(_rest(line, "attr"))
        name, _, kind_name = body.partition(":")
        kind_name = kind_name.strip()
        kind = _KINDS.get(kind_name)
        if kind is None:
            raise InvalidWorkflowError(
                f"unknown attribute kind {kind_name!r}; know {sorted(_KINDS)}"
            )
        self._step_attrs.append(
            AttributeSpec(name.strip(), kind, description)
        )

    def _parse_transition(self, line: str) -> None:
        body = _rest(line, "transition")
        # <from> -> <to> via <step> [fail <p> -> <state> [test <name>]]
        main, _, failure = body.partition(" fail ")
        route, _, step_name = main.partition(" via ")
        from_state, _, to_state = route.partition("->")
        from_state = from_state.strip()
        to_state = to_state.strip()
        step_name = step_name.strip()
        if not from_state or not to_state or not step_name:
            raise InvalidWorkflowError(
                f"transition must be '<from> -> <to> via <step>', got {body!r}"
            )
        fail_state = None
        fail_probability = 0.0
        test = None
        if failure:
            fail_part, _, test_part = failure.partition(" test ")
            probability_text, _, fail_state_text = fail_part.partition("->")
            fail_probability = float(probability_text.strip())
            fail_state = fail_state_text.strip()
            if not fail_state:
                raise InvalidWorkflowError("fail clause needs '-> <state>'")
            if test_part.strip():
                test = test_part.strip()
        self.transitions.append(
            Transition(
                step=step_name,
                from_state=from_state,
                to_state=to_state,
                fail_state=fail_state,
                fail_probability=fail_probability,
                test=test,
            )
        )


def _rest(line: str, keyword: str) -> str:
    rest = line[len(keyword):].strip()
    if not rest:
        raise InvalidWorkflowError(f"{keyword!r} needs an argument")
    return rest


def _split_description(body: str) -> tuple[str, str]:
    main, _, description = body.partition("--")
    return main.strip(), description.strip()


def parse_workflow(text: str) -> WorkflowSpec:
    """Parse DSL text into a (not yet validated) workflow spec."""
    return _Parser(text).parse()


def load_workflow(text: str) -> WorkflowGraph:
    """Parse and validate: the one-call path from text to graph."""
    return WorkflowGraph(parse_workflow(text))


def render_workflow(spec: WorkflowSpec) -> str:
    """Render a spec back to DSL text (round-trips through the parser)."""
    lines = [f"workflow {spec.name}", ""]
    for material in spec.materials:
        parts = [f"material {material.class_name}", f"key {material.key_prefix}"]
        if material.initial_state:
            parts.append(f"initial {material.initial_state}")
        if material.parent:
            parts.append(f"is-a {material.parent}")
        line = " ".join(parts)
        if material.description:
            line += f" -- {material.description}"
        lines.append(line)
    lines.append("")
    for step in spec.steps:
        line = f"step {step.class_name} involves {', '.join(step.involves_classes)}"
        if step.creates:
            line += f" creates {', '.join(step.creates)}"
        if step.description:
            line += f" -- {step.description}"
        lines.append(line)
        for attribute in step.attributes:
            attr_line = f"    attr {attribute.name} : {attribute.kind.value}"
            if attribute.description:
                attr_line += f" -- {attribute.description}"
            lines.append(attr_line)
        lines.append("")
    for transition in spec.transitions:
        line = (
            f"transition {transition.from_state} -> {transition.to_state} "
            f"via {transition.step}"
        )
        if transition.fail_state is not None:
            line += f" fail {transition.fail_probability} -> {transition.fail_state}"
            if transition.test:
                line += f" test {transition.test}"
        lines.append(line)
    lines.append("")
    lines.append(f"terminal {', '.join(spec.terminal_states)}")
    return "\n".join(lines)
