"""Workflow modelling and execution (paper Sections 2.2 and Appendix B)."""

from repro.workflow.dsl import load_workflow, parse_workflow, render_workflow
from repro.workflow.engine import (
    EngineCounters,
    StepEvent,
    WorkflowEngine,
    default_value_factory,
)
from repro.workflow.genome import build_genome_spec, build_genome_workflow
from repro.workflow.graph import WorkflowGraph
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)

__all__ = [
    "WorkflowGraph",
    "load_workflow",
    "parse_workflow",
    "render_workflow",
    "WorkflowEngine",
    "WorkflowSpec",
    "MaterialSpec",
    "StepSpec",
    "AttributeSpec",
    "Transition",
    "ValueKind",
    "StepEvent",
    "EngineCounters",
    "default_value_factory",
    "build_genome_spec",
    "build_genome_workflow",
]
