"""The LabFlow-1 genome-mapping workflow (paper Appendices A and B).

This is the concrete workflow whose graph "forms the basis of the
workload for the LabFlow-1 benchmark": the Whitehead/MIT Genome Center's
transposon-facilitated sequencing pipeline.  Materials are **clones**
(DNA fragments received for mapping), **tclones** (transposon-mapped
subclones derived from a clone) and **gels** (sequencing gels run for a
tclone).

The step and state vocabulary (``associate_tclone``,
``determine_sequence``, ``assemble_sequence``, ``waiting_for_sequencing``,
``waiting_for_incorporation``, the ``test:sequencing_ok`` transition
test) is taken directly from the paper's text; attribute lists and the
exact failure probabilities are reconstructions documented in DESIGN.md.

Two graph devices reproduce the paper's workload shape:

* the **fan-out loop** — ``associate_tclone`` returns the clone to
  ``waiting_for_tclone`` with probability :data:`MORE_TCLONES_PROBABILITY`,
  so each clone spawns a geometric number of tclones (mean ~4);
* the **re-queue edge** — a failed ``test:sequencing_ok`` sends the
  tclone back to ``waiting_for_gel`` for another gel and read, creating
  the cycle the paper's Appendix B graph contains.
"""

from __future__ import annotations

from repro.workflow.graph import WorkflowGraph
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)

#: Probability that a clone needs another tclone after associate_tclone
#: (geometric fan-out with mean 1/(1-p) = 4 tclones per clone).
MORE_TCLONES_PROBABILITY = 0.75

#: Probability that test:sequencing_ok fails and the tclone re-queues.
SEQUENCING_FAILURE_PROBABILITY = 0.12

# Clone states
ARRIVED = "arrived"
WAITING_FOR_TCLONE = "waiting_for_tclone"
WAITING_FOR_ASSEMBLY = "waiting_for_assembly"
WAITING_FOR_BLAST = "waiting_for_blast"
WAITING_FOR_INCORPORATION = "waiting_for_incorporation"
CLONE_DONE = "clone_done"

# Tclone states
WAITING_FOR_GEL = "waiting_for_gel"
WAITING_FOR_SEQUENCING = "waiting_for_sequencing"
TCLONE_WAITING_FOR_INCORPORATION = "tclone_waiting_for_incorporation"
TCLONE_DONE = "tclone_done"

# Gel states
GEL_READY = "gel_ready"
GEL_DONE = "gel_done"

TERMINAL_STATES = (CLONE_DONE, TCLONE_DONE, GEL_DONE)


def build_genome_spec() -> WorkflowSpec:
    """The declarative spec of the genome-mapping workflow."""
    materials = [
        MaterialSpec(
            class_name="clone",
            key_prefix="clone",
            description="DNA fragment received for mapping",
            initial_state=ARRIVED,
        ),
        MaterialSpec(
            class_name="tclone",
            key_prefix="tc",
            description="transposon-mapped subclone of a clone",
            initial_state=WAITING_FOR_GEL,
            parent="clone",  # EER is-a: a tclone is a (sub)clone
        ),
        MaterialSpec(
            class_name="gel",
            key_prefix="gel",
            description="sequencing gel run for a tclone",
            initial_state=GEL_READY,
        ),
    ]

    steps = [
        StepSpec(
            class_name="receive_clone",
            attributes=(
                AttributeSpec("source", ValueKind.TEXT, "originating lab"),
                AttributeSpec("received_date", ValueKind.DATE),
                AttributeSpec("insert_length", ValueKind.INTEGER, "bases"),
            ),
            involves_classes=("clone",),
            description="log a clone's arrival at the lab",
        ),
        StepSpec(
            class_name="associate_tclone",
            attributes=(
                AttributeSpec("position", ValueKind.INTEGER, "transposon insertion point"),
                AttributeSpec("orientation", ValueKind.TEXT),
            ),
            involves_classes=("clone", "tclone"),
            creates=("tclone",),
            description="derive a transposon-mapped subclone",
        ),
        StepSpec(
            class_name="prep_gel",
            attributes=(
                AttributeSpec("lanes", ValueKind.INTEGER),
                AttributeSpec("prep_operator", ValueKind.IDENTIFIER),
            ),
            involves_classes=("tclone", "gel"),
            creates=("gel",),
            description="prepare a sequencing gel for a tclone",
        ),
        StepSpec(
            class_name="read_gel",
            attributes=(
                AttributeSpec("lanes_read", ValueKind.INTEGER),
                AttributeSpec("image_size", ValueKind.INTEGER, "bytes"),
            ),
            involves_classes=("gel",),
            description="digitize a finished gel",
        ),
        StepSpec(
            class_name="determine_sequence",
            attributes=(
                AttributeSpec("sequence", ValueKind.DNA),
                AttributeSpec("quality", ValueKind.FLOAT),
                AttributeSpec("read_length", ValueKind.INTEGER),
            ),
            involves_classes=("tclone",),
            description="base-call a tclone from its gel",
        ),
        StepSpec(
            class_name="incorporate_tclone",
            attributes=(
                AttributeSpec("map_offset", ValueKind.INTEGER),
            ),
            involves_classes=("tclone",),
            description="fold a sequenced tclone into the clone map",
        ),
        StepSpec(
            class_name="assemble_sequence",
            attributes=(
                AttributeSpec("contig", ValueKind.DNA),
                AttributeSpec("coverage", ValueKind.FLOAT),
            ),
            involves_classes=("clone",),
            description="assemble the clone's tclone reads into a contig",
        ),
        StepSpec(
            class_name="blast_search",
            attributes=(
                AttributeSpec("hits", ValueKind.HIT_LIST, "homology hits vs GenBank/EMBL"),
                AttributeSpec("database", ValueKind.TEXT),
            ),
            involves_classes=("clone",),
            description="BLAST homology search; stores the hit list locally",
        ),
        StepSpec(
            class_name="incorporate",
            attributes=(
                AttributeSpec("map_position", ValueKind.INTEGER),
                AttributeSpec("released", ValueKind.INTEGER, "release flag"),
            ),
            involves_classes=("clone",),
            description="incorporate the finished clone into the genome map",
        ),
    ]

    transitions = [
        Transition("receive_clone", ARRIVED, WAITING_FOR_TCLONE),
        Transition(
            "associate_tclone",
            WAITING_FOR_TCLONE,
            WAITING_FOR_ASSEMBLY,
            fail_state=WAITING_FOR_TCLONE,
            fail_probability=MORE_TCLONES_PROBABILITY,
            test="test:enough_tclones",
        ),
        Transition("prep_gel", WAITING_FOR_GEL, WAITING_FOR_SEQUENCING),
        Transition(
            "determine_sequence",
            WAITING_FOR_SEQUENCING,
            TCLONE_WAITING_FOR_INCORPORATION,
            fail_state=WAITING_FOR_GEL,
            fail_probability=SEQUENCING_FAILURE_PROBABILITY,
            test="test:sequencing_ok",
        ),
        Transition(
            "incorporate_tclone", TCLONE_WAITING_FOR_INCORPORATION, TCLONE_DONE
        ),
        Transition("read_gel", GEL_READY, GEL_DONE),
        Transition("assemble_sequence", WAITING_FOR_ASSEMBLY, WAITING_FOR_BLAST),
        Transition("blast_search", WAITING_FOR_BLAST, WAITING_FOR_INCORPORATION),
        Transition("incorporate", WAITING_FOR_INCORPORATION, CLONE_DONE),
    ]

    return WorkflowSpec(
        name="labflow-1-genome-mapping",
        materials=materials,
        steps=steps,
        transitions=transitions,
        terminal_states=TERMINAL_STATES,
        description="Whitehead/MIT-style transposon-facilitated sequencing",
    )


def build_genome_workflow() -> WorkflowGraph:
    """The validated Appendix B workflow graph."""
    return WorkflowGraph(build_genome_spec())


#: Attribute list for the schema-evolution experiment (E9): the lab
#: upgrades its base-caller and determine_sequence gains an attribute.
EVOLVED_DETERMINE_SEQUENCE_ATTRIBUTES = (
    "sequence",
    "quality",
    "read_length",
    "basecaller_version",
)
