"""Exception hierarchy for the LabFlow-1 reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Subsystems get their own
branches (storage, LabBase, query language, workflow, benchmark) to keep
error handling local and messages precise.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# ---------------------------------------------------------------------------
# Storage-manager errors
# ---------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """A page-level problem: overflow, bad slot, corrupt payload."""


class PageOverflowError(PageError):
    """An object does not fit in a page (and cannot be chunked)."""


class UnknownOidError(StorageError):
    """An object identifier does not name any stored object."""

    def __init__(self, oid: int) -> None:
        super().__init__(f"unknown oid: {oid}")
        self.oid = oid


class UnknownSegmentError(StorageError):
    """A segment name or id does not exist in this store."""


class StorageClosedError(StorageError):
    """The storage manager has been closed and cannot serve requests."""


class TransactionError(StorageError):
    """Misuse of the transaction protocol (nested begin, commit w/o begin)."""


class LockError(StorageError):
    """A page-lock request could not be granted."""


class InjectedCrashError(StorageError):
    """A deterministic fault injector killed the simulated disk.

    Raised by ``repro.storage.faultinject.FaultyPageFile`` at its
    configured write point and on every access afterwards — a dead
    process cannot keep serving I/O.
    """


class ConcurrencyUnsupportedError(StorageError):
    """The storage manager does not support concurrent clients.

    The simulated Texas store raises this when a second client attaches,
    mirroring the real Texas v0.3 restriction the paper notes (Texas
    programs access their database files directly, without a lock server).
    """


class UnknownBackendError(StorageError):
    """A server-version name does not match any registered storage backend.

    Raised by ``repro.storage.registry`` lookups (and therefore by
    ``make_db`` / the CLI ``--server`` paths); the message lists every
    registered backend so a typo is a one-glance fix.
    """

    def __init__(self, name: str, known: tuple[str, ...] = ()) -> None:
        message = f"unknown storage backend {name!r}"
        if known:
            message += f"; registered backends: {', '.join(known)}"
        super().__init__(message)
        self.name = name
        self.known = tuple(known)


# ---------------------------------------------------------------------------
# LabBase errors
# ---------------------------------------------------------------------------


class LabBaseError(ReproError):
    """Base class for LabBase (workflow-DBMS wrapper) failures."""


class SchemaError(LabBaseError):
    """Invalid user-level schema definition or usage."""


class UnknownClassError(SchemaError):
    """A step or material class name is not in the catalog."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown class: {name!r}")
        self.name = name


class DuplicateKeyError(LabBaseError):
    """A material with the same (class, key) already exists."""

    def __init__(self, class_name: str, key: str) -> None:
        super().__init__(f"duplicate material key {key!r} in class {class_name!r}")
        self.class_name = class_name
        self.key = key


class UnknownMaterialError(LabBaseError):
    """No material with the given oid or (class, key) exists."""


class UnknownAttributeError(LabBaseError):
    """A material has no recorded value for the requested attribute."""

    def __init__(self, subject: str, attribute: str) -> None:
        super().__init__(f"{subject} has no value for attribute {attribute!r}")
        self.subject = subject
        self.attribute = attribute


class StateError(LabBaseError):
    """Illegal workflow-state operation (e.g. retracting an absent state)."""


# ---------------------------------------------------------------------------
# Deductive query language errors
# ---------------------------------------------------------------------------


class QueryError(ReproError):
    """Base class for deductive-query-language failures."""


class LexError(QueryError):
    """Tokenizer failure, with position information."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


class ParseError(QueryError):
    """Parser failure, with position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} at line {line}, column {column}"
        super().__init__(message)
        self.line = line
        self.column = column


class EvaluationError(QueryError):
    """Runtime failure while resolving a query (bad builtin call, etc.)."""


class InstantiationError(EvaluationError):
    """A builtin required a bound argument but got an unbound variable."""

    def __init__(self, context: str) -> None:
        super().__init__(f"arguments insufficiently instantiated in {context}")


# ---------------------------------------------------------------------------
# Workflow errors
# ---------------------------------------------------------------------------


class WorkflowError(ReproError):
    """Base class for workflow-model failures."""


class InvalidWorkflowError(WorkflowError):
    """The workflow graph is malformed (unknown state, unreachable, etc.)."""


class TransitionError(WorkflowError):
    """A step was applied to a material whose state does not allow it."""


# ---------------------------------------------------------------------------
# Benchmark errors
# ---------------------------------------------------------------------------


class BenchmarkError(ReproError):
    """Base class for benchmark-harness failures."""


class ConfigError(BenchmarkError):
    """Invalid benchmark configuration parameters."""


# ---------------------------------------------------------------------------
# Server errors
# ---------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for served-session failures."""


class ProtocolError(ServerError):
    """A malformed or unanswerable client/server message."""


class SessionError(ServerError):
    """A request against an unknown or closed served session."""


class SanitizerError(ReproError):
    """A concurrency-sanitizer violation (lock order, schedule fuzz)."""
