"""Runtime lock-order watchdog: the dynamic half of the sanitizer.

:class:`LockOrderWatchdog` manufactures wrapped ``threading`` locks
(:meth:`lock` / :meth:`rlock`) that record every acquisition into a
per-thread stack and check it, online, against the ground-truth order
in :data:`repro.obs.tracing.LOCK_RANKS`:

* **rank inversion** — acquiring a lock whose rank is <= the rank of a
  lock the thread already holds (re-entrant re-acquisition of the same
  RLock excepted);
* **cycle** — the first-seen acquisition-edge graph (held -> acquired)
  gains a path back to an already-held lock, i.e. two threads have
  demonstrated opposite nesting orders at runtime.

Violations accumulate (``violations()``); with ``strict=True`` the
offending ``acquire`` raises :class:`~repro.errors.SanitizerError`
instead, so a test can pin that a deliberately reordered acquisition is
caught *at the point of the bug*.  First-seen edges are also emitted
into an attached :class:`~repro.obs.tracing.UnitTracer` (``lock_order``
events), putting the observed acquisition order into the same JSONL
stream as the unit spans.

The watchdog's own bookkeeping lock (``watchdog.state``) is the
innermost lock in the system by construction: nothing is called while
it is held, so instrumenting every other lock cannot itself deadlock.
Wrapped RLocks forward the private ``Condition`` protocol
(``_acquire_restore`` / ``_release_save`` / ``_is_owned``), so
``threading.Condition(watchdog.rlock(...))`` works unchanged — and
``wait()``'s release/re-acquire cycles are tracked like any other.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import SanitizerError
from repro.obs.tracing import LOCK_RANKS, UnitTracer


class _HeldStack(threading.local):
    """Per-thread stack of (lock name, re-entry count) frames."""

    def __init__(self) -> None:
        self.frames: list[list[object]] = []
        self.muted = False


class LockOrderWatchdog:
    """Wraps locks, records acquisition order, flags inversions/cycles."""

    def __init__(
        self,
        *,
        strict: bool = False,
        tracer: UnitTracer | None = None,
        ranks: dict[str, int] | None = None,
    ) -> None:
        self._strict = strict
        self._tracer = tracer
        self._ranks = dict(LOCK_RANKS if ranks is None else ranks)
        self._state_lock = threading.Lock()
        self._held = _HeldStack()
        #: first-seen acquisition edges: held-name -> set of acquired-names
        self._edges: dict[str, set[str]] = {}
        self._violations: list[dict[str, object]] = []
        self._acquisitions = 0

    # -- lock factories ------------------------------------------------------

    def lock(self, name: str) -> "WatchedLock":
        """A watched ``threading.Lock`` registered under ``name``."""
        self._require_rank(name)
        return WatchedLock(self, name, threading.Lock())

    def rlock(self, name: str) -> "WatchedLock":
        """A watched ``threading.RLock`` (Condition-compatible)."""
        self._require_rank(name)
        return WatchedLock(self, name, threading.RLock())

    def _require_rank(self, name: str) -> None:
        if name not in self._ranks:
            raise SanitizerError(
                f"lock {name!r} is not in the LOCK_RANKS ordering table; "
                "register it before wrapping it"
            )

    # -- acquisition bookkeeping (called by WatchedLock) ---------------------

    def note_acquired(self, name: str) -> None:
        frames = self._held.frames
        if frames and frames[-1][0] == name:
            frames[-1][1] = int(frames[-1][1]) + 1  # re-entrant re-acquire
            return
        held_names = [str(frame[0]) for frame in frames]
        frames.append([name, 1])
        new_edges: list[tuple[str, str]] = []
        with self._state_lock:
            self._acquisitions += 1
            for held in held_names:
                if held == name:
                    continue
                targets = self._edges.setdefault(held, set())
                if name not in targets:
                    targets.add(name)
                    new_edges.append((held, name))
            problems = self._check_order(held_names, name)
            self._violations.extend(problems)
        self._emit_edges(new_edges)
        if problems and self._strict:
            raise SanitizerError(str(problems[0]["message"]))

    def note_released(self, name: str) -> None:
        frames = self._held.frames
        for index in range(len(frames) - 1, -1, -1):
            if frames[index][0] == name:
                frames[index][1] = int(frames[index][1]) - 1
                if int(frames[index][1]) <= 0:
                    del frames[index]
                return

    def _check_order(
        self, held_names: list[str], name: str
    ) -> list[dict[str, object]]:
        problems: list[dict[str, object]] = []
        rank = self._ranks.get(name)
        for held in held_names:
            held_rank = self._ranks.get(held)
            if (
                rank is not None
                and held_rank is not None
                and held_rank >= rank
            ):
                problems.append(
                    {
                        "kind": "rank_inversion",
                        "acquired": name,
                        "held": held,
                        "message": (
                            f"lock order inversion: acquired {name!r} "
                            f"(rank {rank}) while holding {held!r} "
                            f"(rank {held_rank})"
                        ),
                    }
                )
            if self._has_path(name, held):
                problems.append(
                    {
                        "kind": "cycle",
                        "acquired": name,
                        "held": held,
                        "message": (
                            f"lock acquisition cycle: {name!r} -> ... -> "
                            f"{held!r} already observed, now acquiring "
                            f"{name!r} while holding {held!r}"
                        ),
                    }
                )
        return problems

    def _has_path(self, source: str, target: str) -> bool:
        """Whether the edge graph already reaches ``target`` from ``source``."""
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for neighbour in self._edges.get(node, ()):
                if neighbour == target:
                    return True
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    def _emit_edges(self, new_edges: list[tuple[str, str]]) -> None:
        """Record first-seen edges into the obs trace (re-entry safe).

        The tracer's own lock may be one of the watched locks, so the
        emission is muted per-thread while it runs — the inner
        ``note_acquired`` for ``tracer.events`` must not recurse back
        into emission.
        """
        if self._tracer is None or not new_edges or self._held.muted:
            return
        self._held.muted = True
        try:
            for held, acquired in new_edges:
                self._tracer.lock_order(held=held, acquired=acquired)
        finally:
            self._held.muted = False

    # -- reading -------------------------------------------------------------

    def violations(self) -> list[dict[str, object]]:
        with self._state_lock:
            return [dict(problem) for problem in self._violations]

    def edges(self) -> list[tuple[str, str]]:
        """Every acquisition edge seen so far, sorted."""
        with self._state_lock:
            return sorted(
                (held, acquired)
                for held, targets in self._edges.items()
                for acquired in targets
            )

    def summary(self) -> dict[str, object]:
        """JSON-safe digest for ``sample()`` payloads and reports."""
        with self._state_lock:
            return {
                "acquisitions": self._acquisitions,
                "edges": [
                    [held, acquired]
                    for held, targets in sorted(self._edges.items())
                    for acquired in sorted(targets)
                ],
                "violations": [dict(problem) for problem in self._violations],
                "ok": not self._violations,
            }

    def check(self) -> None:
        """Raise :class:`SanitizerError` if any violation was recorded."""
        with self._state_lock:
            problems = list(self._violations)
        if problems:
            raise SanitizerError(
                "; ".join(str(problem["message"]) for problem in problems)
            )


class WatchedLock:
    """One wrapped lock: the real lock plus order bookkeeping.

    Context-manager and ``acquire``/``release`` compatible with the
    lock it wraps; additionally forwards the stdlib ``Condition``
    protocol so a wrapped RLock can back a ``threading.Condition``.
    """

    def __init__(
        self, watchdog: LockOrderWatchdog, name: str, inner: Any
    ) -> None:
        self._watchdog = watchdog
        self.name = name
        # Any by design: threading.Lock/RLock are factory functions, not
        # types, and the Condition protocol below is typeshed-private.
        self._inner: Any = inner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = bool(self._inner.acquire(blocking, timeout))
        if acquired:
            self._watchdog.note_acquired(self.name)
        return acquired

    def release(self) -> None:
        self._watchdog.note_released(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()

    # -- Condition protocol (used by threading.Condition over an RLock) ------

    def _acquire_restore(self, state: object) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        self._watchdog.note_acquired(self.name)

    def _release_save(self) -> object:
        self._watchdog.note_released(self.name)
        if hasattr(self._inner, "_release_save"):
            state: object = self._inner._release_save()
            return state
        self._inner.release()
        return None

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return bool(self._inner._is_owned())
        # threading.Condition's own fallback for a plain Lock: held by
        # *someone* iff a non-blocking probe fails.  The probe bypasses
        # the watchdog on purpose — it is not an acquisition.
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True
