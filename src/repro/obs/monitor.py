"""``repro monitor``: attach to a running server and watch it work.

The monitor opens a plain protocol channel to a live ``repro serve``,
polls the ``sample`` operation on an interval, turns successive counter
snapshots into interval :class:`~repro.obs.sampler.Sample` rows and
streams them as a live table (fixed column widths, so rows printed a
minute apart still line up under the original header).  On detach it
prints the server's per-phase unit histograms when tracing is enabled
over there.

This module intentionally lives outside ``repro.obs.__init__``'s
import surface: it imports the server package, which itself imports
``repro.obs.tracing`` — importing it eagerly would be a cycle.
"""

from __future__ import annotations

import socket
import time
from typing import IO, Callable

from repro.errors import ProtocolError, ServerError
from repro.obs.clock import Clock, system_clock
from repro.obs.render import render_phase_histograms, render_sample_table
from repro.obs.sampler import Sample, sample_from_snapshots
from repro.server.communicator import Channel, Request


def fetch_sample(channel: Channel) -> dict[str, object]:
    """One ``sample`` round trip; raises on error responses."""
    response = channel.roundtrip(Request(op="sample"))
    if not response.ok:
        raise ServerError(f"sample failed: {response.error}")
    if not isinstance(response.value, dict):
        raise ProtocolError("sample response is not an object")
    return response.value


def monitor(
    host: str,
    port: int,
    *,
    samples: int,
    interval: float,
    out: IO[str],
    clock: Clock = system_clock,
    sleep: Callable[[float], None] = time.sleep,
) -> list[Sample]:
    """Attach, poll ``samples`` observations, stream the table to ``out``.

    Returns the collected samples (tests read them; the CLI reads the
    rendered text).  ``clock`` and ``sleep`` are injectable so the
    deterministic tests replay a poll schedule without wall time.
    """
    try:
        sock = socket.create_connection((host, port), timeout=10.0)
    except OSError as exc:
        raise ServerError(f"cannot reach {host}:{port}: {exc}") from exc
    channel = Channel(sock)
    collected: list[Sample] = []
    header_lines = render_sample_table([]).splitlines()
    out.write(f"monitoring {host}:{port} (interval {interval:g}s)\n")
    for line in header_lines:
        out.write(line + "\n")
    out.flush()
    trace_summary: dict[str, object] | None = None
    try:
        previous: dict[str, int] | None = None
        last_t: float | None = None
        for _poll in range(samples):
            payload = fetch_sample(channel)
            raw = payload.get("counters")
            if not isinstance(raw, dict):
                raise ProtocolError("sample payload has no counters")
            counters = {str(k): int(v) for k, v in raw.items()}  # type: ignore[call-overload]
            t = clock()
            dt = 0.0 if last_t is None else t - last_t
            observation = sample_from_snapshots(
                len(collected), t, dt, counters, previous
            )
            collected.append(observation)
            previous = observation.counters
            last_t = t
            out.write(render_sample_table([observation]).splitlines()[-1] + "\n")
            out.flush()
            trace = payload.get("trace")
            if isinstance(trace, dict):
                trace_summary = trace
            if _poll + 1 < samples and interval > 0.0:
                sleep(interval)
    finally:
        channel.close()
    if trace_summary is not None:
        histograms = trace_summary.get("histograms")
        if isinstance(histograms, dict):
            out.write(
                "\n"
                + render_phase_histograms(
                    histograms, title="unit phase durations (server-side)"
                )
                + "\n"
            )
            out.flush()
    return collected
