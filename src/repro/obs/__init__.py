"""repro.obs — metrics, unit-of-work tracing, and recorded baselines.

The observability layer over the reproduction (DESIGN.md section 14):

* :mod:`repro.obs.registry` — every derived gauge, as declared
  :class:`~repro.obs.registry.MetricSpec` entries (lint rule LF07
  enforces the one-render-path / one-baseline-schema discipline);
* :mod:`repro.obs.sampler` — interval snapshots of the counter block
  with per-interval deltas and gauges, as deterministic JSONL;
* :mod:`repro.obs.tracing` — span events from the served session layer
  with per-phase duration histograms;
* :mod:`repro.obs.baseline` — ``repro bench record`` / ``compare``
  against the committed ``BENCH_*.json`` files at the repo root;
* :mod:`repro.obs.monitor` — attach to a live server (imported lazily
  by the CLI: it depends on :mod:`repro.server`, which depends on the
  tracing module here, so it stays off this package's import surface).

Everything is clock-injected (:mod:`repro.obs.clock`): with a
:class:`~repro.obs.clock.ManualClock` the sample and trace streams are
byte-identical across runs, which is what lets tests pin them.
"""

from repro.obs.clock import Clock, ManualClock, system_clock
from repro.obs.registry import DERIVED_METRICS, METRIC_NAMES, MetricSpec, gauges_from, metric
from repro.obs.sampler import IntervalSampler, Sample, sample_from_snapshots
from repro.obs.tracing import HISTOGRAM_BOUNDS, PHASES, PhaseHistogram, UnitTracer

__all__ = [
    "Clock",
    "ManualClock",
    "system_clock",
    "DERIVED_METRICS",
    "METRIC_NAMES",
    "MetricSpec",
    "gauges_from",
    "metric",
    "IntervalSampler",
    "Sample",
    "sample_from_snapshots",
    "HISTOGRAM_BOUNDS",
    "PHASES",
    "PhaseHistogram",
    "UnitTracer",
]
