"""Unit-of-work tracing: span events from the served session layer.

The service core emits one event per interesting transition —
``unit_begin`` when a unit starts, ``lock_wait`` when a lock conflict
sends it through the queued-wait retry path, ``unit_end`` with
per-phase durations on success, ``abort`` on a unit that never
happened, and ``group_flush`` when the commit coordinator closes a
group.  Events are appended to an in-memory list and, when a sink is
attached, written as sorted-JSON JSONL; with an injected
:class:`~repro.obs.clock.ManualClock` the stream is byte-identical
across runs (the determinism test in ``tests/test_obs.py`` proves it).

``unit_end`` durations also feed fixed-boundary histograms per phase
(``lock`` / ``exec`` / ``drain``), so the monitor can show a latency
shape without the tracer ever holding unbounded per-unit state beyond
the event list itself.
"""

from __future__ import annotations

import json
import threading
from typing import IO

from repro.obs.clock import Clock, system_clock

#: The phases a successful unit is timed through.
PHASES: tuple[str, ...] = ("lock", "exec", "drain")

#: Fixed histogram bucket upper bounds, in seconds.  Durations at or
#: below a bound land in its bucket; anything larger lands in the
#: implicit overflow bucket.  Fixed boundaries keep recorded histograms
#: comparable across runs and machines.
HISTOGRAM_BOUNDS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0,
)

#: Durations are rounded to nanoseconds before they enter an event, so
#: the JSONL stream never depends on float repr tails.
DURATION_DIGITS = 9

#: The global lock order of the served stack — THE ground-truth table.
#:
#: Every ``threading`` lock in the served core has exactly one entry
#: here; a thread may only acquire a lock whose rank is *strictly
#: greater* than every lock it already holds (re-entrant re-acquisition
#: of the same RLock excepted).  The tracer's own lock is deliberately
#: the innermost *traced* lock: emission happens under the service
#: mutex but never the other way around, so a monitor thread reading
#: ``summary()`` can never participate in a cycle with the unit path.
#:
#: Both enforcement prongs decode this table: rule LF08
#: (:mod:`repro.analysis.concurrency`) reads the dict literal
#: statically and flags any acquisition edge that violates the ranks,
#: and :class:`~repro.obs.watchdog.LockOrderWatchdog` imports it at
#: runtime and checks the actual per-thread acquisition order.  Ranks
#: are spaced by 10 so a new lock can be slotted without renumbering.
LOCK_RANKS: dict[str, int] = {
    "fuzz.gate": 0,
    "service.mutex": 10,
    "runner.channels": 20,
    "tracer.events": 30,
    "watchdog.state": 40,
}

#: Where each ranked lock lives, as ``ClassName._attribute`` — the
#: static pass uses this to map lock attributes it discovers in the
#: source onto rank-table entries (and flags any lock attribute in the
#: served core that is missing from this registry).  ``Condition``
#: objects built over a registered lock share that lock's rank.
LOCK_SITES: dict[str, str] = {
    "fuzz.gate": "ScheduleFuzzer._gate_lock",
    "service.mutex": "LabFlowService._mutex",
    "runner.channels": "ServiceRunner._channel_lock",
    "tracer.events": "UnitTracer._lock",
    "watchdog.state": "LockOrderWatchdog._state_lock",
}


class PhaseHistogram:
    """Counts of durations against :data:`HISTOGRAM_BOUNDS`."""

    def __init__(self) -> None:
        self.counts: list[int] = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.total = 0
        self.sum_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            if seconds <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> dict[str, object]:
        return {
            "bounds": list(HISTOGRAM_BOUNDS),
            "counts": list(self.counts),
            "total": self.total,
            "sum_seconds": round(self.sum_seconds, DURATION_DIGITS),
        }


class UnitTracer:
    """Collects span events and per-phase duration histograms.

    Thread-safe: the service emits under its own mutex, but the monitor
    path reads summaries from other threads, so the tracer carries its
    own lock rather than borrowing the service's.

    Lock order: ``_lock`` is ``tracer.events`` in :data:`LOCK_RANKS` —
    the innermost traced lock.  Nothing called while it is held may
    acquire any other registered lock (the emission path only touches
    the clock, the event list and the sink), so a reader thread polling
    ``summary()``/``jsonl()`` can never deadlock against the unit path
    that emits under the service mutex.
    """

    def __init__(
        self, *, clock: Clock = system_clock, sink: IO[str] | None = None
    ) -> None:
        self._clock = clock
        self._sink = sink
        self._lock = threading.Lock()
        self._seq = 0
        self.events: list[dict[str, object]] = []
        self.histograms: dict[str, PhaseHistogram] = {
            phase: PhaseHistogram() for phase in PHASES
        }

    def now(self) -> float:
        """One reading of the tracer's clock (for phase bracketing)."""
        return self._clock()

    # -- emission points (called by the server layer) -----------------------

    def unit_begin(self, session: str, op: str) -> None:
        self._emit("unit_begin", session=session, op=op)

    def lock_wait(self, session: str, op: str, attempt: int) -> None:
        self._emit("lock_wait", session=session, op=op, attempt=attempt)

    def unit_end(
        self,
        session: str,
        op: str,
        *,
        lock_seconds: float,
        exec_seconds: float,
        drain_seconds: float,
    ) -> None:
        durations = {
            "lock": round(lock_seconds, DURATION_DIGITS),
            "exec": round(exec_seconds, DURATION_DIGITS),
            "drain": round(drain_seconds, DURATION_DIGITS),
        }
        with self._lock:
            for phase in PHASES:
                self.histograms[phase].record(durations[phase])
            self._emit_locked(
                "unit_end", session=session, op=op, durations=durations
            )

    def abort(self, session: str, op: str, error_type: str) -> None:
        self._emit("abort", session=session, op=op, error_type=error_type)

    def group_flush(self, width: int, units: int) -> None:
        self._emit("group_flush", width=width, units=units)

    def lock_order(self, held: str, acquired: str) -> None:
        """A first-seen lock-acquisition edge, from the watchdog."""
        self._emit("lock_order", held=held, acquired=acquired)

    # -- reading ------------------------------------------------------------

    def summary(self) -> dict[str, object]:
        """A JSON-safe digest: event counts and phase histograms."""
        with self._lock:
            by_event: dict[str, int] = {}
            for event in self.events:
                name = str(event["event"])
                by_event[name] = by_event.get(name, 0) + 1
            return {
                "events": len(self.events),
                "by_event": by_event,
                "histograms": {
                    phase: hist.as_dict()
                    for phase, hist in self.histograms.items()
                },
            }

    def jsonl(self) -> str:
        """The full event stream as sorted-JSON JSONL."""
        with self._lock:
            return "".join(
                json.dumps(event, sort_keys=True) + "\n"
                for event in self.events
            )

    # -- internals ----------------------------------------------------------

    def _emit(self, name: str, **fields: object) -> None:
        with self._lock:
            self._emit_locked(name, **fields)

    def _emit_locked(self, name: str, **fields: object) -> None:
        event: dict[str, object] = {
            "event": name,
            "seq": self._seq,
            "t": round(self._clock(), DURATION_DIGITS),
        }
        event.update(fields)
        self._seq += 1
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event, sort_keys=True) + "\n")
            self._sink.flush()
