"""The metric registry: every derived gauge the system reports.

A *gauge* is a ratio derived from :class:`~repro.storage.stats.StorageStats`
counters: numerator over the sum of one or more denominator counters,
with a declared default for the empty-denominator case.  Registering a
gauge here is a contract enforced by lint rule LF07 (mirroring what
LF05 does for raw counters): the gauge's name must appear in **exactly
one** render path (a function in :mod:`repro.obs.render`) and **exactly
one** baseline schema (an entry in
:data:`repro.obs.baseline.BASELINE_SCHEMAS`), and its source counters
must be declared ``StorageStats`` fields.  A gauge that is computed but
never rendered, rendered twice, or recorded under two baselines is a
lint failure, not a code-review hope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.storage.stats import STAT_FIELDS


@dataclass(frozen=True)
class MetricSpec:
    """One registered gauge: ``numerator / sum(denominator)``."""

    name: str
    description: str
    render: str          # the repro.obs.render function that shows it
    baseline: str        # the BASELINE_SCHEMAS key that records it
    numerator: str       # a StorageStats counter
    denominator: tuple[str, ...]  # StorageStats counters, summed
    default: float = 0.0  # value when the denominator sums to zero

    def compute(self, counters: Mapping[str, int]) -> float:
        denom = sum(int(counters.get(name, 0)) for name in self.denominator)
        if denom == 0:
            return self.default
        return int(counters.get(self.numerator, 0)) / denom


#: Every derived gauge, in render order.  LF07 walks these call sites.
DERIVED_METRICS: tuple[MetricSpec, ...] = (
    MetricSpec(
        name="hit_ratio",
        description="buffer-pool hits over page accesses",
        render="render_sample_table",
        baseline="A5",
        numerator="buffer_hits",
        denominator=("buffer_hits", "major_faults"),
        default=1.0,
    ),
    MetricSpec(
        name="prefetch_absorption",
        description="faults absorbed by read-ahead over all staged-or-missed",
        render="render_sample_table",
        baseline="A5",
        numerator="prefetch_hits",
        denominator=("prefetch_hits", "major_faults"),
        default=0.0,
    ),
    MetricSpec(
        name="cache_hit_ratio",
        description="object-cache reads served in memory",
        render="render_sample_table",
        baseline="A4",
        numerator="cache_hits",
        denominator=("cache_hits", "cache_misses"),
        default=1.0,
    ),
    MetricSpec(
        name="coalesce_ratio",
        description="object writes absorbed pre-commit by the cache",
        render="render_sample_table",
        baseline="A4",
        numerator="cache_coalesced",
        denominator=("cache_coalesced", "objects_written"),
        default=0.0,
    ),
    MetricSpec(
        name="group_width",
        description="mean session-units fused per group commit",
        render="render_sample_table",
        baseline="A6",
        numerator="sessions_per_group",
        denominator=("group_commits",),
        default=0.0,
    ),
    MetricSpec(
        name="commit_stall_ratio",
        description="groups forced closed by lock conflicts, per group",
        render="render_sample_table",
        baseline="A6",
        numerator="commit_stalls",
        denominator=("group_commits",),
        default=0.0,
    ),
    MetricSpec(
        name="mapped_read_ratio",
        description="demand reads served zero-copy from the map, per page read",
        render="render_sample_table",
        baseline="A7",
        numerator="mapped_reads",
        denominator=("page_reads",),
        default=0.0,
    ),
    MetricSpec(
        name="fast_path_ratio",
        description="records encoded via a fixed layout, over all encoded",
        render="render_sample_table",
        baseline="A8",
        numerator="records_fast_path",
        denominator=("records_fast_path", "records_fallback"),
        default=0.0,
    ),
)

METRIC_NAMES: tuple[str, ...] = tuple(spec.name for spec in DERIVED_METRICS)


def metric(name: str) -> MetricSpec:
    """Look up a registered gauge by name."""
    for spec in DERIVED_METRICS:
        if spec.name == name:
            return spec
    raise KeyError(f"no registered metric {name!r}")


def gauges_from(counters: Mapping[str, int]) -> dict[str, float]:
    """All registered gauges computed from one counter snapshot."""
    return {spec.name: spec.compute(counters) for spec in DERIVED_METRICS}


def _validate_registry() -> None:
    declared = set(STAT_FIELDS)
    seen: set[str] = set()
    for spec in DERIVED_METRICS:
        if spec.name in seen:
            raise ValueError(f"duplicate metric registration {spec.name!r}")
        seen.add(spec.name)
        for counter in (spec.numerator, *spec.denominator):
            if counter not in declared:
                raise ValueError(
                    f"metric {spec.name!r} reads undeclared counter "
                    f"{counter!r}"
                )


_validate_registry()
