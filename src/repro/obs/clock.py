"""Injectable monotonic clocks for the observability layer.

Everything in ``repro.obs`` that needs "now" takes a clock argument
instead of reading the wall clock directly, for the same reason the
crash matrix bans ``time.time()`` (lint rule LF02): a run whose
schedule depends on ambient time can never be replayed bit-for-bit.
Production code injects :func:`system_clock` (``perf_counter``, the
one timing source the harness already trusts); deterministic tests
inject a :class:`ManualClock` and get byte-identical sample and trace
streams across runs.
"""

from __future__ import annotations

import time
from typing import Callable

#: A clock is any zero-argument callable returning monotonic seconds.
Clock = Callable[[], float]


def system_clock() -> float:
    """Monotonic seconds; the production clock (``time.perf_counter``)."""
    return time.perf_counter()


class ManualClock:
    """A clock whose hands only move when the test moves them.

    Every *read* advances the clock by ``step`` (after returning the
    current value), so code that brackets a phase with two reads sees a
    deterministic nonzero duration without any explicit ``advance``
    calls.  ``advance`` adds extra time on top, for tests that model
    idle gaps between units.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        if step < 0.0:
            raise ValueError("clock step must be >= 0")
        self._now = start
        self._step = step

    def __call__(self) -> float:
        value = self._now
        self._now += self._step
        return value

    def advance(self, seconds: float) -> None:
        """Move time forward without a read."""
        if seconds < 0.0:
            raise ValueError("time does not run backwards")
        self._now += seconds

    @property
    def now(self) -> float:
        """The current reading, without advancing."""
        return self._now
