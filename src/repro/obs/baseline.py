"""Recorded benchmark baselines and regression comparison.

``repro bench record`` canonicalizes the counter-metric results of the
A4-A8 ablations (the JSON artefacts every bench now writes under
``benchmarks/results/``) into ``BENCH_A4.json`` ... ``BENCH_A8.json``
at the repo root; ``repro bench compare`` diffs a fresh run against
those committed files and exits non-zero on drift.

What gets recorded, deliberately:

* **counters** — every integer-valued field of the bench payload,
  flattened to dotted keys.  Compared with a *relative* tolerance,
  because byte counters (pickle encodings) shift slightly across
  Python versions while remaining the same order of magnitude.
* **gauges** — the registered metrics whose spec names this schema
  (LF07 guarantees each gauge appears in exactly one schema), computed
  from the bench's representative counter block.  Compared with
  per-gauge *absolute* tolerances from :data:`GAUGE_TOLERANCES`.
* **not** wall-clock timings — any ``*_us`` / ``*_ms`` / ``*_sec``
  field is machine noise in CI; pytest-benchmark artefacts already
  capture them for humans.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from typing import Mapping

from repro.obs.registry import DERIVED_METRICS

BASELINE_VERSION = 1

#: Which benchmarks/results/<name>.json feeds each baseline schema.
BASELINE_BENCHES: dict[str, str] = {
    "A4": "a4_object_cache",
    "A5": "a5_readahead",
    "A6": "a6_group_commit",
    "A7": "a7_mmap_backend",
    "A8": "a8_codec",
}

#: Which registered gauges each schema records.  LF07 cross-checks this
#: dict against the ``baseline=`` field of every MetricSpec: each gauge
#: appears in exactly one schema, and no schema names an unregistered
#: gauge.
BASELINE_SCHEMAS: dict[str, tuple[str, ...]] = {
    "A4": ("cache_hit_ratio", "coalesce_ratio"),
    "A5": ("hit_ratio", "prefetch_absorption"),
    "A6": ("group_width", "commit_stall_ratio"),
    "A7": ("mapped_read_ratio",),
    "A8": ("fast_path_ratio",),
}

#: Absolute drift tolerance per gauge (gauges are ratios in stable
#: units; group_width is sessions, so it gets the widest band).
GAUGE_TOLERANCES: dict[str, float] = {
    "hit_ratio": 0.05,
    "prefetch_absorption": 0.10,
    "cache_hit_ratio": 0.05,
    "coalesce_ratio": 0.10,
    "group_width": 0.75,
    "commit_stall_ratio": 0.25,
    "mapped_read_ratio": 0.10,
    "fast_path_ratio": 0.05,
}

#: Fields with these suffixes are timings: excluded from baselines.
_TIME_SUFFIXES = ("_us", "_ms", "_sec", "_seconds", "_ns")

#: Default relative tolerance for counter comparison.
DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class Drift:
    """One metric outside tolerance (or structurally missing)."""

    schema: str
    metric: str
    baseline: float
    fresh: float
    tolerance: float
    kind: str  # "counter" | "gauge" | "missing"

    def as_dict(self) -> dict[str, object]:
        return asdict(self)


def flatten_counters(payload: object, prefix: str = "") -> dict[str, int]:
    """Integer-valued leaves of a bench payload, as dotted keys.

    Bools and timing fields are skipped; nested dicts recurse.
    """
    flat: dict[str, int] = {}
    if not isinstance(payload, dict):
        return flat
    for key in sorted(payload):
        value = payload[key]
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten_counters(value, prefix=f"{dotted}."))
        elif isinstance(value, bool):
            continue
        elif isinstance(value, int) and not dotted.endswith(_TIME_SUFFIXES):
            flat[dotted] = value
    return flat


def representative_counters(schema: str, payload: Mapping[str, object]) -> dict[str, int]:
    """The counter block the schema's gauges are computed from.

    A4: the cache-on run of the E8 mix.  A5: the read-ahead-on cold
    scan of the best-absorbing server (max fault ratio, name-ordered
    ties).  A6: the grouped four-session sweep point the acceptance
    floor is pinned on.  A7: the mmap contender's cold demand-fault
    scan.  A8: the schema-aware codec's update-stream run.
    """
    block: object
    if schema == "A4":
        block = payload.get("on")
    elif schema == "A5":
        servers = payload.get("servers")
        ratios = payload.get("fault_ratios")
        if not isinstance(servers, dict) or not isinstance(ratios, dict):
            return {}
        best = max(sorted(servers), key=lambda name: float(ratios.get(name, 0.0)))
        entry = servers.get(best)
        block = entry.get("on") if isinstance(entry, dict) else None
    elif schema == "A6":
        block = payload.get("s4_on")
    elif schema == "A7":
        entry = payload.get("mmap")
        if not isinstance(entry, dict):
            return {}
        # The bench reports the cold scan's counters under cold_* keys;
        # the gauge reads the raw counter names.
        block = {
            "mapped_reads": entry.get("cold_mapped_reads", 0),
            "page_reads": entry.get("cold_page_reads", 0),
        }
    elif schema == "A8":
        block = payload.get("labf")
    else:
        raise KeyError(f"unknown baseline schema {schema!r}")
    if not isinstance(block, dict):
        return {}
    return {
        key: int(value)
        for key, value in block.items()
        if isinstance(value, int) and not isinstance(value, bool)
    }


def canonicalize(schema: str, payload: Mapping[str, object]) -> dict[str, object]:
    """The committed ``BENCH_<schema>.json`` content for one bench run."""
    if schema not in BASELINE_SCHEMAS:
        raise KeyError(f"unknown baseline schema {schema!r}")
    source = representative_counters(schema, payload)
    gauges = {
        spec.name: round(spec.compute(source), 6)
        for spec in DERIVED_METRICS
        if spec.name in BASELINE_SCHEMAS[schema]
    }
    return {
        "version": BASELINE_VERSION,
        "schema": schema,
        "bench": BASELINE_BENCHES[schema],
        "counters": flatten_counters(dict(payload)),
        "gauges": gauges,
    }


def baseline_path(schema: str, root: str) -> str:
    return os.path.join(root, f"BENCH_{schema}.json")


def results_path(schema: str, results_dir: str) -> str:
    return os.path.join(results_dir, f"{BASELINE_BENCHES[schema]}.json")


def load_json(path: str) -> dict[str, object]:
    with open(path, "r") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    return payload


def dump_json(path: str, payload: Mapping[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def record(schema: str, results_dir: str, out_dir: str) -> str:
    """Canonicalize one bench result into its committed baseline file."""
    payload = load_json(results_path(schema, results_dir))
    path = baseline_path(schema, out_dir)
    dump_json(path, canonicalize(schema, payload))
    return path


def compare(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[Drift], list[str]]:
    """Diff a fresh canonicalized run against a committed baseline.

    Returns ``(drifts, notes)``: drifts fail the comparison; notes are
    informational (new metrics that exist only in the fresh run).
    """
    schema = str(baseline.get("schema", "?"))
    drifts: list[Drift] = []
    notes: list[str] = []

    base_counters = baseline.get("counters")
    fresh_counters = fresh.get("counters")
    base_counters = base_counters if isinstance(base_counters, dict) else {}
    fresh_counters = fresh_counters if isinstance(fresh_counters, dict) else {}
    for name in sorted(base_counters):
        expected = float(base_counters[name])
        if name not in fresh_counters:
            drifts.append(
                Drift(schema, name, expected, 0.0, tolerance, "missing")
            )
            continue
        actual = float(fresh_counters[name])
        band = tolerance * max(1.0, abs(expected))
        if abs(actual - expected) > band:
            drifts.append(
                Drift(schema, name, expected, actual, tolerance, "counter")
            )
    for name in sorted(fresh_counters):
        if name not in base_counters:
            notes.append(f"{schema}: new counter {name} (not in baseline)")

    base_gauges = baseline.get("gauges")
    fresh_gauges = fresh.get("gauges")
    base_gauges = base_gauges if isinstance(base_gauges, dict) else {}
    fresh_gauges = fresh_gauges if isinstance(fresh_gauges, dict) else {}
    for name in sorted(base_gauges):
        expected = float(base_gauges[name])
        band = GAUGE_TOLERANCES.get(name, tolerance)
        if name not in fresh_gauges:
            drifts.append(Drift(schema, name, expected, 0.0, band, "missing"))
            continue
        actual = float(fresh_gauges[name])
        if abs(actual - expected) > band:
            drifts.append(Drift(schema, name, expected, actual, band, "gauge"))
    return drifts, notes


def compare_files(
    baseline_file: str,
    results_dir: str,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> tuple[list[Drift], list[str]]:
    """Compare one committed baseline against the fresh bench results."""
    baseline = load_json(baseline_file)
    schema = baseline.get("schema")
    if not isinstance(schema, str) or schema not in BASELINE_SCHEMAS:
        raise ValueError(f"{baseline_file}: unknown or missing schema")
    fresh = canonicalize(schema, load_json(results_path(schema, results_dir)))
    return compare(baseline, fresh, tolerance=tolerance)
