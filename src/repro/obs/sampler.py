"""Interval sampling: periodic counter snapshots with derived gauges.

The sampler is deliberately dumb about *where* counters come from — it
polls any zero-argument callable returning a counter mapping (a
``StorageStats.snapshot`` bound method, a served ``sample`` op, a
recorded list in a test).  Each poll produces one :class:`Sample`:
the cumulative counters, the increments since the previous poll, and
the registered gauges computed over that interval.  With a sink
attached, every sample is appended as one sorted-JSON line, so a log
from an injected :class:`~repro.obs.clock.ManualClock` run is
byte-identical across replays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Callable, Mapping

from repro.obs.clock import Clock, system_clock
from repro.obs.registry import gauges_from

#: Float fields are rounded before serialization so a JSONL stream is a
#: stable artifact, not a parade of 17-digit reprs.
FLOAT_DIGITS = 6


@dataclass(frozen=True)
class Sample:
    """One interval observation: cumulative counters, interval delta, gauges."""

    seq: int
    t: float                     # clock reading when taken
    dt: float                    # seconds since the previous sample
    counters: dict[str, int]     # cumulative snapshot
    delta: dict[str, int]        # increments over this interval
    gauges: dict[str, float]     # registered gauges over this interval

    def to_json(self) -> str:
        payload = {
            "seq": self.seq,
            "t": round(self.t, FLOAT_DIGITS),
            "dt": round(self.dt, FLOAT_DIGITS),
            "counters": self.counters,
            "delta": self.delta,
            "gauges": {
                name: round(value, FLOAT_DIGITS)
                for name, value in self.gauges.items()
            },
        }
        return json.dumps(payload, sort_keys=True)


def sample_from_snapshots(
    seq: int,
    t: float,
    dt: float,
    current: Mapping[str, int],
    previous: Mapping[str, int] | None = None,
) -> Sample:
    """Build a :class:`Sample` from two cumulative counter snapshots."""
    counters = {name: int(value) for name, value in current.items()}
    if previous is None:
        delta = dict(counters)
    else:
        delta = {
            name: value - int(previous.get(name, 0))
            for name, value in counters.items()
        }
    return Sample(
        seq=seq, t=t, dt=dt, counters=counters, delta=delta,
        gauges=gauges_from(delta),
    )


class IntervalSampler:
    """Polls a counter source into a growing list of :class:`Sample`.

    The caller owns the cadence: each :meth:`sample` call takes one
    observation.  The server's sampling thread calls it on a timer; the
    deterministic tests call it directly with a manual clock.
    """

    def __init__(
        self,
        source: Callable[[], Mapping[str, int]],
        *,
        clock: Clock = system_clock,
        sink: IO[str] | None = None,
    ) -> None:
        self._source = source
        self._clock = clock
        self._sink = sink
        self._last: dict[str, int] | None = None
        self._last_t: float | None = None
        self.samples: list[Sample] = []

    def sample(self) -> Sample:
        """Take one observation now (by the injected clock)."""
        t = self._clock()
        current = self._source()
        dt = 0.0 if self._last_t is None else t - self._last_t
        observation = sample_from_snapshots(
            len(self.samples), t, dt, current, self._last
        )
        self._last = observation.counters
        self._last_t = t
        self.samples.append(observation)
        if self._sink is not None:
            self._sink.write(observation.to_json() + "\n")
            self._sink.flush()
        return observation
