"""Render paths for the observability layer.

:func:`render_sample_table` is **the** render path for registered
gauges — lint rule LF07 checks that every gauge named in
:data:`repro.obs.registry.DERIVED_METRICS` appears in exactly the
render function its spec declares, and in no other.  The table uses
fixed column widths (not :func:`repro.util.fmt.format_table`) so the
live monitor can stream one row per poll and stay aligned with the
header it printed minutes ago.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.sampler import Sample
from repro.util.fmt import format_table


def render_sample_table(samples: Sequence[Sample], title: str | None = None) -> str:
    """Interval samples as a fixed-width table; one line per sample.

    The delta columns are per-interval counter increments; the gauge
    columns are the registered ratios over the same interval.
    """
    columns: tuple[tuple[str, str, int], ...] = (
        ("#", "seq", 4),
        ("dt_s", "dt", 8),
        ("commits", "commits", 8),
        ("units", "sessions_per_group", 8),
        ("majflt", "major_faults", 8),
        ("hit_ratio", "hit_ratio", 10),
        ("cache_hit_ratio", "cache_hit_ratio", 15),
        ("prefetch_absorption", "prefetch_absorption", 19),
        ("coalesce_ratio", "coalesce_ratio", 14),
        ("group_width", "group_width", 11),
        ("commit_stall_ratio", "commit_stall_ratio", 18),
        ("mapped_read_ratio", "mapped_read_ratio", 17),
        ("fast_path_ratio", "fast_path_ratio", 15),
    )
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(name.rjust(width) for name, _, width in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for sample in samples:
        cells: list[str] = []
        for name, key, width in columns:
            if key == "seq":
                cells.append(str(sample.seq).rjust(width))
            elif key == "dt":
                cells.append(f"{sample.dt:.3f}".rjust(width))
            elif key in sample.gauges:
                cells.append(f"{sample.gauges[key]:.3f}".rjust(width))
            else:
                cells.append(str(sample.delta.get(key, 0)).rjust(width))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_phase_histograms(
    histograms: Mapping[str, Mapping[str, object]], title: str | None = None
) -> str:
    """Per-phase duration histograms from a tracer summary."""
    rows: list[Sequence[str]] = []
    for phase in sorted(histograms):
        hist = histograms[phase]
        bounds = list(hist.get("bounds", []))  # type: ignore[arg-type]
        counts = list(hist.get("counts", []))  # type: ignore[arg-type]
        total = int(hist.get("total", 0))  # type: ignore[arg-type]
        shape = " ".join(str(int(c)) for c in counts)
        top = f"<= {float(bounds[-1]):g}s + over" if bounds else ""
        rows.append((phase, str(total), shape, top))
    return format_table(
        ["phase", "units", "bucket counts", "range"],
        rows,
        title=title,
        align_right=(1,),
    )


def render_drift_table(
    drifts: Sequence[Mapping[str, object]], title: str | None = None
) -> str:
    """Baseline-comparison drift rows (see :mod:`repro.obs.baseline`)."""
    if not drifts:
        return (title + "\n" if title else "") + "no drift: all metrics within tolerance"
    rows = [
        (
            str(d.get("schema", "")),
            str(d.get("metric", "")),
            f"{float(d.get('baseline', 0.0)):g}",  # type: ignore[arg-type]
            f"{float(d.get('fresh', 0.0)):g}",  # type: ignore[arg-type]
            f"{float(d.get('tolerance', 0.0)):g}",  # type: ignore[arg-type]
            str(d.get("kind", "")),
        )
        for d in drifts
    ]
    return format_table(
        ["schema", "metric", "baseline", "fresh", "tolerance", "kind"],
        rows,
        title=title,
        align_right=(2, 3, 4),
    )
