"""Transactional object cache with unit-of-work semantics.

Every ``StorageManager.read`` deserializes a full record from page
bytes, and every ``write`` serializes one — even when a logical LabBase
operation touches the same object several times (``record_step`` alone
re-reads the material record for the history append, the most-recent
index update and the state transition).  :class:`ObjectCache` sits
between LabBase and the storage manager and keeps *deserialized* objects
keyed by oid:

* **reads** are served from a bounded LRU of live objects — a hit skips
  the page access *and* the deserialization;
* **writes inside a transaction** are coalesced: the object is marked
  dirty and serialized exactly once, at commit, when the dirty set is
  flushed into the storage manager in **oid order** (a deterministic
  sequence, so the crash-matrix write points stay reproducible);
* **writes outside a transaction** pass straight through — autocommit
  operations keep today's write points and durability.

The cache registers itself with the storage manager
(:meth:`~repro.storage.base.StorageManager.attach_cache`), which calls
back on the events that would otherwise leave the cache stale:

=================  ========================================================
SM event           cache reaction
=================  ========================================================
``begin()``        drain pending writes, enter buffering (unit-of-work) mode
``commit()``       drain (flush dirty objects, oid order) *before* pages go out
``abort()``        invalidate everything — in-memory objects may carry
                   mutations the undo journal just rolled back
``delete(oid)``    evict the oid
``recover()``      invalidate everything (surviving values re-read lazily)
``drop_buffer()``  invalidate everything (cold-cache experiments mean cold)
=================  ========================================================

Cached objects are **shared**, not copied: a reader that mutates a
record it got from the cache and then writes it back hands the cache the
same object it already holds.  That is exactly LabBase's mutate-then-
persist idiom; callers that treat reads as read-only (the documented
contract) are unaffected.  Code that bypasses the cache and calls
``sm.write`` directly must not run while a cache is attached — the
hooks above cover every *other* mutation path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import TransactionError

if TYPE_CHECKING:
    from repro.storage.base import StorageManager
    from repro.storage.stats import StorageStats

#: Default cache capacity in objects.  Sized so the default benchmark
#: database's hot set (materials, buckets, sets, catalog) fits while the
#: cold step records still churn — the same "hot fits, cold doesn't"
#: shape the page-level buffer pool is tuned for.
DEFAULT_CACHE_OBJECTS = 4096


class ObjectCache:
    """Unit-of-work object cache over one storage manager.

    Parameters
    ----------
    sm:
        The storage manager to cache over.  The cache attaches itself;
        call :meth:`close` (or ``sm.detach_cache``) to unhook it.
    capacity:
        Maximum *clean* objects retained, LRU-evicted beyond that.
        ``0`` disables read caching entirely (every read goes to the
        storage manager) while keeping the unit-of-work write path —
        this is ablation A4's "off" setting, and it is what makes the
        cache-on/cache-off byte-identity guarantee hold: both settings
        issue the identical storage-manager write sequence.
    """

    def __init__(
        self, sm: StorageManager, capacity: int = DEFAULT_CACHE_OBJECTS
    ) -> None:
        if capacity < 0:
            raise ValueError("object-cache capacity must be >= 0")
        self._sm = sm
        self.capacity = capacity
        self._clean: OrderedDict[int, object] = OrderedDict()
        self._dirty: dict[int, object] = {}
        self._in_txn = False
        self._flush_listener: Callable[[], None] | None = None
        self._discard_listener: Callable[[], None] | None = None
        sm.attach_cache(self)

    # -- introspection -------------------------------------------------------

    @property
    def storage(self) -> StorageManager:
        """The underlying storage manager."""
        return self._sm

    @property
    def stats(self) -> StorageStats:
        """The storage manager's counter block (cache counters included)."""
        return self._sm.stats

    @property
    def resident_objects(self) -> int:
        return len(self._clean) + len(self._dirty)

    @property
    def dirty_objects(self) -> int:
        return len(self._dirty)

    def dirty_oid_set(self) -> frozenset[int]:
        """The oids with buffered (dirty) entries.

        Sessions diff this around an operation to attribute the dirty
        entries the operation created, so a departing client's claims
        can be drained or invalidated precisely.
        """
        return frozenset(self._dirty)

    @property
    def in_transaction(self) -> bool:
        return self._in_txn

    # -- object API (mirrors StorageManager) ---------------------------------

    def read(self, oid: int) -> object:
        """The live object for ``oid`` — dirty version first, then LRU,
        then the storage manager (a miss admits the object)."""
        if oid in self._dirty:
            self._sm.stats.cache_hits += 1
            return self._dirty[oid]
        if oid in self._clean:
            self._clean.move_to_end(oid)
            self._sm.stats.cache_hits += 1
            return self._clean[oid]
        obj = self._sm.read(oid)
        self._sm.stats.cache_misses += 1
        self._admit(oid, obj)
        return obj

    def peek_dirty(self, oid: int) -> object | None:
        """The unit's buffered value for ``oid``, or ``None``.

        Unlike :meth:`read` this touches no counters and no LRU state:
        it serves bookkeeping *within* the unit (the commit-batched
        most-recent install re-visits objects the unit itself already
        wrote), which is not a logical object access.
        """
        return self._dirty.get(oid)

    def write(self, oid: int, obj: object) -> None:
        """Record a new value for ``oid``.

        Inside a transaction the write is buffered (a repeat write to the
        same oid is *coalesced*: the earlier value is never serialized);
        outside one it passes straight through to the storage manager.
        """
        if self._in_txn:
            if oid in self._dirty:
                self._sm.stats.cache_coalesced += 1
            self._dirty[oid] = obj
            self._clean.pop(oid, None)
        else:
            self._sm.write(oid, obj)
            self._admit(oid, obj)

    def allocate_write(self, obj: object, segment: str | None = None) -> int:
        """Allocate eagerly (oid and page placement are assigned now, so
        allocation order — and therefore the on-disk layout — is
        identical with and without buffering) and cache the object."""
        oid = self._sm.allocate_write(obj, segment=segment)
        self._admit(oid, obj)
        return oid

    def delete(self, oid: int) -> None:
        self._dirty.pop(oid, None)
        self._clean.pop(oid, None)
        self._sm.delete(oid)

    def exists(self, oid: int) -> bool:
        return self._sm.exists(oid)

    def oids(self) -> Iterator[int]:
        # Allocation is eager, so the SM's directory is always the full
        # oid universe even mid-transaction.
        return self._sm.oids()

    # -- roots ---------------------------------------------------------------

    def set_root(self, name: str, oid: int) -> None:
        self._sm.set_root(name, oid)

    def get_root(self, name: str) -> int | None:
        return self._sm.get_root(name)

    # -- transactions --------------------------------------------------------
    #
    # Pure forwards: the storage manager's begin/commit/abort notify every
    # attached cache (drain / drain / invalidate), so going through the SM
    # directly is exactly as safe as going through the handle.

    def begin(self) -> None:
        self._sm.begin()

    def commit(self) -> None:
        self._sm.commit()

    def abort(self) -> None:
        self._sm.abort()

    # -- unit-of-work hooks (the served, group-commit path) ------------------
    #
    # A server session's unit of work buffers its writes exactly like a
    # storage transaction does, but *without* opening one: the storage
    # manager's undo journal is process-wide and cannot unwind one
    # session out of an interleaved group.  Instead each unit drains at
    # its own end (preserving the per-unit SM write sequence, oid
    # order), and only the page flush / sync / checkpoint is deferred
    # to the group-commit close.

    def begin_unit(self) -> None:
        """Enter buffering mode for one session's unit of work."""
        if self._in_txn:
            raise TransactionError("a unit of work is already buffering")
        self._in_txn = True

    def end_unit(self) -> int:
        """Drain the unit's writes (oid order) and leave buffering mode.

        Returns the number of objects written to the storage manager.
        """
        written = self.flush()
        self._in_txn = False
        return written

    def discard_unit(self) -> int:
        """Drop a failed unit's buffered writes and leave buffering mode.

        Returns the number of writes discarded.  Nothing reaches the
        storage manager — the unit never happened.
        """
        if self._discard_listener is not None:
            self._discard_listener()
        dropped = len(self._dirty)
        self._dirty.clear()
        self._in_txn = False
        return dropped

    # -- unit listeners ------------------------------------------------------

    def set_unit_listeners(
        self,
        flush: Callable[[], None] | None = None,
        discard: Callable[[], None] | None = None,
    ) -> None:
        """Register callbacks around the unit-of-work boundary.

        ``flush`` fires at the start of every :meth:`flush`, *before*
        the dirty set is drained — writes the listener issues join the
        same oid-ordered drain.  LabBase uses it to install its
        commit-batched most-recent index winners so they land in the
        exact write sequence the unbatched path would have produced.
        ``discard`` fires whenever buffered state is dropped without
        writing (:meth:`discard_unit`, :meth:`invalidate`), so the
        listener's pending state dies with the dirty entries it
        belonged to.
        """
        self._flush_listener = flush
        self._discard_listener = discard

    # -- cache maintenance ---------------------------------------------------

    def flush(self) -> int:
        """Serialize and write every dirty object, in oid order.

        Returns the number of objects written.  Idempotent; called by
        the storage manager's commit/begin hooks.  The flush listener
        (if any) runs first, so state it installs drains in the same
        pass.
        """
        if self._flush_listener is not None:
            self._flush_listener()
        if not self._dirty:
            return 0
        dirty, self._dirty = self._dirty, {}
        for oid in sorted(dirty):
            obj = dirty[oid]
            self._sm.write(oid, obj)
            self._admit(oid, obj)
        return len(dirty)

    def evict(self, oid: int, write_back: bool = True) -> None:
        """Drop one oid from the cache, flushing it first if dirty.

        Sessions use this on lock hand-off: the next reader must fetch
        the object through the storage manager, as a real page-server
        client would after another client's update.
        """
        if oid in self._dirty:
            obj = self._dirty.pop(oid)
            if write_back:
                self._sm.write(oid, obj)
        self._clean.pop(oid, None)

    def invalidate(self) -> None:
        """Drop everything, dirty included, without writing.

        Used after abort/recover, where in-memory objects may hold
        states the storage manager just rolled back.
        """
        if self._discard_listener is not None:
            self._discard_listener()
        self._dirty.clear()
        self._clean.clear()

    def close(self) -> None:
        """Flush pending writes and detach from the storage manager."""
        self.flush()
        self._sm.detach_cache(self)

    def _admit(self, oid: int, obj: object) -> None:
        if self.capacity <= 0:
            return
        self._clean[oid] = obj
        self._clean.move_to_end(oid)
        while len(self._clean) > self.capacity:
            self._clean.popitem(last=False)
            self._sm.stats.cache_evictions += 1

    # -- storage-manager hook callbacks --------------------------------------
    #
    # Called by PagedStorageManager at transaction boundaries.  Public:
    # they are the cross-module contract between the manager and its
    # attached caches, not cache internals.

    def on_sm_begin(self) -> None:
        self._in_txn = True

    def on_sm_drain(self) -> None:
        self.flush()

    def on_sm_txn_end(self) -> None:
        self._in_txn = False

    def on_sm_invalidate(self) -> None:
        self.invalidate()

    def on_sm_delete(self, oid: int) -> None:
        self._dirty.pop(oid, None)
        self._clean.pop(oid, None)
