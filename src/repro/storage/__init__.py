"""Simulated object storage managers (the benchmark's substrates).

The server versions — the paper's Section 10 five plus the mmap-backed
sixth — map to:

================  ============================================
server version    class
================  ============================================
OStore            :class:`~repro.storage.objectstore.ObjectStoreSM`
Texas+TC          :class:`~repro.storage.clustered.TexasTCSM`
Texas             :class:`~repro.storage.texas.TexasSM`
OStore-mm         :class:`~repro.storage.memstore.OStoreMM`
Texas-mm          :class:`~repro.storage.memstore.TexasMM`
mmap              :class:`~repro.storage.mmapstore.MMapStoreSM`
================  ============================================

All implement the :class:`~repro.storage.contract.StorageManager` API,
so LabBase (and any application) runs unchanged over each.  The set is
open: each version registers itself with
:mod:`repro.storage.registry`, and everything above the storage layer
(``SERVER_ORDER``, the harness, the CLI) derives the list from there.
"""

from repro.errors import UnknownBackendError
from repro.storage.base import PagedStorageManager, StorageManager
from repro.storage.buffer import (
    DEFAULT_POOL_PAGES,
    DEFAULT_READAHEAD_PAGES,
    BufferPool,
)
from repro.storage.clustered import TexasTCSM
from repro.storage.contract import CacheHooks
from repro.storage.faultinject import (
    FaultInjector,
    FaultyMMapPageFile,
    FaultyPageFile,
)
from repro.storage.locks import LockManager, LockMode
from repro.storage.memstore import MainMemorySM, OStoreMM, TexasMM
from repro.storage.mmapstore import MMapStoreSM
from repro.storage.objcache import DEFAULT_CACHE_OBJECTS, ObjectCache
from repro.storage.objectstore import ObjectStoreSM
from repro.storage.integrity import IntegrityReport, verify
from repro.storage.page import PAGE_SIZE, Page, exact_charge, power_of_two_charge
from repro.storage.registry import (
    BackendInfo,
    backend,
    backend_names,
    backends,
    register_backend,
)
from repro.storage.report import SegmentStats, segment_report, segment_stats
from repro.storage.segment import DEFAULT_SEGMENT, Segment
from repro.storage.stats import StorageStats
from repro.storage.texas import TexasSM

__all__ = [
    "StorageManager",
    "CacheHooks",
    "PagedStorageManager",
    "ObjectStoreSM",
    "TexasSM",
    "TexasTCSM",
    "MainMemorySM",
    "OStoreMM",
    "TexasMM",
    "MMapStoreSM",
    "BackendInfo",
    "register_backend",
    "backend",
    "backends",
    "backend_names",
    "UnknownBackendError",
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "DEFAULT_READAHEAD_PAGES",
    "LockManager",
    "LockMode",
    "Page",
    "PAGE_SIZE",
    "Segment",
    "DEFAULT_SEGMENT",
    "StorageStats",
    "ObjectCache",
    "DEFAULT_CACHE_OBJECTS",
    "verify",
    "IntegrityReport",
    "FaultInjector",
    "FaultyPageFile",
    "FaultyMMapPageFile",
    "segment_stats",
    "segment_report",
    "SegmentStats",
    "exact_charge",
    "power_of_two_charge",
]
