"""Simulated object storage managers (the benchmark's substrates).

The five *server versions* of the paper's Section 10 map to:

================  ============================================
paper version     class
================  ============================================
OStore            :class:`~repro.storage.objectstore.ObjectStoreSM`
Texas             :class:`~repro.storage.texas.TexasSM`
Texas+TC          :class:`~repro.storage.clustered.TexasTCSM`
OStore-mm         :class:`~repro.storage.memstore.OStoreMM`
Texas-mm          :class:`~repro.storage.memstore.TexasMM`
================  ============================================

All implement the :class:`~repro.storage.base.StorageManager` API, so
LabBase (and any application) runs unchanged over each.
"""

from repro.storage.base import PagedStorageManager, StorageManager
from repro.storage.buffer import (
    DEFAULT_POOL_PAGES,
    DEFAULT_READAHEAD_PAGES,
    BufferPool,
)
from repro.storage.clustered import TexasTCSM
from repro.storage.faultinject import FaultInjector, FaultyPageFile
from repro.storage.locks import LockManager, LockMode
from repro.storage.memstore import MainMemorySM, OStoreMM, TexasMM
from repro.storage.objcache import DEFAULT_CACHE_OBJECTS, ObjectCache
from repro.storage.objectstore import ObjectStoreSM
from repro.storage.integrity import IntegrityReport, verify
from repro.storage.page import PAGE_SIZE, Page, exact_charge, power_of_two_charge
from repro.storage.report import SegmentStats, segment_report, segment_stats
from repro.storage.segment import DEFAULT_SEGMENT, Segment
from repro.storage.stats import StorageStats
from repro.storage.texas import TexasSM

__all__ = [
    "StorageManager",
    "PagedStorageManager",
    "ObjectStoreSM",
    "TexasSM",
    "TexasTCSM",
    "MainMemorySM",
    "OStoreMM",
    "TexasMM",
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "DEFAULT_READAHEAD_PAGES",
    "LockManager",
    "LockMode",
    "Page",
    "PAGE_SIZE",
    "Segment",
    "DEFAULT_SEGMENT",
    "StorageStats",
    "ObjectCache",
    "DEFAULT_CACHE_OBJECTS",
    "verify",
    "IntegrityReport",
    "FaultInjector",
    "FaultyPageFile",
    "segment_stats",
    "segment_report",
    "SegmentStats",
    "exact_charge",
    "power_of_two_charge",
]
