"""Per-segment storage reports.

The paper's locality argument rests on LabBase's four-segment layout —
"three of which contain relatively small amounts of frequently accessed
data and one of which contains a relatively large amount of infrequently
accessed data".  :func:`segment_report` makes that layout visible for
any page store: pages, bytes, records and fill factor per segment, so
examples and the E5 artefact can *show* the hot/cold split instead of
asserting it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.base import PagedStorageManager
from repro.storage.page import PAGE_HEADER_BYTES, PAGE_SIZE
from repro.util.fmt import format_bytes, format_table


@dataclass(frozen=True)
class SegmentStats:
    """Aggregate statistics for one segment."""

    name: str
    pages: int
    records: int
    used_bytes: int

    @property
    def allocated_bytes(self) -> int:
        return self.pages * PAGE_SIZE

    @property
    def fill_factor(self) -> float:
        """Charged bytes over allocated bytes (excluding page headers)."""
        if self.pages == 0:
            return 0.0
        capacity = self.pages * (PAGE_SIZE - PAGE_HEADER_BYTES)
        payload = self.used_bytes - self.pages * PAGE_HEADER_BYTES
        return payload / capacity if capacity else 0.0


def segment_stats(sm: PagedStorageManager) -> list[SegmentStats]:
    """Per-segment aggregates, largest segment first."""
    stats = []
    for segment in sm.segments():
        pages = 0
        records = 0
        used = 0
        for page_id in segment.page_ids:
            page = sm.fetch_page(page_id)
            pages += 1
            records += page.record_count
            used += page.used_bytes
        stats.append(
            SegmentStats(
                name=segment.name, pages=pages, records=records, used_bytes=used
            )
        )
    stats.sort(key=lambda s: s.allocated_bytes, reverse=True)
    return stats


def segment_report(sm: PagedStorageManager, title: str | None = None) -> str:
    """A rendered table of the store's segment layout."""
    rows = []
    for stats in segment_stats(sm):
        rows.append([
            stats.name,
            stats.pages,
            stats.records,
            format_bytes(stats.allocated_bytes),
            f"{stats.fill_factor:.0%}",
        ])
    return format_table(
        ["segment", "pages", "records", "allocated", "fill"],
        rows,
        title=title or f"Segment layout of {sm.name}",
        align_right=(1, 2, 3, 4),
    )


def stats_report(
    counters: dict[str, int],
    gauges: dict[str, float],
    title: str | None = None,
) -> str:
    """Counters plus derived gauges, one compact table.

    Data-driven on purpose: the gauge *names* come from the caller
    (usually :func:`repro.obs.registry.gauges_from`), so this renderer
    never hard-codes a registered metric — the one-render-path rule
    (LF07) points at :mod:`repro.obs.render`, not here.  Zero counters
    are elided; gauges always show.
    """
    rows: list[list[object]] = [
        [name, str(count)] for name, count in counters.items() if count
    ]
    rows.extend([name, f"{value:.3f}"] for name, value in gauges.items())
    return format_table(
        ["metric", "value"],
        rows,
        title=title or "storage counters",
        align_right=(1,),
    )
