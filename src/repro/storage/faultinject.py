"""Deterministic fault injection for crash-consistency testing.

A :class:`FaultInjector` counts the disk layer's *write points* — every
page write and every metadata write — and kills the store at a chosen
one, optionally leaving a half-written ("torn") image behind, the way a
real power cut tears a sector-aligned write in two.  Because
``BufferPool.flush_dirty`` writes in page-id order, the same workload
always produces the same write sequence, so ``crash_after_writes=N``
reproduces the exact same crash every run.

Usage::

    injector = FaultInjector(crash_after_writes=17, torn_write=True)
    sm = ObjectStoreSM(path, checkpoint_every=1, fault_injector=injector)
    with pytest.raises(InjectedCrashError):
        run_workload(sm)
    # reopen plain and check: last checkpoint state, or loud failure
    reopened = ObjectStoreSM(path)

Counting with ``crash_after_writes=None`` never crashes — run the
workload once that way to learn how many write points it has, then sweep
``range(total)`` for the crash matrix (see tests/test_storage_crashmatrix.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InjectedCrashError, StorageError
from repro.storage.disk import PAGE_SIZE, MMapPageFile, PageFile, PageImage

#: A torn page write keeps this many bytes of the new image; the rest is
#: whatever was there before (or zeroes, for a fresh page).
TORN_WRITE_BYTES = PAGE_SIZE // 2


@dataclass
class FaultInjector:
    """Shared crash schedule for one :class:`FaultyPageFile`.

    ``crash_after_writes=N`` kills the store at write point N (0-based:
    N=0 dies before any write lands).  ``torn_write`` makes the fatal
    page write leave a half-new half-old image instead of nothing.
    ``None`` never crashes; ``writes_seen`` then reports the workload's
    total write points.
    """

    crash_after_writes: int | None = None
    torn_write: bool = False
    writes_seen: int = 0
    dead: bool = False

    def on_write(self) -> bool:
        """Count a write point; True when this one is the fatal one."""
        self.check_alive()
        if (
            self.crash_after_writes is not None
            and self.writes_seen >= self.crash_after_writes
        ):
            self.dead = True
            return True
        self.writes_seen += 1
        return False

    def check_alive(self) -> None:
        if self.dead:
            raise InjectedCrashError(
                f"store crashed at write point {self.writes_seen}"
            )


class FaultyPageFile(PageFile):
    """A :class:`PageFile` that dies on schedule.

    Page writes and metadata writes are both write points.  A fatal
    *page* write either loses the image entirely or — in torn mode —
    lands the first :data:`TORN_WRITE_BYTES` of the newly stamped image
    over the old page, producing a checksum mismatch the integrity
    layer must detect.  A fatal *metadata* write leaves the temp file
    behind but never renames it, so the old blob survives (this is what
    the atomic-rename protocol guarantees; the injector cannot tear the
    blob itself).
    """

    def __init__(self, path: str | None, injector: FaultInjector) -> None:
        super().__init__(path)
        self.injector = injector

    def write_page(self, page_id: int, image: bytes) -> None:
        if self.injector.on_write():
            if self.injector.torn_write:
                self._tear_page(page_id, image)
            self.injector.check_alive()
        super().write_page(page_id, image)

    def write_pages(self, start_page_id: int, images: list[bytes]) -> None:
        """Decompose a vectored write into per-page write points.

        A real power cut can land between any two sector-aligned page
        writes of one batch, so the crash schedule must expose the same
        write points whether the commit path batches or not — that is
        what keeps ``crash_after_writes=N`` meaning the same crash with
        vectored commit I/O on or off.
        """
        for offset, image in enumerate(images):
            self.write_page(start_page_id + offset, image)

    def _tear_page(self, page_id: int, image: bytes) -> None:
        """Land the front half of the stamped image over the old page."""
        stamped = self._stamp(image)
        try:
            raw = self._raw_image(page_id)
        except StorageError:
            raw = None
        # Materialise the old image: a mapped backend hands back a view
        # of the very buffer _put_image is about to overwrite.
        old_raw = b"\0" * PAGE_SIZE if raw is None else bytes(raw)
        self._put_image(
            page_id, stamped[:TORN_WRITE_BYTES] + old_raw[TORN_WRITE_BYTES:]
        )

    def write_meta(self, meta: dict) -> int:
        if self.injector.on_write():
            # Crash mid-protocol: the temp file may exist (possibly
            # truncated) but the rename never happened.
            self.injector.check_alive()
        return super().write_meta(meta)

    def read_page(self, page_id: int) -> PageImage:
        self.injector.check_alive()
        return super().read_page(page_id)

    def read_pages(self, start_page_id: int, count: int) -> list[PageImage | None]:
        self.injector.check_alive()
        return super().read_pages(start_page_id, count)

    def read_meta(self) -> dict | None:
        self.injector.check_alive()
        return super().read_meta()


class FaultyMMapPageFile(FaultyPageFile, MMapPageFile):
    """The mmap disk layer under the same deterministic crash schedule.

    Pure method composition: :class:`FaultyPageFile` contributes the
    write-point counting, per-page decomposition of vectored writes and
    torn-write logic; the MRO routes every primitive it calls
    (``_raw_image``, ``_put_image``, the reads) to
    :class:`MMapPageFile`.  The crash matrix therefore sweeps the mmap
    backend with bit-for-bit the same write-point sequence as the
    buffered one.
    """
