"""The simulated disk: a page file plus a metadata side file.

``PageFile`` stores fixed-size pages at ``page_id * PAGE_SIZE`` offsets in
a single file, exactly like the 1996 stores' database files, so the
paper's ``size (bytes)`` column is simply the file's allocated length.
When constructed without a path it keeps pages in a dict — used by tests
and by benchmark configurations that only care about fault counts, not
real I/O latency.

Metadata (object directory, segment table, roots, allocator high-water
mark) is persisted on commit as one pickled blob in a ``.meta`` side
file.  Real persistent stores keep this mapping in swizzled virtual
addresses (Texas) or internal B-trees (ObjectStore); modelling it as a
side file keeps both simulated managers identical in this respect while
still counting the bytes toward database size.

Crash consistency
-----------------

Two mechanisms make a crash detectable instead of silently corrupting:

* The metadata blob is written atomically (temp file + fsync + rename),
  so a crash mid-write leaves either the old blob or the new one.
* Every page image carries a 16-byte trailer in its zero-padding:
  a magic marker, the **commit epoch** current when the page was
  written, and a CRC-32 of the page body.  The storage manager stamps
  the same epoch into the metadata blob at each checkpoint, so on
  reopen a page "from the future" (flushed by a commit the checkpoint
  never heard of) or a torn page (checksum mismatch, e.g. half a write)
  is detected — see ``repro.storage.integrity``.

The trailer is disk-level bookkeeping: callers write images whose last
``PAGE_TRAILER_BYTES`` are zero (``Page.to_bytes`` guarantees this) and
read back exactly what they wrote, trailer bytes zeroed again.
"""

from __future__ import annotations

import mmap
import os
import pickle
import struct
import zlib

from repro.errors import StorageError
from repro.storage.page import PAGE_SIZE, PAGE_TRAILER_BYTES

#: What a page read yields.  The buffered :class:`PageFile` returns
#: ``bytes`` copies; the memory-mapped :class:`MMapPageFile` returns
#: zero-copy ``memoryview`` slices of the map.  Consumers (pickle,
#: ``zlib.crc32``, ``struct.unpack``, slicing) accept either.
PageImage = bytes | memoryview

#: A hole page: the image a never-written page reads back as in file mode.
_ZERO_PAGE = b"\0" * PAGE_SIZE

#: Trailer layout: 4-byte magic, then packed (epoch: u64, crc32: u32).
PAGE_TRAILER_MAGIC = b"LBF1"
_EPOCH_CRC = struct.Struct("<QI")

_BODY_BYTES = PAGE_SIZE - PAGE_TRAILER_BYTES


class PageFile:
    """Page-granular storage backed by a real file or by memory."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._mem: dict[int, bytes] = {}
        self._page_count = 0
        self._file = None
        #: Commit epoch stamped into the trailer of every page written.
        #: The storage manager advances it at each metadata checkpoint.
        self.epoch = 1
        if path is not None:
            # "x+b" would refuse reopening; support both create and reopen.
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
            size = os.path.getsize(path)
            if size % PAGE_SIZE:
                raise StorageError(
                    f"{path}: size {size} is not a multiple of the page size"
                )
            self._page_count = size // PAGE_SIZE

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def size_bytes(self) -> int:
        return self._page_count * PAGE_SIZE

    # -- trailer plumbing -----------------------------------------------------

    def _stamp(self, image: bytes) -> bytes:
        """Install the commit-epoch trailer in the image's reserve bytes."""
        body = image[:_BODY_BYTES]
        return body + PAGE_TRAILER_MAGIC + _EPOCH_CRC.pack(
            self.epoch, zlib.crc32(body)
        )

    @staticmethod
    def _check_image(page_id: int, raw: PageImage) -> tuple[bytes, int]:
        """Validate a stamped image; returns (caller image, epoch).

        Raises :class:`StorageError` for a missing trailer or a checksum
        mismatch — the signatures of a torn or interrupted write.
        """
        body, trailer = bytes(raw[:_BODY_BYTES]), raw[_BODY_BYTES:]
        if trailer[:4] != PAGE_TRAILER_MAGIC:
            raise StorageError(
                f"page {page_id} has no valid trailer (torn or corrupt write)"
            )
        epoch, crc = _EPOCH_CRC.unpack(trailer[4:])
        if zlib.crc32(body) != crc:
            raise StorageError(f"page {page_id} is torn (checksum mismatch)")
        return body + b"\0" * PAGE_TRAILER_BYTES, epoch

    def _raw_image(self, page_id: int) -> PageImage | None:
        """The stamped on-disk image, or None for a never-written hole."""
        if page_id >= self._page_count:
            raise StorageError(f"page {page_id} beyond end of store")
        if self._file is None:
            return self._mem.get(page_id)
        self._file.seek(page_id * PAGE_SIZE)
        raw = self._file.read(PAGE_SIZE)
        if len(raw) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_id}")
        if raw == _ZERO_PAGE:
            return None
        return raw

    def _put_image(self, page_id: int, stamped: bytes) -> None:
        """Backend write of a full stamped image (no validation)."""
        if self._file is None:
            self._mem[page_id] = stamped
        else:
            if page_id > self._page_count:
                # Writing past the end: zero-fill the gap explicitly so
                # hole pages are well-defined on every filesystem.
                self._file.seek(self._page_count * PAGE_SIZE)
                self._file.write(
                    b"\0" * ((page_id - self._page_count) * PAGE_SIZE)
                )
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(stamped)
        if page_id >= self._page_count:
            self._page_count = page_id + 1

    # -- page I/O -------------------------------------------------------------

    def read_page(self, page_id: int) -> PageImage:
        """Read one page image; raises if the page was never written.

        Both backends raise the same ``StorageError`` for a hole page:
        in file mode a never-written page in the zero-filled gap left by
        a past-the-end write reads back as all zeroes, which no stamped
        page image can be.  A page that fails trailer validation (torn
        write) also raises rather than returning garbage.
        """
        raw = self._raw_image(page_id)
        if raw is None:
            raise StorageError(f"page {page_id} was never written")
        image, _epoch = self._check_image(page_id, raw)
        return image

    def read_page_epoch(self, page_id: int) -> int | None:
        """The commit epoch a page was written at, or None for a hole.

        Raises :class:`StorageError` when the page is torn.
        """
        raw = self._raw_image(page_id)
        if raw is None:
            return None
        _image, epoch = self._check_image(page_id, raw)
        return epoch

    def read_pages(self, start_page_id: int, count: int) -> list[PageImage | None]:
        """Vectored read: ``count`` contiguous pages in one backend transfer.

        Unlike :meth:`read_page`, hole (never-written) pages come back as
        ``None`` rather than raising — a speculative read-ahead batch may
        legitimately cross a hole, and the caller skips it.  A torn page
        (trailer or checksum failure) still raises, and so does a range
        reaching beyond the end of the store; read-ahead callers clamp
        the range and treat the error as "abandon the batch".
        """
        if count < 0:
            raise StorageError(f"negative page count {count}")
        if start_page_id < 0 or start_page_id + count > self._page_count:
            raise StorageError(
                f"pages [{start_page_id}, {start_page_id + count}) reach "
                "beyond end of store"
            )
        if self._file is None:
            raws = [
                self._mem.get(page_id)
                for page_id in range(start_page_id, start_page_id + count)
            ]
        else:
            self._file.seek(start_page_id * PAGE_SIZE)
            blob = self._file.read(count * PAGE_SIZE)
            if len(blob) != count * PAGE_SIZE:
                raise StorageError(
                    f"short read on pages [{start_page_id}, "
                    f"{start_page_id + count})"
                )
            raws = [
                None if raw == _ZERO_PAGE else raw
                for raw in (
                    blob[i * PAGE_SIZE:(i + 1) * PAGE_SIZE] for i in range(count)
                )
            ]
        images: list[PageImage | None] = []
        for offset, raw in enumerate(raws):
            if raw is None:
                images.append(None)
            else:
                image, _epoch = self._check_image(start_page_id + offset, raw)
                images.append(image)
        return images

    def _require_writable_image(self, page_id: int, image: bytes) -> None:
        if len(image) != PAGE_SIZE:
            raise StorageError(
                f"page image must be exactly {PAGE_SIZE} bytes, got {len(image)}"
            )
        if image[_BODY_BYTES:] != b"\0" * PAGE_TRAILER_BYTES:
            raise StorageError(
                f"page {page_id}: the last {PAGE_TRAILER_BYTES} bytes are "
                "reserved for the commit-epoch trailer and must be zero"
            )

    def write_page(self, page_id: int, image: bytes) -> None:
        self._require_writable_image(page_id, image)
        self._put_image(page_id, self._stamp(image))

    def write_pages(self, start_page_id: int, images: list[bytes]) -> None:
        """Vectored write: contiguous page images in one backend transfer.

        Byte-for-byte equivalent to calling :meth:`write_page` once per
        image in ascending page-id order — same stamps, same trailer,
        same resulting file — so commit batching cannot change what ends
        up on disk, only how many transfers carry it there.
        """
        if not images:
            return
        for offset, image in enumerate(images):
            self._require_writable_image(start_page_id + offset, image)
        stamped = [self._stamp(image) for image in images]
        if self._file is None:
            for offset, item in enumerate(stamped):
                self._mem[start_page_id + offset] = item
        else:
            if start_page_id > self._page_count:
                # Zero-fill the gap explicitly, exactly like write_page,
                # so hole pages stay well-defined on every filesystem.
                self._file.seek(self._page_count * PAGE_SIZE)
                self._file.write(
                    b"\0" * ((start_page_id - self._page_count) * PAGE_SIZE)
                )
            self._file.seek(start_page_id * PAGE_SIZE)
            self._file.write(b"".join(stamped))
        if start_page_id + len(images) > self._page_count:
            self._page_count = start_page_id + len(images)

    def clear_page(self, page_id: int) -> None:
        """Reset a page to never-written (recovery discards torn pages)."""
        if page_id >= self._page_count:
            return
        if self._file is None:
            self._mem.pop(page_id, None)
        else:
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(_ZERO_PAGE)

    def epoch_issues(self, max_epoch: int) -> list[str]:
        """Scan every page for torn images and epochs beyond ``max_epoch``.

        Used on reopen (against the checkpoint's epoch) to detect
        commits the metadata never heard of, and by ``verify`` (against
        the current epoch) to detect torn pages.
        """
        issues: list[str] = []
        for page_id in range(self._page_count):
            try:
                epoch = self.read_page_epoch(page_id)
            except StorageError as exc:
                issues.append(str(exc))
                continue
            if epoch is not None and epoch > max_epoch:
                issues.append(
                    f"page {page_id} stamped commit epoch {epoch} > "
                    f"checkpoint epoch {max_epoch} (commits after the last "
                    "checkpoint, or a stale metadata blob)"
                )
        return issues

    def sync(self) -> None:
        """Flush file buffers (no-op in memory mode)."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- metadata side file ---------------------------------------------------

    def _meta_path(self) -> str | None:
        return None if self.path is None else self.path + ".meta"

    def write_meta(self, meta: dict) -> int:
        """Persist the metadata blob atomically; returns bytes written.

        The blob is written to a ``.meta.tmp`` side file, fsync'd, then
        renamed over the ``.meta`` file, so a crash at any point leaves
        either the old blob or the new one — never a truncated blob that
        would make the store look freshly created (or fail to unpickle)
        on reopen.

        A blob identical to the last one this handle wrote is skipped
        (the durable copy is already that blob) and reported as ``0``
        bytes written — checkpoint-heavy read-mostly periods then cost
        no metadata I/O.  ``meta_size_bytes`` still reports the blob's
        size either way.
        """
        blob = pickle.dumps(meta, protocol=4)
        self._meta_size = len(blob)
        if blob == getattr(self, "_last_meta_blob", None):
            return 0
        meta_path = self._meta_path()
        if meta_path is None:
            self._mem_meta = blob
        else:
            tmp_path = meta_path + ".tmp"
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, meta_path)
        self._last_meta_blob = blob
        return len(blob)

    def read_meta(self) -> dict | None:
        """Load the metadata blob, or None if none was ever written.

        A blob that exists but does not unpickle raises
        :class:`StorageError` — a damaged store must fail loudly rather
        than masquerade as a fresh one.
        """
        meta_path = self._meta_path()
        if meta_path is None:
            blob = getattr(self, "_mem_meta", None)
            if blob is None:
                return None
        else:
            if not os.path.exists(meta_path):
                return None
            with open(meta_path, "rb") as handle:
                blob = handle.read()
        try:
            return pickle.loads(blob)
        # A half-written or bit-flipped blob raises arbitrary unpickling
        # errors; all of them mean the same thing — corrupt metadata.
        except Exception as exc:  # lint: ignore[LF06]
            raise StorageError(
                f"{meta_path or '<memory>'}: corrupt metadata blob: {exc}"
            ) from exc

    @property
    def meta_size_bytes(self) -> int:
        return getattr(self, "_meta_size", 0)


#: Pages per map chunk (1024 * 4 KiB = 4 MiB).  A multiple of every
#: platform's ``mmap.ALLOCATIONGRANULARITY``, so chunk offsets are always
#: legal map offsets.
MMAP_CHUNK_PAGES = 1024

_CHUNK_BYTES = MMAP_CHUNK_PAGES * PAGE_SIZE


class MMapPageFile(PageFile):
    """Page storage served from memory-mapped chunks of the page file.

    Reads are **zero-copy**: :meth:`read_page` and :meth:`read_pages`
    validate the trailer in place and hand back ``memoryview`` slices of
    the map instead of ``bytes`` copies.  A returned view is the *whole
    stamped page* — the trailer bytes are live (magic, epoch, CRC)
    rather than zeroed as in :class:`PageFile`; record decoding ignores
    everything past the pickle STOP opcode, and the integrity layer
    reads epochs through :meth:`read_page_epoch`, so no consumer sees
    the difference.

    The file is mapped in fixed-size chunks (:data:`MMAP_CHUNK_PAGES`
    pages) that are **never resized**: resizing would raise
    ``BufferError`` while any exported view is alive.  Growth extends
    the file to the next chunk boundary and maps the new chunk; the one
    partial map a reopen of a non-chunk-aligned file creates is retired
    (kept alive for its exported views — ``MAP_SHARED`` keeps it
    coherent with the full chunk map that replaces it) rather than
    closed.  :meth:`close` truncates the file back to
    ``page_count * PAGE_SIZE``, so a cleanly closed store is
    byte-identical to one written by :class:`PageFile`; only a crash
    leaves the chunk padding, which reopens as trailing hole pages.

    Without a path, chunks are anonymous maps — the memory-mode twin,
    like :class:`PageFile`'s dict.
    """

    def __init__(self, path: str | None = None) -> None:
        super().__init__(path)
        #: Full- or (last entry, reopen only) partial-chunk maps.
        self._maps: list[mmap.mmap] = []
        #: Pages covered by each map; only the last may be short.
        self._map_pages: list[int] = []
        #: Partial maps displaced by growth, kept alive for exported views.
        self._retired: list[mmap.mmap] = []
        if self._file is not None and self._page_count:
            size = self._page_count * PAGE_SIZE
            full, rem = divmod(size, _CHUNK_BYTES)
            for index in range(full):
                self._maps.append(
                    mmap.mmap(
                        self._file.fileno(),
                        _CHUNK_BYTES,
                        offset=index * _CHUNK_BYTES,
                    )
                )
                self._map_pages.append(MMAP_CHUNK_PAGES)
            if rem:
                # Map exactly what exists: padding the file here would
                # modify a store we may only be verifying.
                self._maps.append(
                    mmap.mmap(self._file.fileno(), rem, offset=full * _CHUNK_BYTES)
                )
                self._map_pages.append(rem // PAGE_SIZE)

    # -- chunk plumbing -------------------------------------------------------

    def _covered_pages(self) -> int:
        if not self._maps:
            return 0
        return (len(self._maps) - 1) * MMAP_CHUNK_PAGES + self._map_pages[-1]

    def _ensure(self, page_count: int) -> None:
        """Grow coverage (file + maps) to at least ``page_count`` pages."""
        if page_count <= self._covered_pages():
            return
        if self._maps and self._map_pages[-1] < MMAP_CHUNK_PAGES:
            # The reopen-time partial tail cannot grow in place; retire
            # it (exported views stay valid and coherent) and remap the
            # chunk at full size below.
            self._retired.append(self._maps.pop())
            self._map_pages.pop()
        chunks = -(-page_count // MMAP_CHUNK_PAGES)
        if self._file is not None:
            self._file.truncate(chunks * _CHUNK_BYTES)
        for index in range(len(self._maps), chunks):
            if self._file is not None:
                chunk = mmap.mmap(
                    self._file.fileno(), _CHUNK_BYTES, offset=index * _CHUNK_BYTES
                )
            else:
                chunk = mmap.mmap(-1, _CHUNK_BYTES)
            self._maps.append(chunk)
            self._map_pages.append(MMAP_CHUNK_PAGES)

    def _page_view(self, page_id: int) -> memoryview:
        """A writable PAGE_SIZE view of the page's bytes in its chunk."""
        chunk, pos = divmod(page_id, MMAP_CHUNK_PAGES)
        offset = pos * PAGE_SIZE
        return memoryview(self._maps[chunk])[offset:offset + PAGE_SIZE]

    @staticmethod
    def _check_view(page_id: int, view: memoryview) -> tuple[memoryview, int]:
        """In-place trailer validation; returns (stamped view, epoch).

        The zero-copy twin of :meth:`PageFile._check_image`: same
        failures, but the returned image is the live mapped page, full
        trailer included, with no intermediate copy.
        """
        body = view[:_BODY_BYTES]
        trailer = view[_BODY_BYTES:]
        if trailer[:4] != PAGE_TRAILER_MAGIC:
            raise StorageError(
                f"page {page_id} has no valid trailer (torn or corrupt write)"
            )
        epoch, crc = _EPOCH_CRC.unpack(trailer[4:])
        if zlib.crc32(body) != crc:
            raise StorageError(f"page {page_id} is torn (checksum mismatch)")
        return view, epoch

    # -- PageFile overrides ---------------------------------------------------

    def _raw_image(self, page_id: int) -> PageImage | None:
        if page_id >= self._page_count:
            raise StorageError(f"page {page_id} beyond end of store")
        if page_id >= self._covered_pages():
            # Crash padding trimmed by a later reopen can leave counted
            # pages beyond coverage; they were never written.
            return None
        view = self._page_view(page_id)
        if view == _ZERO_PAGE:
            return None
        return view

    def _put_image(self, page_id: int, stamped: bytes) -> None:
        self._ensure(page_id + 1)
        self._page_view(page_id)[:] = stamped
        if page_id >= self._page_count:
            self._page_count = page_id + 1

    def read_page(self, page_id: int) -> PageImage:
        raw = self._raw_image(page_id)
        if raw is None:
            raise StorageError(f"page {page_id} was never written")
        assert isinstance(raw, memoryview)
        image, _epoch = self._check_view(page_id, raw)
        return image

    def read_page_epoch(self, page_id: int) -> int | None:
        raw = self._raw_image(page_id)
        if raw is None:
            return None
        assert isinstance(raw, memoryview)
        _image, epoch = self._check_view(page_id, raw)
        return epoch

    def read_pages(self, start_page_id: int, count: int) -> list[PageImage | None]:
        if count < 0:
            raise StorageError(f"negative page count {count}")
        if start_page_id < 0 or start_page_id + count > self._page_count:
            raise StorageError(
                f"pages [{start_page_id}, {start_page_id + count}) reach "
                "beyond end of store"
            )
        images: list[PageImage | None] = []
        for page_id in range(start_page_id, start_page_id + count):
            raw = self._raw_image(page_id)
            if raw is None:
                images.append(None)
            else:
                assert isinstance(raw, memoryview)
                image, _epoch = self._check_view(page_id, raw)
                images.append(image)
        return images

    def write_pages(self, start_page_id: int, images: list[bytes]) -> None:
        # With mapped chunks a vectored write is a run of in-place
        # copies — there is no second seek+transfer to save — so the
        # batch decomposes per page.  Ascending order and bytes written
        # are identical to PageFile's join-and-write.
        for offset, image in enumerate(images):
            self._require_writable_image(start_page_id + offset, image)
        for offset, image in enumerate(images):
            self._put_image(start_page_id + offset, self._stamp(image))

    def clear_page(self, page_id: int) -> None:
        if page_id >= self._page_count or page_id >= self._covered_pages():
            return
        self._page_view(page_id)[:] = _ZERO_PAGE

    def sync(self) -> None:
        if self._file is not None:
            for chunk in self._maps:
                chunk.flush()

    def close(self) -> None:
        if self._file is not None:
            for chunk in self._maps:
                chunk.flush()
        for chunk in self._maps + self._retired:
            try:
                chunk.close()
            except BufferError:
                # A consumer still holds an exported view; the map is
                # released when the view is garbage-collected.
                pass
        self._maps = []
        self._map_pages = []
        self._retired = []
        if self._file is not None:
            # Trim the chunk padding so a closed store is byte-identical
            # to a PageFile-written one.
            self._file.truncate(self._page_count * PAGE_SIZE)
        super().close()
