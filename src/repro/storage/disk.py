"""The simulated disk: a page file plus a metadata side file.

``PageFile`` stores fixed-size pages at ``page_id * PAGE_SIZE`` offsets in
a single file, exactly like the 1996 stores' database files, so the
paper's ``size (bytes)`` column is simply the file's allocated length.
When constructed without a path it keeps pages in a dict — used by tests
and by benchmark configurations that only care about fault counts, not
real I/O latency.

Metadata (object directory, segment table, roots, allocator high-water
mark) is persisted on commit as one pickled blob in a ``.meta`` side
file.  Real persistent stores keep this mapping in swizzled virtual
addresses (Texas) or internal B-trees (ObjectStore); modelling it as a
side file keeps both simulated managers identical in this respect while
still counting the bytes toward database size.
"""

from __future__ import annotations

import os
import pickle

from repro.errors import StorageError
from repro.storage.page import PAGE_SIZE

#: A hole page: the image a never-written page reads back as in file mode.
_ZERO_PAGE = b"\0" * PAGE_SIZE


class PageFile:
    """Page-granular storage backed by a real file or by memory."""

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._mem: dict[int, bytes] = {}
        self._page_count = 0
        self._file = None
        if path is not None:
            # "x+b" would refuse reopening; support both create and reopen.
            mode = "r+b" if os.path.exists(path) else "w+b"
            self._file = open(path, mode)
            size = os.path.getsize(path)
            if size % PAGE_SIZE:
                raise StorageError(
                    f"{path}: size {size} is not a multiple of the page size"
                )
            self._page_count = size // PAGE_SIZE

    @property
    def page_count(self) -> int:
        return self._page_count

    @property
    def size_bytes(self) -> int:
        return self._page_count * PAGE_SIZE

    def read_page(self, page_id: int) -> bytes:
        """Read one page image; raises if the page was never written.

        Both backends raise the same ``StorageError`` for a hole page:
        in file mode a never-written page in the zero-filled gap left by
        a past-the-end write reads back as all zeroes, which no real
        page image can be (serialized pages start with pickle framing).
        """
        if page_id >= self._page_count:
            raise StorageError(f"page {page_id} beyond end of store")
        if self._file is None:
            image = self._mem.get(page_id)
            if image is None:
                raise StorageError(f"page {page_id} was never written")
            return image
        self._file.seek(page_id * PAGE_SIZE)
        image = self._file.read(PAGE_SIZE)
        if len(image) != PAGE_SIZE:
            raise StorageError(f"short read on page {page_id}")
        if image == _ZERO_PAGE:
            raise StorageError(f"page {page_id} was never written")
        return image

    def write_page(self, page_id: int, image: bytes) -> None:
        if len(image) != PAGE_SIZE:
            raise StorageError(
                f"page image must be exactly {PAGE_SIZE} bytes, got {len(image)}"
            )
        if self._file is None:
            self._mem[page_id] = image
        else:
            if page_id > self._page_count:
                # Writing past the end: zero-fill the gap explicitly so
                # hole pages are well-defined on every filesystem.
                self._file.seek(self._page_count * PAGE_SIZE)
                self._file.write(b"\0" * ((page_id - self._page_count) * PAGE_SIZE))
            self._file.seek(page_id * PAGE_SIZE)
            self._file.write(image)
        if page_id >= self._page_count:
            self._page_count = page_id + 1

    def sync(self) -> None:
        """Flush file buffers (no-op in memory mode)."""
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- metadata side file ---------------------------------------------------

    def _meta_path(self) -> str | None:
        return None if self.path is None else self.path + ".meta"

    def write_meta(self, meta: dict) -> int:
        """Persist the metadata blob atomically; returns its size in bytes.

        The blob is written to a ``.meta.tmp`` side file, fsync'd, then
        renamed over the ``.meta`` file, so a crash at any point leaves
        either the old blob or the new one — never a truncated blob that
        would make the store look freshly created (or fail to unpickle)
        on reopen.
        """
        blob = pickle.dumps(meta, protocol=4)
        meta_path = self._meta_path()
        if meta_path is None:
            self._mem_meta = blob
        else:
            tmp_path = meta_path + ".tmp"
            with open(tmp_path, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, meta_path)
        self._meta_size = len(blob)
        return len(blob)

    def read_meta(self) -> dict | None:
        """Load the metadata blob, or None if none was ever written.

        A blob that exists but does not unpickle raises
        :class:`StorageError` — a damaged store must fail loudly rather
        than masquerade as a fresh one.
        """
        meta_path = self._meta_path()
        if meta_path is None:
            blob = getattr(self, "_mem_meta", None)
            if blob is None:
                return None
        else:
            if not os.path.exists(meta_path):
                return None
            with open(meta_path, "rb") as handle:
                blob = handle.read()
        try:
            return pickle.loads(blob)
        except Exception as exc:
            raise StorageError(
                f"{meta_path or '<memory>'}: corrupt metadata blob: {exc}"
            ) from exc

    @property
    def meta_size_bytes(self) -> int:
        return getattr(self, "_meta_size", 0)
