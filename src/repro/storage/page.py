"""Slotted pages.

Both simulated storage managers store serialized records in fixed-size
slotted pages.  A page tracks its records by slot number and accounts for
space with a *charge policy* supplied by the storage manager: ObjectStore
charges a record its exact size plus slot overhead (dense packing), while
Texas rounds the size up to a power-of-two allocation cell — the detail
that makes the Texas database ~1.45x larger in the paper's size column.

Pages do not know about oids; the storage manager's object directory maps
oid -> (page_id, slot).
"""

from __future__ import annotations

import pickle
from typing import Callable, Iterator

from repro.errors import PageError, PageOverflowError

PAGE_SIZE = 4096
PAGE_HEADER_BYTES = 64
SLOT_OVERHEAD_BYTES = 16

#: Bytes at the end of every page image reserved for the disk layer's
#: commit-epoch trailer (magic + epoch + checksum; see repro.storage.disk).
#: Page serialization must leave them zero.
PAGE_TRAILER_BYTES = 16

#: Usable payload capacity of a page under exact charging.
PAGE_CAPACITY = PAGE_SIZE - PAGE_HEADER_BYTES

#: Records charged above this are chunked into large-object pieces.
MAX_RECORD_BYTES = PAGE_CAPACITY - SLOT_OVERHEAD_BYTES

ChargePolicy = Callable[[int], int]


def exact_charge(nbytes: int) -> int:
    """ObjectStore-style charging: record size plus slot overhead."""
    return nbytes + SLOT_OVERHEAD_BYTES


def power_of_two_charge(nbytes: int, minimum: int = 32) -> int:
    """Texas-style charging: power-of-two allocation cells.

    Texas v0.3 carved pages into power-of-two free-list cells; a 513-byte
    record occupied a 1024-byte cell.  The resulting internal
    fragmentation is what the paper's database-size comparison shows.
    """
    needed = nbytes + SLOT_OVERHEAD_BYTES
    cell = minimum
    while cell < needed:
        cell *= 2
    return cell


class Page:
    """A fixed-size slotted page holding serialized records.

    ``used_bytes`` is the sum of *charged* sizes plus the header, so the
    charge policy directly controls how many records fit per page.
    """

    __slots__ = ("page_id", "segment_id", "_records", "_charges",
                 "_next_slot", "used_bytes", "_dirty", "dirty_listener")

    def __init__(self, page_id: int, segment_id: int) -> None:
        self.page_id = page_id
        self.segment_id = segment_id
        self._records: dict[int, bytes] = {}
        self._charges: dict[int, int] = {}
        self._next_slot = 0
        self.used_bytes = PAGE_HEADER_BYTES
        self.dirty_listener: Callable[[int], None] | None = None
        self.dirty = True  # fresh pages must reach disk

    @property
    def dirty(self) -> bool:
        return self._dirty

    @dirty.setter
    def dirty(self, value: bool) -> None:
        # Mutators flip this flag outside the buffer pool's sight; the
        # listener (installed by the pool at admission) is what lets the
        # pool keep a dirty-page set so commits cost O(dirty pages)
        # instead of a sort of every resident page.
        self._dirty = value
        if value and self.dirty_listener is not None:
            self.dirty_listener(self.page_id)

    # -- space accounting ---------------------------------------------------

    @property
    def free_bytes(self) -> int:
        return PAGE_SIZE - self.used_bytes

    def fits(self, charged: int) -> bool:
        return charged <= self.free_bytes

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def is_empty(self) -> bool:
        return not self._records

    @property
    def charge_bytes(self) -> int:
        """Sum of charged record sizes (excludes the page header)."""
        return sum(self._charges.values())

    # -- record operations --------------------------------------------------

    def insert(self, payload: bytes, charged: int) -> int:
        """Store a record, returning its slot number."""
        if charged > self.free_bytes:
            raise PageOverflowError(
                f"page {self.page_id}: record charged {charged} B exceeds "
                f"free space {self.free_bytes} B"
            )
        slot = self._next_slot
        self._next_slot += 1
        self._records[slot] = payload
        self._charges[slot] = charged
        self.used_bytes += charged
        self.dirty = True
        return slot

    def read(self, slot: int) -> bytes:
        try:
            return self._records[slot]
        except KeyError:
            raise PageError(f"page {self.page_id}: no record in slot {slot}") from None

    def replace(self, slot: int, payload: bytes, charged: int) -> None:
        """Overwrite a record in place.

        Callers must check :meth:`can_replace` first; replacement never
        moves the record to another page (that is the manager's job).
        """
        old_charge = self._charges.get(slot)
        if old_charge is None:
            raise PageError(f"page {self.page_id}: no record in slot {slot}")
        if self.used_bytes - old_charge + charged > PAGE_SIZE:
            raise PageOverflowError(
                f"page {self.page_id}: replacement does not fit in slot {slot}"
            )
        self._records[slot] = payload
        self.used_bytes += charged - old_charge
        self._charges[slot] = charged
        self.dirty = True

    def can_replace(self, slot: int, charged: int) -> bool:
        old_charge = self._charges.get(slot)
        if old_charge is None:
            return False
        return self.used_bytes - old_charge + charged <= PAGE_SIZE

    def delete(self, slot: int) -> None:
        charge = self._charges.pop(slot, None)
        if charge is None:
            raise PageError(f"page {self.page_id}: no record in slot {slot}")
        del self._records[slot]
        self.used_bytes -= charge
        self.dirty = True

    def slots(self) -> Iterator[int]:
        return iter(self._records)

    # -- disk image ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to a fixed PAGE_SIZE byte string (zero padded)."""
        body = pickle.dumps(
            (self.segment_id, self._next_slot, self._records, self._charges),
            protocol=4,
        )
        if len(body) > PAGE_SIZE - PAGE_TRAILER_BYTES:
            raise PageError(
                f"page {self.page_id}: serialized image {len(body)} B exceeds "
                f"page size {PAGE_SIZE} B minus the {PAGE_TRAILER_BYTES} B "
                "trailer reserve (charge accounting bug)"
            )
        return body + b"\0" * (PAGE_SIZE - len(body))

    @classmethod
    def from_bytes(cls, page_id: int, image: "bytes | memoryview") -> "Page":
        """Rebuild a page from its disk image.

        The image may be a zero-copy ``memoryview`` of a mapped page;
        unpickling stops at the STOP opcode, so the live trailer bytes
        a mapped view carries past it are ignored.
        """
        try:
            segment_id, next_slot, records, charges = pickle.loads(image)
        # A corrupt pickle stream raises whatever the truncated opcodes
        # happen to hit (UnpicklingError, EOFError, AttributeError, even
        # MemoryError on a mangled length) — breadth is the point here.
        except Exception as exc:  # lint: ignore[LF06]
            raise PageError(f"page {page_id}: corrupt image: {exc}") from exc
        page = cls(page_id, segment_id)
        page._records = records
        page._charges = charges
        page._next_slot = next_slot
        page.used_bytes = PAGE_HEADER_BYTES + sum(charges.values())
        page.dirty = False
        return page
