"""Segments: named clustering units.

ObjectStore lets the application place related objects in the same
segment; pages belong to exactly one segment, so a segment's objects are
contiguous on disk.  LabBase exploits this with four segments — three
small hot ones and one large cold one — which is the locality-control
mechanism the paper's experiments highlight.

A segment tracks which of its pages have free space so allocation can
fill holes left by deletions before extending the store.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

#: Pages with at least this much free space are allocation candidates.
REUSE_THRESHOLD_BYTES = 128

DEFAULT_SEGMENT = "default"


@dataclass
class Segment:
    """Bookkeeping for one clustering unit."""

    segment_id: int
    name: str
    description: str = ""
    page_ids: list[int] = field(default_factory=list)
    # Pages believed to have reusable free space (checked on allocation).
    free_candidates: set[int] = field(default_factory=set)

    @property
    def page_count(self) -> int:
        return len(self.page_ids)

    def add_page(self, page_id: int) -> None:
        self.page_ids.append(page_id)

    def remove_page(self, page_id: int) -> None:
        """Forget a page entirely (crash recovery discards torn pages)."""
        if page_id in self.free_candidates:
            self.free_candidates.discard(page_id)
        if page_id in self.page_ids:
            self.page_ids.remove(page_id)

    def note_free_space(self, page_id: int, free_bytes: int) -> None:
        """Record that a page gained free space (after a delete)."""
        if free_bytes >= REUSE_THRESHOLD_BYTES:
            self.free_candidates.add(page_id)

    def candidate_pages(self) -> list[int]:
        """Pages to try before opening a new one (most recent first).

        The segment's tail page is always tried first: append-mostly
        workloads then fill pages densely in allocation order.
        """
        candidates: list[int] = []
        if self.page_ids:
            candidates.append(self.page_ids[-1])
        candidates.extend(
            page_id for page_id in self.free_candidates
            if not candidates or page_id != candidates[0]
        )
        return candidates

    def drop_candidate(self, page_id: int) -> None:
        self.free_candidates.discard(page_id)

    def contiguous_run_after(self, page_id: int, limit: int) -> int:
        """Length of this segment's contiguous page run after ``page_id``.

        ``page_ids`` is ascending by construction (pages come from a
        monotonic allocator and are appended at allocation), so a binary
        search finds the successor and the run is counted off directly.
        The run is what a segment-aware read-ahead can pull in a single
        vectored transfer: it ends, capped at ``limit``, at the first
        page id owned by a *different* segment — which is why clustered
        stores stream a cold segment scan while an unclustered heap's
        interleaved pages cut every run short.
        """
        if limit <= 0:
            return 0
        index = bisect.bisect_right(self.page_ids, page_id)
        count = 0
        expected = page_id + 1
        while (
            index < len(self.page_ids)
            and count < limit
            and self.page_ids[index] == expected
        ):
            count += 1
            index += 1
            expected += 1
        return count

    def to_meta(self) -> dict:
        """Plain-data form for the store's metadata record."""
        return {
            "segment_id": self.segment_id,
            "name": self.name,
            "description": self.description,
            "page_ids": list(self.page_ids),
            "free_candidates": sorted(self.free_candidates),
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "Segment":
        return cls(
            segment_id=meta["segment_id"],
            name=meta["name"],
            description=meta.get("description", ""),
            page_ids=list(meta["page_ids"]),
            free_candidates=set(meta.get("free_candidates", ())),
        )
