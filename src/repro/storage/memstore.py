"""Main-memory server versions: *OStore-mm* and *Texas-mm*.

The paper's fourth and fifth versions run "without any persistent storage
management, and ... entirely in main memory".  They bound how much of the
benchmark cost is storage management versus everything else (LabBase
logic, query evaluation).

Objects are still validated as plain data and *copied* on write/read
(through the record codec), so a main-memory store cannot silently share
mutable state with the application — the same isolation the page-based
stores give.  No pages, no faults, and no database file: ``size_bytes``
is 0, matching the "-" entries in the paper's size column.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import (
    StorageClosedError,
    TransactionError,
    UnknownOidError,
)
from repro.storage.base import StorageManager
from repro.storage.codec import DEFAULT_CODEC, RecordCodec
from repro.storage.registry import register_backend
from repro.storage.segment import DEFAULT_SEGMENT
from repro.storage.stats import StorageStats
from repro.util.ids import OidAllocator

#: Journal marker: the oid had no entry before the transaction.
_ABSENT = object()


class MainMemorySM(StorageManager):
    """Storage-manager API over plain dictionaries."""

    name = "Memory"
    supports_segments = False
    supports_concurrency = False
    persistent = False

    def __init__(self, codec: str = DEFAULT_CODEC) -> None:
        self.stats = StorageStats()
        self._codec = RecordCodec(codec, self.stats)
        self._objects: dict[int, bytes] = {}
        self._roots: dict[str, int] = {}
        self._segments: set[str] = {DEFAULT_SEGMENT}
        self._oid_alloc = OidAllocator(start=1)
        self._closed = False
        self._in_txn = False
        self._undo: dict | None = None

    def _check_open(self) -> None:
        if self._closed:
            raise StorageClosedError(f"{self.name} store is closed")

    # -- segments (accepted, inert) ------------------------------------------

    def create_segment(self, name: str, description: str = "") -> str:
        self._check_open()
        if self.supports_segments:
            self._segments.add(name)
            return name
        return DEFAULT_SEGMENT

    def segment_names(self) -> list[str]:
        return sorted(self._segments)

    # -- objects ---------------------------------------------------------------

    def allocate_write(self, obj: object, segment: str | None = None) -> int:
        self._check_open()
        payload = self._codec.encode(obj)
        oid = self._oid_alloc.allocate()
        self._journal(oid)
        self._objects[oid] = payload
        self.stats.objects_written += 1
        self.stats.bytes_written += len(payload)
        return oid

    def write(self, oid: int, obj: object) -> None:
        self._check_open()
        if oid not in self._objects:
            raise UnknownOidError(oid)
        payload = self._codec.encode(obj)
        self._journal(oid)
        self._objects[oid] = payload
        self.stats.objects_written += 1
        self.stats.bytes_written += len(payload)

    def read(self, oid: int) -> object:
        self._check_open()
        try:
            payload = self._objects[oid]
        except KeyError:
            raise UnknownOidError(oid) from None
        self.stats.objects_read += 1
        self.stats.bytes_read += len(payload)
        return self._codec.decode(payload)

    def exists(self, oid: int) -> bool:
        self._check_open()
        return oid in self._objects

    def delete(self, oid: int) -> None:
        self._check_open()
        if oid not in self._objects:
            raise UnknownOidError(oid)
        self._journal(oid)
        del self._objects[oid]
        self._evict_caches(oid)
        self.stats.objects_deleted += 1

    def oids(self) -> Iterator[int]:
        self._check_open()
        return iter(list(self._objects))

    # -- roots ------------------------------------------------------------------

    def set_root(self, name: str, oid: int) -> None:
        self._check_open()
        if oid not in self._objects:
            raise UnknownOidError(oid)
        self._roots[name] = oid

    def get_root(self, name: str) -> int | None:
        self._check_open()
        return self._roots.get(name)

    # -- transactions ---------------------------------------------------------------

    def begin(self) -> None:
        self._check_open()
        if self._in_txn:
            raise TransactionError("transaction already in progress")
        self._drain_caches()
        # Undo journal: old payloads (or _ABSENT) per touched oid, so
        # begin() is O(1), not O(database).
        self._undo = {
            "objects": {},
            "roots": dict(self._roots),
            "oid_high": self._oid_alloc.high_water,
        }
        self._in_txn = True
        self._begin_caches()

    def _journal(self, oid: int) -> None:
        if self._in_txn and oid not in self._undo["objects"]:
            self._undo["objects"][oid] = self._objects.get(oid, _ABSENT)

    def commit(self) -> None:
        self._check_open()
        self._drain_caches()
        self._end_txn_caches()
        self._in_txn = False
        self._undo = None
        self.stats.commits += 1

    def abort(self) -> None:
        self._check_open()
        if not self._in_txn:
            raise TransactionError("abort without a transaction")
        self._invalidate_caches()
        self._end_txn_caches()
        assert self._undo is not None
        for oid, old_payload in self._undo["objects"].items():
            if old_payload is _ABSENT:
                self._objects.pop(oid, None)
            else:
                self._objects[oid] = old_payload
        self._roots = self._undo["roots"]
        self._oid_alloc = OidAllocator(start=self._undo["oid_high"])
        self._undo = None
        self._in_txn = False
        self.stats.aborts += 1

    # -- accounting ---------------------------------------------------------------

    @property
    def codec_name(self) -> str:
        """The record codec writes use (``"labf"`` or ``"pickle"``)."""
        return self._codec.mode

    def size_bytes(self) -> int:
        self._check_open()
        return 0  # no database file: the paper prints "-" here

    def memory_bytes(self) -> int:
        """Resident payload bytes (not part of the paper's size column)."""
        return sum(len(p) for p in self._objects.values())

    def close(self) -> None:
        if self._closed:
            return
        if self._in_txn:
            raise TransactionError("close() inside an open transaction")
        self._drain_caches()
        self._closed = True


@register_backend(
    "OStore-mm", order=3, description="main memory, ObjectStore-flavoured API"
)
class OStoreMM(MainMemorySM):
    """*OStore-mm*: segment hints tracked (inert) like ObjectStore's API."""

    name = "OStore-mm"
    supports_segments = True


@register_backend(
    "Texas-mm", order=4, description="main memory, Texas-flavoured API"
)
class TexasMM(MainMemorySM):
    """*Texas-mm*: no segment support, like Texas's API."""

    name = "Texas-mm"
    supports_segments = False
