"""Buffer pool with fault accounting.

Every page access goes through the pool.  A miss on a page that exists on
disk is counted as a *major fault* — the simulated stand-in for the
paper's ``majflt`` column (on 1996 hardware the databases exceeded RAM,
so OS page faults measured locality of reference; see
``repro.util.timing``).

Replacement is LRU over *clean* pages only (a no-steal policy): dirty
pages hold uncommitted data, and flushing them before commit would break
abort.  If every resident page is dirty the pool temporarily grows past
its capacity and records the overflow, which the buffer-sweep ablation
(A2) reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.storage.page import Page
from repro.storage.stats import StorageStats

#: Default pool capacity in pages (256 pages * 4 KiB = 1 MiB), chosen so
#: the default benchmark database does not fit — otherwise every server
#: version would show zero faults and E5 would be vacuous.
DEFAULT_POOL_PAGES = 256

LoadPage = Callable[[int], Page]
FlushPage = Callable[[Page], None]
FaultHook = Callable[[Page], None]


class BufferPool:
    """LRU page cache shared by all segments of one store."""

    def __init__(
        self,
        capacity_pages: int,
        load_page: LoadPage,
        flush_page: FlushPage,
        stats: StorageStats,
        fault_hook: FaultHook | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.capacity_pages = capacity_pages
        self._load_page = load_page
        self._flush_page = flush_page
        self._stats = stats
        self._fault_hook = fault_hook
        self._pages: OrderedDict[int, Page] = OrderedDict()
        # Clean-page candidates in the same LRU order as _pages, so an
        # eviction pops the victim in O(1) instead of scanning every
        # resident page.  Page.dirty is flipped by Page mutators outside
        # the pool, so entries can go stale (page dirtied after being
        # listed); _clean_lru_victim discards stale entries lazily, and
        # flush_dirty (the only event that makes pages clean in bulk)
        # rebuilds the list.  Invariant: every clean resident page is
        # listed; listed pages are merely *candidates*.
        self._clean: OrderedDict[int, None] = OrderedDict()
        self.overflow_high_water = 0  # max pages resident beyond capacity

    # -- access ---------------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Return the page, loading it from disk on a miss (a fault)."""
        page = self._pages.get(page_id)
        if page is not None:
            self._pages.move_to_end(page_id)
            if page_id in self._clean:
                self._clean.move_to_end(page_id)
            self._stats.buffer_hits += 1
            return page
        page = self._load_page(page_id)
        self._stats.major_faults += 1
        self._stats.page_reads += 1
        if self._fault_hook is not None:
            self._fault_hook(page)
        self._admit(page)
        return page

    def admit_new(self, page: Page) -> None:
        """Install a freshly created page (not a fault: nothing was read)."""
        self._admit(page)

    def _admit(self, page: Page) -> None:
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id)
        if page.dirty:
            self._clean.pop(page.page_id, None)
        else:
            self._clean[page.page_id] = None
            self._clean.move_to_end(page.page_id)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._pages) > self.capacity_pages:
            victim_id = self._clean_lru_victim()
            if victim_id is None:
                # All pages dirty: no-steal policy forbids eviction.
                overflow = len(self._pages) - self.capacity_pages
                self.overflow_high_water = max(self.overflow_high_water, overflow)
                return
            del self._pages[victim_id]

    def _clean_lru_victim(self) -> int | None:
        """Oldest genuinely-clean page, never the one just touched.

        Pops candidates off the clean list oldest-first, discarding
        stale entries (pages dirtied or dropped since listing) as it
        goes — each stale entry is paid for once, so eviction cost is
        amortised O(1) rather than a scan of every resident page.
        """
        newest = next(reversed(self._pages), None)
        skipped_newest = None
        victim = None
        while self._clean:
            page_id, _ = self._clean.popitem(last=False)  # oldest first
            page = self._pages.get(page_id)
            if page is None or page.dirty:
                continue  # stale entry
            if page_id == newest:
                skipped_newest = page_id  # never evict the just-touched page
                continue
            victim = page_id
            break
        if skipped_newest is not None:
            # Still clean and resident: put it back where it was (the
            # front — everything once ahead of it was consumed above).
            self._clean[skipped_newest] = None
            self._clean.move_to_end(skipped_newest, last=False)
        return victim

    # -- write-back -------------------------------------------------------------

    def flush_dirty(self) -> int:
        """Write every dirty resident page to disk; returns pages written.

        Pages go out in page-id order, not LRU order, so a given
        workload always issues the same write sequence — deterministic
        fault injection (crash after the Nth write) depends on it.
        """
        written = 0
        for page_id in sorted(self._pages):
            page = self._pages[page_id]
            if page.dirty:
                self._flush_page(page)
                page.dirty = False
                written += 1
        self._stats.page_writes += written
        # Everything resident is clean now; rebuild the candidate list in
        # _pages (LRU) order, dropping stale entries in one pass.
        self._clean = OrderedDict((page_id, None) for page_id in self._pages)
        self._evict_if_needed()
        return written

    def drop_dirty(self) -> int:
        """Discard every dirty page without writing (abort path)."""
        dirty_ids = [pid for pid, page in self._pages.items() if page.dirty]
        for page_id in dirty_ids:
            del self._pages[page_id]
        return len(dirty_ids)

    def drop(self, page_id: int) -> None:
        """Remove one page from the pool if resident (page deallocated)."""
        self._pages.pop(page_id, None)
        self._clean.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (dirty pages are lost; call flush_dirty first)."""
        self._pages.clear()
        self._clean.clear()

    # -- introspection ------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def resident_ids(self) -> list[int]:
        return list(self._pages)

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._pages
