"""Buffer pool with fault accounting, read-ahead and vectored flushes.

Every page access goes through the pool.  A miss on a page that exists on
disk is counted as a *major fault* — the simulated stand-in for the
paper's ``majflt`` column (on 1996 hardware the databases exceeded RAM,
so OS page faults measured locality of reference; see
``repro.util.timing``).

Replacement is LRU over *clean* pages only (a no-steal policy): dirty
pages hold uncommitted data, and flushing them before commit would break
abort.  If every resident page is dirty the pool temporarily grows past
its capacity and records the overflow, which the buffer-sweep ablation
(A2) reports.

Read-ahead
----------

With ``readahead_pages > 0`` the pool watches the fault stream: when a
miss lands within one window of the previous miss (a near-sequential
pattern — a cold segment scan), it asks the storage manager for the run
of contiguous pages that follows and pulls them in **one vectored read**
(``read_pages``).  The raw images are *staged* in a small side buffer,
deliberately outside the pool:

* a staged page costs no pool slot, so residency, eviction order and
  buffer-hit counts are bit-identical with read-ahead on or off;
* the image is decoded (and the fault hook — Texas swizzling — charged)
  only when the page is actually demanded, so speculative reads that
  never pay off cost nothing but the transfer;
* a demanded staged page counts as a ``prefetch_hit``, **never** as a
  major fault — the locality experiments can see exactly how many
  faults the read-ahead absorbed.

Staleness is impossible by construction: a page can only be dirtied
after a ``fetch``, and a fetch of a staged page promotes it into the
pool (removing the staged image) before any mutation can happen.

Vectored flush
--------------

``flush_dirty`` selects pages from an eagerly-maintained dirty set (the
``Page.dirty`` setter notifies the pool via a listener), sorts *only
those*, and coalesces contiguous page-id runs into single ``write_pages``
transfers.  Write order is still ascending page-id order page for page,
so deterministic fault injection (crash after the Nth write) and on-disk
bytes are unchanged — batching alters how many transfers carry the
pages, never what lands.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator

from repro.errors import StorageError
from repro.storage.page import Page
from repro.storage.stats import StorageStats

#: Default pool capacity in pages (256 pages * 4 KiB = 1 MiB), chosen so
#: the default benchmark database does not fit — otherwise every server
#: version would show zero faults and E5 would be vacuous.
DEFAULT_POOL_PAGES = 256

#: Default read-ahead window in pages (the ``--readahead on`` setting).
DEFAULT_READAHEAD_PAGES = 8

LoadPage = Callable[[int], Page]
FlushPage = Callable[[Page], None]
FaultHook = Callable[[Page], None]
#: Vectored read: (start_page_id, count) -> raw images, None for holes.
#: Images may be zero-copy memoryviews (the mmap disk layer).
ReadPages = Callable[[int, int], "list[bytes | memoryview | None]"]
#: Vectored write: (start_page_id, contiguous pages in ascending order).
FlushPages = Callable[[int, "list[Page]"], None]
#: Policy hook: faulting page id -> (start, count) prefetchable run.
PrefetchRun = Callable[[int], "tuple[int, int]"]


class BufferPool:
    """LRU page cache shared by all segments of one store."""

    def __init__(
        self,
        capacity_pages: int,
        load_page: LoadPage,
        flush_page: FlushPage,
        stats: StorageStats,
        fault_hook: FaultHook | None = None,
        read_pages: ReadPages | None = None,
        flush_pages: FlushPages | None = None,
        readahead_pages: int = 0,
        prefetch_run: PrefetchRun | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        if readahead_pages < 0:
            raise ValueError("read-ahead window must be >= 0")
        self.capacity_pages = capacity_pages
        self._load_page = load_page
        self._flush_page = flush_page
        self._stats = stats
        self._fault_hook = fault_hook
        self._read_pages = read_pages
        self._flush_pages = flush_pages
        self._readahead = readahead_pages
        self._prefetch_run = prefetch_run
        self._pages: OrderedDict[int, Page] = OrderedDict()
        # Clean-page candidates in the same LRU order as _pages, so an
        # eviction pops the victim in O(1) instead of scanning every
        # resident page.  Page.dirty is flipped by Page mutators outside
        # the pool, so entries can go stale (page dirtied after being
        # listed); _clean_lru_victim discards stale entries lazily, and
        # flush_dirty (the only event that makes pages clean in bulk)
        # rebuilds the list.  Invariant: every clean resident page is
        # listed; listed pages are merely *candidates*.
        self._clean: OrderedDict[int, None] = OrderedDict()
        # Dirty-page candidates, fed by the Page.dirty listener installed
        # at admission.  Entries can be stale the other way (page dropped
        # or cleaned behind the pool's back); flush validates each, so a
        # commit costs O(dirty candidates), not a sort of every resident
        # page.  Invariant: every dirty resident page is listed.
        self._dirty: set[int] = set()
        # Read-ahead stage: raw disk images pulled speculatively, keyed
        # by page id, FIFO-bounded.  Disjoint from _pages by construction.
        self._staged: OrderedDict[int, bytes | memoryview] = OrderedDict()
        self._staged_cap = max(4 * readahead_pages, 16)
        self._last_fault: int | None = None
        self.overflow_high_water = 0  # max pages resident beyond capacity

    # -- access ---------------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Return the page, loading it from disk on a miss (a fault)."""
        page = self._pages.get(page_id)
        if page is not None:
            self._pages.move_to_end(page_id)
            if page_id in self._clean:
                self._clean.move_to_end(page_id)
            self._stats.buffer_hits += 1
            return page
        raw = self._staged.pop(page_id, None)
        if raw is not None:
            # Staged by read-ahead: decode and admit on demand.  Not a
            # major fault — the transfer already happened, batched — but
            # the fault hook still fires here (Texas swizzles a page
            # when it is mapped in, and only pages actually referenced
            # are mapped in), so per-page policy costs are identical
            # with read-ahead on or off.
            page = Page.from_bytes(page_id, raw)
            self._stats.prefetch_hits += 1
            self._last_fault = page_id
            if self._fault_hook is not None:
                self._fault_hook(page)
            self._admit(page)
            self._extend_readahead(page_id)
            return page
        page = self._load_page(page_id)
        self._stats.major_faults += 1
        self._stats.page_reads += 1
        sequential = (
            self._readahead > 0
            and self._last_fault is not None
            and 0 < page_id - self._last_fault <= self._readahead
        )
        self._last_fault = page_id
        if self._fault_hook is not None:
            self._fault_hook(page)
        self._admit(page)
        if sequential:
            self._prefetch_after(page_id)
        return page

    def admit_new(self, page: Page) -> None:
        """Install a freshly created page (not a fault: nothing was read)."""
        self._admit(page)

    def _admit(self, page: Page) -> None:
        page.dirty_listener = self._note_dirty
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id)
        if page.dirty:
            self._dirty.add(page.page_id)
            self._clean.pop(page.page_id, None)
        else:
            self._clean[page.page_id] = None
            self._clean.move_to_end(page.page_id)
        self._evict_if_needed()

    def _note_dirty(self, page_id: int) -> None:
        """Listener for Page.dirty: keep the dirty set current, O(1)."""
        self._dirty.add(page_id)

    def _evict_if_needed(self) -> None:
        while len(self._pages) > self.capacity_pages:
            victim_id = self._clean_lru_victim()
            if victim_id is None:
                # All pages dirty: no-steal policy forbids eviction.
                overflow = len(self._pages) - self.capacity_pages
                self.overflow_high_water = max(self.overflow_high_water, overflow)
                return
            del self._pages[victim_id]

    def _clean_lru_victim(self) -> int | None:
        """Oldest genuinely-clean page, never the one just touched.

        Pops candidates off the clean list oldest-first, discarding
        stale entries (pages dirtied or dropped since listing) as it
        goes — each stale entry is paid for once, so eviction cost is
        amortised O(1) rather than a scan of every resident page.
        """
        newest = next(reversed(self._pages), None)
        skipped_newest = None
        victim = None
        while self._clean:
            page_id, _ = self._clean.popitem(last=False)  # oldest first
            page = self._pages.get(page_id)
            if page is None or page.dirty:
                continue  # stale entry
            if page_id == newest:
                skipped_newest = page_id  # never evict the just-touched page
                continue
            victim = page_id
            break
        if skipped_newest is not None:
            # Still clean and resident: put it back where it was (the
            # front — everything once ahead of it was consumed above).
            self._clean[skipped_newest] = None
            self._clean.move_to_end(skipped_newest, last=False)
        return victim

    # -- read-ahead -------------------------------------------------------------

    def _prefetch_after(self, page_id: int) -> None:
        """Pull the contiguous run after ``page_id`` in one vectored read."""
        if self._prefetch_run is None or self._read_pages is None:
            return
        start, count = self._prefetch_run(page_id)
        # Pages already resident or staged need no transfer; trimming
        # from the front keeps the remainder a contiguous run.
        while count > 0 and (start in self._pages or start in self._staged):
            start += 1
            count -= 1
        if count <= 0:
            return
        try:
            images = self._read_pages(start, count)
        except StorageError:
            return  # speculative read: abandon the batch, demand paths decide
        staged = 0
        for offset, raw in enumerate(images):
            pid = start + offset
            if raw is None or pid in self._pages or pid in self._staged:
                continue  # hole, or resident mid-run: skip it
            self._staged[pid] = raw
            staged += 1
        if staged:
            self._stats.pages_prefetched += staged
            self._stats.page_reads += staged
        if count > 1:
            self._stats.io_batches += 1
        while len(self._staged) > self._staged_cap:
            self._staged.popitem(last=False)

    def _extend_readahead(self, page_id: int) -> None:
        """Keep a streaming scan fed without degrading to 1-page reads.

        Re-issuing a vectored read on every staged hit would shrink each
        batch to a single page; instead the stage is topped up only once
        the look-ahead for this stream drops to half the window, so
        steady-state batches stay around ``readahead_pages / 2`` pages.
        """
        if self._readahead <= 0:
            return
        lookahead = 0
        while (
            lookahead < self._readahead
            and (page_id + 1 + lookahead) in self._staged
        ):
            lookahead += 1
        if 2 * lookahead <= self._readahead:
            self._prefetch_after(page_id + lookahead)

    # -- write-back -------------------------------------------------------------

    def flush_dirty(self) -> int:
        """Write every dirty resident page to disk; returns pages written.

        Pages go out in page-id order, not LRU order, so a given
        workload always issues the same write sequence — deterministic
        fault injection (crash after the Nth write) depends on it.
        Contiguous runs are coalesced into vectored ``write_pages``
        transfers when the pool was built with one; the per-page order
        and bytes are identical either way.

        Selection costs O(dirty): candidates come from the dirty set the
        Page.dirty listener maintains, so a commit that wrote nothing is
        a no-op instead of a sort of every resident page.
        """
        written_ids = sorted(
            pid
            for pid in self._dirty
            if (page := self._pages.get(pid)) is not None and page.dirty
        )
        self._dirty.clear()
        if not written_ids:
            return 0
        for start, run in self._runs(written_ids):
            if self._flush_pages is not None and len(run) > 1:
                self._flush_pages(start, run)
                self._stats.io_batches += 1
            else:
                for page in run:
                    self._flush_page(page)
            for page in run:
                page.dirty = False
        self._stats.page_writes += len(written_ids)
        # Everything resident is clean now; rebuild the candidate list in
        # _pages (LRU) order, dropping stale entries in one pass.
        self._clean = OrderedDict((page_id, None) for page_id in self._pages)
        self._evict_if_needed()
        return len(written_ids)

    def _runs(
        self, page_ids: list[int]
    ) -> Iterator[tuple[int, list[Page]]]:
        """Split ascending page ids into (start_id, [pages]) runs."""
        run_start = 0
        for index in range(1, len(page_ids) + 1):
            if index == len(page_ids) or page_ids[index] != page_ids[index - 1] + 1:
                ids = page_ids[run_start:index]
                yield ids[0], [self._pages[pid] for pid in ids]
                run_start = index

    def drop_dirty(self) -> int:
        """Discard every dirty page without writing (abort path)."""
        dropped = 0
        for page_id in sorted(self._dirty):
            page = self._pages.get(page_id)
            if page is not None and page.dirty:
                del self._pages[page_id]
                dropped += 1
        self._dirty.clear()
        return dropped

    def drop(self, page_id: int) -> None:
        """Remove one page from the pool if resident (page deallocated)."""
        self._pages.pop(page_id, None)
        self._clean.pop(page_id, None)
        self._dirty.discard(page_id)
        self._staged.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (dirty pages are lost; call flush_dirty first)."""
        self._pages.clear()
        self._clean.clear()
        self._dirty.clear()
        self._staged.clear()
        self._last_fault = None

    # -- introspection ------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def resident_ids(self) -> list[int]:
        return list(self._pages)

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._pages

    @property
    def staged_pages(self) -> int:
        """Pages currently held by the read-ahead stage (not resident)."""
        return len(self._staged)

    def is_staged(self, page_id: int) -> bool:
        return page_id in self._staged
