"""Buffer pool with fault accounting.

Every page access goes through the pool.  A miss on a page that exists on
disk is counted as a *major fault* — the simulated stand-in for the
paper's ``majflt`` column (on 1996 hardware the databases exceeded RAM,
so OS page faults measured locality of reference; see
``repro.util.timing``).

Replacement is LRU over *clean* pages only (a no-steal policy): dirty
pages hold uncommitted data, and flushing them before commit would break
abort.  If every resident page is dirty the pool temporarily grows past
its capacity and records the overflow, which the buffer-sweep ablation
(A2) reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from repro.storage.page import Page
from repro.storage.stats import StorageStats

#: Default pool capacity in pages (256 pages * 4 KiB = 1 MiB), chosen so
#: the default benchmark database does not fit — otherwise every server
#: version would show zero faults and E5 would be vacuous.
DEFAULT_POOL_PAGES = 256

LoadPage = Callable[[int], Page]
FlushPage = Callable[[Page], None]
FaultHook = Callable[[Page], None]


class BufferPool:
    """LRU page cache shared by all segments of one store."""

    def __init__(
        self,
        capacity_pages: int,
        load_page: LoadPage,
        flush_page: FlushPage,
        stats: StorageStats,
        fault_hook: FaultHook | None = None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one page")
        self.capacity_pages = capacity_pages
        self._load_page = load_page
        self._flush_page = flush_page
        self._stats = stats
        self._fault_hook = fault_hook
        self._pages: OrderedDict[int, Page] = OrderedDict()
        self.overflow_high_water = 0  # max pages resident beyond capacity

    # -- access ---------------------------------------------------------------

    def fetch(self, page_id: int) -> Page:
        """Return the page, loading it from disk on a miss (a fault)."""
        page = self._pages.get(page_id)
        if page is not None:
            self._pages.move_to_end(page_id)
            self._stats.buffer_hits += 1
            return page
        page = self._load_page(page_id)
        self._stats.major_faults += 1
        self._stats.page_reads += 1
        if self._fault_hook is not None:
            self._fault_hook(page)
        self._admit(page)
        return page

    def admit_new(self, page: Page) -> None:
        """Install a freshly created page (not a fault: nothing was read)."""
        self._admit(page)

    def _admit(self, page: Page) -> None:
        self._pages[page.page_id] = page
        self._pages.move_to_end(page.page_id)
        self._evict_if_needed()

    def _evict_if_needed(self) -> None:
        while len(self._pages) > self.capacity_pages:
            victim_id = self._clean_lru_victim()
            if victim_id is None:
                # All pages dirty: no-steal policy forbids eviction.
                overflow = len(self._pages) - self.capacity_pages
                self.overflow_high_water = max(self.overflow_high_water, overflow)
                return
            del self._pages[victim_id]

    def _clean_lru_victim(self) -> int | None:
        newest = next(reversed(self._pages), None)
        for page_id, page in self._pages.items():  # oldest first
            if page_id == newest:
                continue  # never evict the page just admitted/touched
            if not page.dirty:
                return page_id
        return None

    # -- write-back -------------------------------------------------------------

    def flush_dirty(self) -> int:
        """Write every dirty resident page to disk; returns pages written.

        Pages go out in page-id order, not LRU order, so a given
        workload always issues the same write sequence — deterministic
        fault injection (crash after the Nth write) depends on it.
        """
        written = 0
        for page_id in sorted(self._pages):
            page = self._pages[page_id]
            if page.dirty:
                self._flush_page(page)
                page.dirty = False
                written += 1
        self._stats.page_writes += written
        self._evict_if_needed()
        return written

    def drop_dirty(self) -> int:
        """Discard every dirty page without writing (abort path)."""
        dirty_ids = [pid for pid, page in self._pages.items() if page.dirty]
        for page_id in dirty_ids:
            del self._pages[page_id]
        return len(dirty_ids)

    def drop(self, page_id: int) -> None:
        """Remove one page from the pool if resident (page deallocated)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (dirty pages are lost; call flush_dirty first)."""
        self._pages.clear()

    # -- introspection ------------------------------------------------------------

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    def resident_ids(self) -> list[int]:
        return list(self._pages)

    def is_resident(self, page_id: int) -> bool:
        return page_id in self._pages
