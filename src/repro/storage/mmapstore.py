"""The "mmap" server version: the OStore policy stack over mapped pages.

The sixth contender asks a question the original five cannot: how much
of the persistent stores' cost is the *buffered read path* — seek, copy
into a userspace buffer, copy again into the page object — rather than
storage-management policy?  ``MMapStoreSM`` keeps every policy of the
OStore version (segments, dense exact-charge allocation, the lock-based
page server, the commit-epoch + CRC trailer, group commit, the object
cache) and swaps only the disk layer: pages live in ``mmap``-ed chunks
of the database file, and a demand read hands the buffer pool a
zero-copy ``memoryview`` of the mapped bytes
(:class:`repro.storage.disk.MMapPageFile`).

Because the swap happens below the trailer format, everything above is
unchanged *and verifiable*: the crash matrix sweeps this backend with
the identical write-point schedule (via
:class:`repro.storage.faultinject.FaultyMMapPageFile`), and a cleanly
closed mmap database file is byte-identical to an OStore one — the
equivalence tests assert both.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.storage.faultinject import FaultInjector

from repro.storage.disk import MMapPageFile, PageFile
from repro.storage.objectstore import ObjectStoreSM
from repro.storage.page import Page
from repro.storage.registry import register_backend


@register_backend(
    "mmap",
    order=5,
    description="OStore policies over memory-mapped pages, zero-copy reads",
)
class MMapStoreSM(ObjectStoreSM):
    """Segment-aware page-server store reading through ``mmap``."""

    name = "mmap"

    def _open_disk(
        self, path: str | None, fault_injector: "FaultInjector | None"
    ) -> PageFile:
        if fault_injector is not None:
            from repro.storage.faultinject import FaultyMMapPageFile

            return FaultyMMapPageFile(path, fault_injector)  # lint: ignore[LF01]
        return MMapPageFile(path)  # lint: ignore[LF01]

    def _load_page(self, page_id: int) -> Page:
        # Same decode as the base path — the image is just a view of the
        # map instead of a copy.  Counted so A-series runs can report
        # how many demand reads the mapping served.
        self.stats.mapped_reads += 1
        return super()._load_page(page_id)
