"""The "Texas" server version: a simulated Texas v0.3 persistent store.

What the paper attributes to Texas, and what this class models:

* **No clustering control.**  Texas exposes a single persistent heap;
  objects land in pages in allocation order.  ``create_segment`` is
  accepted but ignored, so LabBase's hot/cold placement hints have no
  effect — the source of the locality differences experiment E5 measures.
* **Power-of-two allocation cells.**  Texas carved pages into
  power-of-two free-list cells; the internal fragmentation makes the
  database file ~1.45x the ObjectStore size in the paper's table.
* **Pointer swizzling at page-fault time.**  On each fresh page fault
  Texas translated every persistent pointer on the page to a virtual
  address.  We charge that work per fault via the fault hook (one
  swizzle operation per resident record), which surfaces as user-CPU
  overhead proportional to fault count.
* **No concurrent access.**  Texas programs accessed the database file
  directly, with no page server; a second client is refused.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConcurrencyUnsupportedError
from repro.storage.base import PagedStorageManager

if TYPE_CHECKING:
    from repro.storage.faultinject import FaultInjector
from repro.storage.buffer import DEFAULT_POOL_PAGES, DEFAULT_READAHEAD_PAGES
from repro.storage.codec import DEFAULT_CODEC
from repro.storage.page import Page, power_of_two_charge
from repro.storage.registry import register_backend


@register_backend(
    "Texas",
    order=2,
    description="Texas-style: one heap, power-of-two cells, swizzling",
)
class TexasSM(PagedStorageManager):
    """Single-heap swizzling store (the paper's *Texas* version)."""

    name = "Texas"
    supports_segments = False
    supports_concurrency = False
    persistent = True

    #: Synthetic work units per record swizzled at fault time.  The loop
    #: is real (it burns CPU), so swizzling shows up in user-cpu the same
    #: way it did in 1996 — proportional to faults times page density.
    SWIZZLE_WORK = 20

    def __init__(
        self,
        path: str | None = None,
        buffer_pages: int = DEFAULT_POOL_PAGES,
        checkpoint_every: int = 0,
        fault_injector: FaultInjector | None = None,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
        codec: str = DEFAULT_CODEC,
    ) -> None:
        super().__init__(
            path=path,
            buffer_pages=buffer_pages,
            charge_policy=power_of_two_charge,
            checkpoint_every=checkpoint_every,
            fault_injector=fault_injector,
            readahead_pages=readahead_pages,
            codec=codec,
        )
        self._client: str | None = None

    # -- swizzling ---------------------------------------------------------------

    def _on_fault(self, page: Page) -> None:
        """Swizzle every record on a freshly faulted page."""
        records = page.record_count
        self.stats.swizzle_operations += records
        # Burn a deterministic sliver of CPU per swizzled pointer so the
        # cost is visible to the resource meter, not just a counter.
        acc = 0
        for _ in range(records * self.SWIZZLE_WORK):
            acc += 1
        self._swizzle_sink = acc

    # -- single-client discipline ---------------------------------------------------

    def attach_client(self, client: str) -> None:
        """Attach the one allowed client; a second is refused."""
        self._check_open()
        if self._client is not None and self._client != client:
            raise ConcurrencyUnsupportedError(
                f"Texas store already attached by {self._client!r}; "
                "Texas does not support concurrent access"
            )
        self._client = client

    def detach_client(self, client: str) -> None:
        self._check_open()
        if self._client == client:
            self._client = None
