"""Schema-aware record codec for the storage managers.

Every record a storage manager persists used to be a raw pickle.  That
is compact-ish for open-schema plain data, but the three closed-schema
record kinds LabBase writes on the hot path (``sm_step``,
``sm_material`` and history-chunk nodes — see ``repro/labbase/model.py``)
pay for their dict keys, their ``kind`` string and every repeated
attribute name on every single record.  This module adds a fixed-layout
binary encoding for exactly those three kinds, dispatched by a one-byte
tag, with pickle protocol 4 kept as the fallback for everything else:

==========  ============================================================
first byte  payload
==========  ============================================================
``0x80``    a raw pickle (protocol 4 always starts with the PROTO
            opcode ``0x80``) — the legacy wire format and what the
            ``pickle`` codec mode still writes, byte-for-byte
``0x00``    fallback: the rest of the payload is a pickle of an
            open-schema plain-data record
``0x01``    ``sm_step`` fast path
``0x02``    ``sm_material`` fast path
``0x03``    ``history_node`` fast path
``0x04``    a zlib-deflated envelope around any of the above (only
            emitted when a large payload actually shrinks)
``0x05``    open-schema plain data in the codec's own value grammar
==========  ============================================================

Anything else is a corrupt record and raises :class:`StorageError`.
Because decode dispatches on the tag, *any* codec mode can read *any*
record: a database written under ``pickle`` reopens fine under ``labf``
and vice versa — new writes simply use the mode's encoding.

Fast-path layouts drop the dict keys entirely (field order is fixed by
the schema), encode attribute names as varint ids into a
per-storage-manager **intern table** (persisted with the meta blob, so
dynamic schema evolution keeps working across reopen), memoize repeated
strings within one record the way pickle's memo does, pack small ints
and short strings into single-byte-tagged forms, and delta-code
all-int lists (history chains are ascending oid runs).  A record whose
shape deviates from the closed schema in any way falls back to the
tagged pickle, so the codec never changes what round-trips or which
records are rejected — only how many bytes they take.  The closed
schemas double as the validator: fast-path records never pay the
recursive ``validate_plain_data`` walk, because the grammar encodes
precisely the values it would accept.  (``0x05`` wraps a bare value in
the same grammar; the encoder currently reserves it — open-schema hot
records are int-heavy containers that C pickle handles faster — but
decode accepts it as a first-class record tag.)

Determinism matches pickle's: plain data encodes bit-identically within
a process, and ``set``/``frozenset`` iteration order is the only
nondeterministic input (exactly as it is for ``pickle.dumps``).
Decode accepts ``bytes``, ``bytearray`` and ``memoryview`` without
copying the payload, so ``MMapStoreSM`` reads stay zero-copy end to end
(deflated envelopes necessarily copy on inflate; they only wrap records
too large to sit in one page-hot slot anyway).
"""

from __future__ import annotations

import pickle
import struct
import zlib

from repro.errors import StorageError
from repro.storage.serializer import validate_plain_data
from repro.storage.stats import StorageStats

#: Codec modes a storage manager can be opened with.
CODEC_NAMES: tuple[str, ...] = ("labf", "pickle")
DEFAULT_CODEC: str = "labf"

#: One-byte wire tags (``0x80`` is pickle's own PROTO opcode).
TAG_PICKLE_RAW = 0x80
TAG_PICKLE = 0x00
TAG_STEP = 0x01
TAG_MATERIAL = 0x02
TAG_HISTORY_NODE = 0x03
TAG_DEFLATE = 0x04
TAG_PLAIN = 0x05

#: Payloads at least this long are candidates for the deflate envelope.
#: Hot records (materials, index entries) stay well under it, so the
#: zero-copy read path never pays an inflate; single-sequence steps
#: (~0.5 KB) also skip it — deflating them costs more wall per record
#: than the page savings return.
COMPRESS_MIN_BYTES = 512

#: Deterministic deflate level (speed-biased; record bodies are small
#: and level 1 already takes sequence data down ~2.4x).
_COMPRESS_LEVEL = 1

# The closed-schema kind literals.  These mirror repro/labbase/model.py;
# they are duplicated here because the storage layer sits *below*
# LabBase and must not import it (the wire format is a spec, not a
# runtime dependency).
_KIND_STEP = "sm_step"
_KIND_MATERIAL = "sm_material"
_KIND_HISTORY_NODE = "history_node"

_STEP_KEYS = frozenset(
    ("kind", "class_version", "valid_time", "results", "involves")
)
_MATERIAL_KEYS = frozenset(
    ("kind", "class_name", "key", "created", "history_head",
     "history_len", "recent", "state", "state_since")
)
_HISTORY_KEYS = frozenset(("kind", "step_oids", "next"))

# Value-encoding type tags (the recursive plain-data grammar).  Tags
# 0x10..0xCF carry a small int directly (value = tag - _V_SMALL_BIAS)
# and 0xD0..0xEF a short string (length = tag - _V_SHORTSTR).
_V_NONE = 0x00
_V_TRUE = 0x01
_V_FALSE = 0x02
_V_INT = 0x03
_V_FLOAT = 0x04
_V_STR = 0x05
_V_BYTES = 0x06
_V_LIST = 0x07
_V_TUPLE = 0x08
_V_DICT = 0x09
_V_SET = 0x0A
_V_FROZENSET = 0x0B
_V_STRREF = 0x0D  # backref into the per-record string memo
_V_INTLIST = 0x0E  # non-empty all-int list, delta-coded
_V_DICTLIST = 0x0F  # list of >= 2 dicts sharing one key row

_V_SMALL_MIN = 0x10
_V_SMALL_BIAS = 0x30  # tag 0x10..0xCF -> int -32..159
_V_SHORTSTR = 0xD0    # tag 0xD0..0xEF -> str of byte length 0..31
_V_SHORTSTR_END = 0xF0

#: Same bound as ``validate_plain_data`` — the fast path must reject
#: exactly what the pickle path rejects.
_MAX_DEPTH = 100

#: Strings shorter than this are cheaper to re-emit than to memoize.
_MEMO_MIN_CHARS = 2

_pack_double = struct.Struct(">d").pack
_unpack_double = struct.Struct(">d").unpack_from


class _Unencodable(Exception):
    """Internal: the record's shape deviates from the closed schema.

    Raised mid-fast-path to abandon the layout encoding; the caller
    falls back to the tagged pickle (which validates and either encodes
    the record or raises the same ``StorageError`` pickle mode would).
    """


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------


def _append_uvarint(out: bytearray, value: int) -> None:
    """LEB128-style unsigned varint (7 bits per byte, MSB continues)."""
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_svarint(out: bytearray, value: int) -> None:
    """Zigzag-mapped signed varint; handles arbitrary-precision ints."""
    if value >= 0:
        value <<= 1
    else:
        value = ((-value) << 1) - 1
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(view: "bytes | memoryview", pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = view[pos]  # IndexError on truncation; decode() translates
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_svarint(view: "bytes | memoryview", pos: int) -> tuple[int, int]:
    raw, pos = _read_uvarint(view, pos)
    if raw & 1:
        return -((raw + 1) >> 1), pos
    return raw >> 1, pos


# ---------------------------------------------------------------------------
# the recursive plain-data value grammar
# ---------------------------------------------------------------------------


def _append_str(out: bytearray, text: str, memo: dict[str, int]) -> None:
    ref = memo.get(text)
    if ref is not None:
        out.append(_V_STRREF)
        _append_uvarint(out, ref)
        return
    data = text.encode("utf-8")
    size = len(data)
    if size < 32:
        out.append(_V_SHORTSTR + size)
    else:
        out.append(_V_STR)
        _append_uvarint(out, size)
    out += data
    if len(text) >= _MEMO_MIN_CHARS:
        memo[text] = len(memo)


def _append_value(
    out: bytearray, value: object, memo: dict[str, int], depth: int
) -> None:
    """Encode one plain-data value; :class:`_Unencodable` on anything else.

    Exact-type dispatch: subclasses of the plain types would survive a
    pickle round-trip as their subclass, which the layout cannot
    represent — they take the fallback instead.  The depth bound is
    checked at entry for *every* value, exactly like
    ``validate_plain_data``, so the grammar accepts precisely the values
    the pickle path would accept.
    """
    if depth > _MAX_DEPTH:
        raise _Unencodable
    cls = type(value)
    if cls is int:
        if -32 <= value < 160:  # type: ignore[operator]
            out.append(value + _V_SMALL_BIAS)  # type: ignore[arg-type]
        else:
            out.append(_V_INT)
            _append_svarint(out, value)  # type: ignore[arg-type]
        return
    if cls is str:
        _append_str(out, value, memo)  # type: ignore[arg-type]
        return
    if value is None:
        out.append(_V_NONE)
    elif value is True:
        out.append(_V_TRUE)
    elif value is False:
        out.append(_V_FALSE)
    elif cls is float:
        out.append(_V_FLOAT)
        out += _pack_double(value)
    elif cls is list:
        items = value  # type: ignore[assignment]
        count = len(items)  # type: ignore[arg-type]
        if count and all(type(item) is int for item in items):  # type: ignore[union-attr]
            out.append(_V_INTLIST)
            if count < 0x80:
                out.append(count)
            else:
                _append_uvarint(out, count)
            previous = 0
            for item in items:  # type: ignore[union-attr]
                delta = item - previous
                previous = item
                enc = delta << 1 if delta >= 0 else ((-delta) << 1) - 1
                while enc > 0x7F:
                    out.append((enc & 0x7F) | 0x80)
                    enc >>= 7
                out.append(enc)
        elif (
            count >= 2
            and depth < _MAX_DEPTH  # the element dicts sit at depth + 1
            and type(items[0]) is dict  # type: ignore[index]
            and all(
                type(item) is dict and list(item) == list(items[0])  # type: ignore[index]
                for item in items  # type: ignore[union-attr]
            )
        ):
            # Uniform rows (e.g. BLAST hit lists): one key row, then
            # values only — dict keys are not re-encoded per element.
            out.append(_V_DICTLIST)
            if count < 0x80:
                out.append(count)
            else:
                _append_uvarint(out, count)
            keys = list(items[0])  # type: ignore[index]
            _append_uvarint(out, len(keys))
            for key in keys:
                _append_value(out, key, memo, depth + 2)
            for item in items:  # type: ignore[union-attr]
                for cell in item.values():
                    _append_value(out, cell, memo, depth + 2)
        else:
            out.append(_V_LIST)
            if count < 0x80:
                out.append(count)
            else:
                _append_uvarint(out, count)
            for item in items:  # type: ignore[union-attr]
                _append_value(out, item, memo, depth + 1)
    elif cls is dict:
        out.append(_V_DICT)
        count = len(value)  # type: ignore[arg-type]
        if count < 0x80:
            out.append(count)
        else:
            _append_uvarint(out, count)
        for key, item in value.items():  # type: ignore[attr-defined]
            _append_value(out, key, memo, depth + 1)
            _append_value(out, item, memo, depth + 1)
    elif cls is tuple:
        out.append(_V_TUPLE)
        count = len(value)  # type: ignore[arg-type]
        if count < 0x80:
            out.append(count)
        else:
            _append_uvarint(out, count)
        for item in value:  # type: ignore[attr-defined]
            _append_value(out, item, memo, depth + 1)
    elif cls is bytes:
        out.append(_V_BYTES)
        _append_uvarint(out, len(value))  # type: ignore[arg-type]
        out += value  # type: ignore[arg-type]
    elif cls is set:
        out.append(_V_SET)
        _append_uvarint(out, len(value))  # type: ignore[arg-type]
        for item in value:  # type: ignore[attr-defined]
            _append_value(out, item, memo, depth + 1)
    elif cls is frozenset:
        out.append(_V_FROZENSET)
        _append_uvarint(out, len(value))  # type: ignore[arg-type]
        for item in value:  # type: ignore[attr-defined]
            _append_value(out, item, memo, depth + 1)
    else:
        raise _Unencodable


def _read_value(
    view: "bytes | memoryview", pos: int, memo: list[str]
) -> tuple[object, int]:
    # The decode hot loop: single-byte forms (small ints, short strings,
    # one-byte counts and varints) are read inline, without the helper
    # calls the cold branches use — per-record wall time is what the
    # fast-path layouts buy, and call overhead would hand it back.
    tag = view[pos]
    pos += 1
    if tag >= _V_SMALL_MIN:
        if tag < _V_SHORTSTR:
            return tag - _V_SMALL_BIAS, pos
        if tag < _V_SHORTSTR_END:
            end = pos + (tag - _V_SHORTSTR)
            if end > len(view):
                raise StorageError("corrupt record payload: truncated string")
            text = str(view[pos:end], "utf-8")
            if len(text) >= _MEMO_MIN_CHARS:
                memo.append(text)
            return text, end
        raise StorageError(
            f"corrupt record payload: unknown value tag {tag:#04x}"
        )
    if tag == _V_NONE:
        return None, pos
    if tag == _V_TRUE:
        return True, pos
    if tag == _V_FALSE:
        return False, pos
    if tag == _V_INT:
        return _read_svarint(view, pos)
    if tag == _V_STR:
        length, pos = _read_uvarint(view, pos)
        end = pos + length
        if end > len(view):
            raise StorageError("corrupt record payload: truncated string")
        text = str(view[pos:end], "utf-8")
        if len(text) >= _MEMO_MIN_CHARS:
            memo.append(text)
        return text, end
    if tag == _V_STRREF:
        ref, pos = _read_uvarint(view, pos)
        if ref >= len(memo):
            raise StorageError(
                f"corrupt record payload: string backref {ref} out of range"
            )
        return memo[ref], pos
    if tag == _V_INTLIST:
        count = view[pos]
        pos += 1
        if count & 0x80:
            count, pos = _read_uvarint(view, pos - 1)
        previous = 0
        deltas: list[int] = []
        append = deltas.append
        for _ in range(count):
            raw = view[pos]
            pos += 1
            if raw & 0x80:
                raw &= 0x7F
                shift = 7
                while True:
                    byte = view[pos]
                    pos += 1
                    raw |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
            if raw & 1:
                previous -= (raw + 1) >> 1
            else:
                previous += raw >> 1
            append(previous)
        return deltas, pos
    if tag == _V_DICTLIST:
        count, pos = _read_uvarint(view, pos)
        width, pos = _read_uvarint(view, pos)
        keys = []
        for _ in range(width):
            key, pos = _read_value(view, pos, memo)
            keys.append(key)
        rows = []
        for _ in range(count):
            row: dict[object, object] = {}
            for key in keys:
                cell, pos = _read_value(view, pos, memo)
                row[key] = cell  # type: ignore[index]
            rows.append(row)
        return rows, pos
    if tag == _V_FLOAT:
        if pos + 8 > len(view):
            raise StorageError("corrupt record payload: truncated float")
        return _unpack_double(view, pos)[0], pos + 8
    if tag == _V_LIST or tag == _V_TUPLE:
        count = view[pos]
        pos += 1
        if count & 0x80:
            count, pos = _read_uvarint(view, pos - 1)
        items = []
        for _ in range(count):
            item, pos = _read_value(view, pos, memo)
            items.append(item)
        return (items if tag == _V_LIST else tuple(items)), pos
    if tag == _V_DICT:
        count = view[pos]
        pos += 1
        if count & 0x80:
            count, pos = _read_uvarint(view, pos - 1)
        mapping: dict[object, object] = {}
        for _ in range(count):
            key, pos = _read_value(view, pos, memo)
            item, pos = _read_value(view, pos, memo)
            mapping[key] = item  # type: ignore[index]
        return mapping, pos
    if tag == _V_BYTES:
        length, pos = _read_uvarint(view, pos)
        end = pos + length
        if end > len(view):
            raise StorageError("corrupt record payload: truncated bytes")
        return bytes(view[pos:end]), end
    if tag == _V_SET or tag == _V_FROZENSET:
        count, pos = _read_uvarint(view, pos)
        elems = []
        for _ in range(count):
            item, pos = _read_value(view, pos, memo)
            elems.append(item)
        return (set(elems) if tag == _V_SET else frozenset(elems)), pos
    raise StorageError(f"corrupt record payload: unknown value tag {tag:#04x}")


# ---------------------------------------------------------------------------
# the codec
# ---------------------------------------------------------------------------


class RecordCodec:
    """Stateful per-storage-manager record codec.

    Holds the attribute-name intern table (persisted by the owning
    manager inside its meta blob) and the manager's stats block, which
    it keeps honest: every encode bumps either ``records_fast_path`` or
    ``records_fallback``, and minting an intern id refreshes
    ``intern_table_size``.

    ``mode`` selects what :meth:`encode` writes — ``"labf"`` (fast
    paths plus tagged-pickle fallback) or ``"pickle"`` (the legacy raw
    pickle, byte-identical to the pre-codec format).  :meth:`decode`
    reads every format regardless of mode.
    """

    def __init__(self, mode: str, stats: StorageStats) -> None:
        if mode not in CODEC_NAMES:
            raise StorageError(
                f"unknown codec {mode!r}; expected one of {CODEC_NAMES}"
            )
        self.mode = mode
        self._stats = stats
        self._names: list[str] = []
        self._ids: dict[str, int] = {}

    # -- intern table ------------------------------------------------------

    def intern_names(self) -> list[str]:
        """The intern table for meta persistence (a fresh list)."""
        return list(self._names)

    def restore_intern(self, names: "list[str] | tuple[str, ...]") -> None:
        """Replace the intern table with one restored from a meta blob."""
        self._names = [str(name) for name in names]
        self._ids = {name: ident for ident, name in enumerate(self._names)}
        self._stats.intern_table_size = len(self._names)

    def _intern_id(self, name: str) -> int:
        ident = self._ids.get(name)
        if ident is None:
            ident = len(self._names)
            self._names.append(name)
            self._ids[name] = ident
            self._stats.intern_table_size = len(self._names)
        return ident

    def _intern_name(self, ident: int) -> str:
        if ident >= len(self._names):
            raise StorageError(
                f"corrupt record payload: intern id {ident} not in table "
                f"of {len(self._names)} names"
            )
        return self._names[ident]

    # -- encode ------------------------------------------------------------

    def encode(self, obj: object) -> bytes:
        """Serialize a plain-data record per the codec mode."""
        if self.mode == "labf":
            if type(obj) is dict:
                kind = obj.get("kind")
                try:
                    if kind == _KIND_STEP:
                        return self._finish(self._encode_step(obj))
                    if kind == _KIND_MATERIAL:
                        return self._finish(self._encode_material(obj))
                    if kind == _KIND_HISTORY_NODE:
                        return self._finish(self._encode_history(obj))
                except _Unencodable:
                    pass
            # Open-schema fallback: hot open records (index buckets,
            # material sets) are large int-heavy containers that C
            # pickle encodes faster than the Python value grammar, so
            # they validate and pickle like the legacy path.  Protocol-4
            # pickles begin with 0x80 (the PROTO opcode), which the tag
            # space reserves as TAG_PICKLE_RAW: no envelope byte, no
            # copy of the pickle bytes.  The explicit TAG_PICKLE stays
            # in the format for decode-side compatibility.
            validate_plain_data(obj)
            self._stats.records_fallback += 1
            return pickle.dumps(obj, protocol=4)
        validate_plain_data(obj)
        self._stats.records_fallback += 1
        return pickle.dumps(obj, protocol=4)

    def _finish(self, out: bytearray) -> bytes:
        """Count a fast-path encode; deflate large payloads that shrink.

        Only closed-schema records are deflate candidates: they carry
        the workload's bulk values (sequence data), while large open
        records are hot int-heavy structures (material sets, counters)
        where per-write deflate costs wall time for bytes nobody
        measures.
        """
        self._stats.records_fast_path += 1
        if len(out) >= COMPRESS_MIN_BYTES:
            deflated = zlib.compress(out, _COMPRESS_LEVEL)
            envelope = bytearray((TAG_DEFLATE,))
            _append_uvarint(envelope, len(out))
            envelope += deflated
            if len(envelope) < len(out):
                return bytes(envelope)
        return bytes(out)

    def _encode_step(self, obj: dict) -> bytearray:
        if obj.keys() != _STEP_KEYS:
            raise _Unencodable
        results = obj["results"]
        if type(results) is not list:
            raise _Unencodable
        out = bytearray((TAG_STEP,))
        memo: dict[str, int] = {}
        # class_version and valid_time are ints on every real step;
        # inline the small/varint forms and keep the dispatch call as
        # the anything-else fallback.
        for field in (obj["class_version"], obj["valid_time"]):
            if type(field) is int:
                if -32 <= field < 160:
                    out.append(field + _V_SMALL_BIAS)
                else:
                    out.append(_V_INT)
                    _append_svarint(out, field)
            else:
                _append_value(out, field, memo, 1)
        _append_uvarint(out, len(results))
        ids_get = self._ids.get
        for item in results:
            if type(item) is not tuple or len(item) != 2:
                raise _Unencodable
            attr, value = item
            if type(attr) is not str:
                raise _Unencodable
            ident = ids_get(attr)
            if ident is None:
                ident = self._intern_id(attr)
            if ident < 0x80:
                out.append(ident)
            else:
                _append_uvarint(out, ident)
            if type(value) is str:
                _append_str(out, value, memo)
            else:
                _append_value(out, value, memo, 3)
        _append_value(out, obj["involves"], memo, 1)
        return out

    def _encode_material(self, obj: dict) -> bytearray:
        if obj.keys() != _MATERIAL_KEYS:
            raise _Unencodable
        recent = obj["recent"]
        if type(recent) is not dict:
            raise _Unencodable
        out = bytearray((TAG_MATERIAL,))
        memo: dict[str, int] = {}
        # The header fields have fixed shapes on every real material
        # (two strings, three ints); inline those forms and keep the
        # dispatch call as the anything-else fallback.
        for field in (obj["class_name"], obj["key"]):
            if type(field) is str:
                _append_str(out, field, memo)
            else:
                _append_value(out, field, memo, 1)
        for field in (obj["created"], obj["history_head"], obj["history_len"]):
            if type(field) is int:
                if -32 <= field < 160:
                    out.append(field + _V_SMALL_BIAS)
                else:
                    out.append(_V_INT)
                    _append_svarint(out, field)
            else:
                _append_value(out, field, memo, 1)
        _append_uvarint(out, len(recent))
        ids_get = self._ids.get
        for attr, entry in recent.items():
            if type(attr) is not str:
                raise _Unencodable
            if type(entry) is not list or len(entry) != 4:
                raise _Unencodable
            ident = ids_get(attr)
            if ident is None:
                ident = self._intern_id(attr)
            if ident < 0x80:
                out.append(ident)
            else:
                _append_uvarint(out, ident)
            # Entry cells are (valid_time, step_oid, inlined, value):
            # almost always two ints, a bool and a scalar — encode the
            # common shapes without the dispatch call.
            for cell in entry:
                if type(cell) is int:
                    if -32 <= cell < 160:
                        out.append(cell + _V_SMALL_BIAS)
                    else:
                        out.append(_V_INT)
                        _append_svarint(out, cell)
                elif cell is None:
                    out.append(_V_NONE)
                elif cell is True:
                    out.append(_V_TRUE)
                elif cell is False:
                    out.append(_V_FALSE)
                else:
                    _append_value(out, cell, memo, 3)
        state = obj["state"]
        if type(state) is str:
            _append_str(out, state, memo)
        elif state is None:
            out.append(_V_NONE)
        else:
            _append_value(out, state, memo, 1)
        since = obj["state_since"]
        if type(since) is int:
            if -32 <= since < 160:
                out.append(since + _V_SMALL_BIAS)
            else:
                out.append(_V_INT)
                _append_svarint(out, since)
        else:
            _append_value(out, since, memo, 1)
        return out

    def _encode_history(self, obj: dict) -> bytearray:
        if obj.keys() != _HISTORY_KEYS:
            raise _Unencodable
        out = bytearray((TAG_HISTORY_NODE,))
        memo: dict[str, int] = {}
        _append_value(out, obj["step_oids"], memo, 1)
        _append_value(out, obj["next"], memo, 1)
        return out

    # -- decode ------------------------------------------------------------

    def decode(self, payload: "bytes | bytearray | memoryview") -> object:
        """Deserialize any codec-written payload (zero-copy for views)."""
        # bytes index faster than memoryview per byte, and the decoders
        # touch every byte; views (the mmap read path) stay un-copied.
        view: "bytes | memoryview" = (
            payload if type(payload) is bytes else memoryview(payload)
        )
        if len(view) == 0:
            raise StorageError("corrupt record payload: empty")
        tag = view[0]
        if tag == TAG_DEFLATE:
            try:
                raw_len, pos = _read_uvarint(view, 1)
                inflated = zlib.decompress(view[pos:])
            except (zlib.error, IndexError) as exc:
                raise StorageError(
                    f"corrupt record payload: bad deflate envelope ({exc})"
                ) from exc
            if len(inflated) != raw_len:
                raise StorageError(
                    f"corrupt record payload: deflate envelope declares "
                    f"{raw_len} bytes, holds {len(inflated)}"
                )
            view = inflated
            if len(view) == 0:
                raise StorageError("corrupt record payload: empty envelope")
            tag = view[0]
            if tag == TAG_DEFLATE:
                raise StorageError(
                    "corrupt record payload: nested deflate envelope"
                )
        if tag == TAG_PICKLE_RAW or tag == TAG_PICKLE:
            body = view if tag == TAG_PICKLE_RAW else view[1:]
            try:
                return pickle.loads(body)
            # Corrupt payloads raise whatever opcode pickle trips over;
            # translate them all into the stack's corruption error.
            except Exception as exc:  # lint: ignore[LF06]
                raise StorageError(f"corrupt record payload: {exc}") from exc
        try:
            if tag == TAG_STEP:
                obj, pos = self._decode_step(view, 1)
            elif tag == TAG_MATERIAL:
                obj, pos = self._decode_material(view, 1)
            elif tag == TAG_HISTORY_NODE:
                obj, pos = self._decode_history(view, 1)
            elif tag == TAG_PLAIN:
                obj, pos = _read_value(view, 1, [])
            else:
                raise StorageError(
                    f"corrupt record payload: unknown codec tag {tag:#04x}"
                )
        except IndexError:
            raise StorageError("corrupt record payload: truncated") from None
        if pos != len(view):
            raise StorageError(
                f"corrupt record payload: {len(view) - pos} trailing bytes"
            )
        return obj

    def _decode_step(
        self, view: "bytes | memoryview", pos: int
    ) -> tuple[dict, int]:
        memo: list[str] = []
        class_version, pos = _read_value(view, pos, memo)
        valid_time, pos = _read_value(view, pos, memo)
        count, pos = _read_uvarint(view, pos)
        results = []
        for _ in range(count):
            ident = view[pos]
            pos += 1
            if ident & 0x80:
                ident, pos = _read_uvarint(view, pos - 1)
            value, pos = _read_value(view, pos, memo)
            results.append((self._intern_name(ident), value))
        involves, pos = _read_value(view, pos, memo)
        return {
            "kind": _KIND_STEP,
            "class_version": class_version,
            "valid_time": valid_time,
            "results": results,
            "involves": involves,
        }, pos

    def _decode_material(
        self, view: "bytes | memoryview", pos: int
    ) -> tuple[dict, int]:
        memo: list[str] = []
        class_name, pos = _read_value(view, pos, memo)
        key, pos = _read_value(view, pos, memo)
        created, pos = _read_value(view, pos, memo)
        history_head, pos = _read_value(view, pos, memo)
        history_len, pos = _read_value(view, pos, memo)
        count, pos = _read_uvarint(view, pos)
        recent: dict[str, list] = {}
        for _ in range(count):
            ident = view[pos]
            pos += 1
            if ident & 0x80:
                ident, pos = _read_uvarint(view, pos - 1)
            valid_time, pos = _read_value(view, pos, memo)
            step_oid, pos = _read_value(view, pos, memo)
            inlined, pos = _read_value(view, pos, memo)
            value, pos = _read_value(view, pos, memo)
            recent[self._intern_name(ident)] = [
                valid_time, step_oid, inlined, value,
            ]
        state, pos = _read_value(view, pos, memo)
        state_since, pos = _read_value(view, pos, memo)
        return {
            "kind": _KIND_MATERIAL,
            "class_name": class_name,
            "key": key,
            "created": created,
            "history_head": history_head,
            "history_len": history_len,
            "recent": recent,
            "state": state,
            "state_since": state_since,
        }, pos

    def _decode_history(
        self, view: "bytes | memoryview", pos: int
    ) -> tuple[dict, int]:
        memo: list[str] = []
        step_oids, pos = _read_value(view, pos, memo)
        next_node, pos = _read_value(view, pos, memo)
        return {
            "kind": _KIND_HISTORY_NODE,
            "step_oids": step_oids,
            "next": next_node,
        }, pos
