"""Offline integrity checking for page stores.

``verify(sm)`` walks a :class:`~repro.storage.base.PagedStorageManager`
and cross-checks every structural invariant the implementation relies
on.  Tests call it after property-based operation sequences and after
reopen; it is also handy when developing a new storage manager.

Checked invariants:

I1  every directory entry resolves to a readable slot;
I2  every record deserializes;
I3  no two directory entries share a (page, slot) location;
I4  every occupied slot is referenced by exactly one directory entry
    (no orphans leaked by delete/rewrite paths);
I5  each page's ``used_bytes`` equals header + sum of its charges;
I6  every page belongs to exactly one segment's page list, and the
    page's ``segment_id`` agrees;
I7  every root names a live oid;
I8  no unresolved problems were recorded when the store was opened
    (a stale metadata checkpoint or torn pages found on reopen —
    cleared only by ``recover()``);
I9  every on-disk page passes trailer validation (magic + checksum)
    and carries a commit epoch no newer than the store's current one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.storage import serializer
from repro.storage.base import PagedStorageManager
from repro.storage.page import PAGE_HEADER_BYTES


@dataclass
class IntegrityReport:
    """Outcome of a verification pass."""

    manager: str = ""
    objects_checked: int = 0
    pages_checked: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def fail(self, message: str) -> None:
        self.problems.append(message)

    def raise_if_bad(self) -> None:
        if self.problems:
            raise AssertionError(
                "storage integrity violated:\n  " + "\n  ".join(self.problems)
            )


def verify(sm: PagedStorageManager) -> IntegrityReport:
    """Run all integrity checks; never modifies the store."""
    report = IntegrityReport(manager=sm.name)

    # collect every location referenced by the directory
    directory = sm.directory_items()
    referenced: dict[tuple[int, int], int] = {}
    for oid, entry in directory:
        locations = entry[1] if entry[0] == "L" else [entry]
        for location in locations:
            location = tuple(location)
            if location in referenced:
                report.fail(
                    f"I3: oids {referenced[location]} and {oid} both claim "
                    f"location {location}"
                )
            referenced[location] = oid

    # I1 + I2: every object readable and decodable
    live_oids = set()
    for oid, _entry in directory:
        live_oids.add(oid)
        try:
            record = sm.read(oid)
        except StorageError as exc:
            report.fail(f"I1/I2: oid {oid} unreadable: {exc}")
            continue
        try:
            serializer.validate_plain_data(record)
        except StorageError as exc:
            report.fail(f"I2: oid {oid} holds non-plain data: {exc}")
        report.objects_checked += 1

    # segment membership map (I6)
    page_to_segment: dict[int, int] = {}
    for segment in sm.segments():
        for page_id in segment.page_ids:
            if page_id in page_to_segment:
                report.fail(
                    f"I6: page {page_id} listed by two segments "
                    f"({page_to_segment[page_id]} and {segment.segment_id})"
                )
            page_to_segment[page_id] = segment.segment_id

    # per-page checks (I4, I5, I6)
    all_page_ids = sorted(page_to_segment)
    for page_id in all_page_ids:
        try:
            page = sm.fetch_page(page_id)
        except StorageError as exc:
            report.fail(f"I6: page {page_id} unreadable: {exc}")
            continue
        report.pages_checked += 1

        if page.segment_id != page_to_segment[page_id]:
            report.fail(
                f"I6: page {page_id} says segment {page.segment_id}, "
                f"segment table says {page_to_segment[page_id]}"
            )

        expected_used = PAGE_HEADER_BYTES + page.charge_bytes
        if page.used_bytes != expected_used:
            report.fail(
                f"I5: page {page_id} used_bytes {page.used_bytes} != "
                f"header + charges {expected_used}"
            )

        for slot in page.slots():
            if (page_id, slot) not in referenced:
                report.fail(
                    f"I4: orphan record at page {page_id} slot {slot} "
                    "(occupied but unreferenced)"
                )

    # dangling directory locations (pages that no segment owns)
    for (page_id, slot), oid in referenced.items():
        if page_id not in page_to_segment:
            report.fail(
                f"I6: oid {oid} references page {page_id} owned by no segment"
            )

    # I7: roots point at live objects
    for name, oid in sm.root_items():
        if oid not in live_oids:
            report.fail(f"I7: root {name!r} names dead oid {oid}")

    # I8: unresolved crash evidence found when the store was opened
    # (stale checkpoint, torn pages).  Only recover() clears these.
    for problem in sm.open_problems():
        report.fail(f"I8: {problem}")

    # I9: live disk scan — no torn page, no page stamped with a commit
    # epoch beyond the store's current one.
    for problem in sm.disk_issues():
        report.fail(f"I9: {problem}")

    return report
