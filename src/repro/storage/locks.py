"""Page-level lock manager for the ObjectStore-style store.

The paper notes that ObjectStore "offers concurrent access with lock
based concurrency control implemented in a page server that mediates all
access to the database", while Texas does not support concurrent access
at all.  The benchmark itself is single-client, so this manager exists to
make the usability difference real and testable: multiple clients can
attach to an :class:`ObjectStoreSM`, their page locks are tracked and
conflicts detected, whereas the Texas store refuses a second client.

The simulation is single-process, so conflicting requests do not block —
they raise :class:`~repro.errors.LockError` and bump the ``lock_waits``
counter (a blocked 1996 client would have waited here).  The served
layer (``repro.server``) turns that raise back into the queued-wait +
bounded-retry discipline a real page server offers.

Every grant is reported as a :class:`LockGrant`, because a multi-page
acquisition that fails partway must undo exactly what it changed:

* a :attr:`~LockGrant.NEW` grant is undone by *releasing* the page;
* an :attr:`~LockGrant.UPGRADED` grant (SHARED promoted to EXCLUSIVE)
  is undone by *downgrading* back to SHARED — releasing it would drop a
  lock the client held before the failed call, and keeping it EXCLUSIVE
  would wrongly refuse other readers for the life of the session;
* a :attr:`~LockGrant.HELD` no-op needs no undo at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import LockError
from repro.storage.stats import StorageStats


class LockMode(Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class LockGrant(Enum):
    """What :meth:`LockManager.acquire` actually changed."""

    NEW = "new"            # the client did not hold the page before
    UPGRADED = "upgraded"  # SHARED promoted to EXCLUSIVE
    HELD = "held"          # no-op: already held in this mode (or stronger)


@dataclass
class _PageLock:
    holders: dict[str, LockMode] = field(default_factory=dict)

    def compatible(self, client: str, mode: LockMode) -> bool:
        for holder, held in self.holders.items():
            if holder == client:
                continue
            if mode is LockMode.EXCLUSIVE or held is LockMode.EXCLUSIVE:
                return False
        return True


class LockManager:
    """Tracks shared/exclusive page locks per client."""

    def __init__(self, stats: StorageStats | None = None) -> None:
        self._locks: dict[int, _PageLock] = {}
        self._client_pages: dict[str, set[int]] = {}
        self._stats = stats or StorageStats()

    def acquire(self, client: str, page_id: int, mode: LockMode) -> LockGrant:
        """Grant a lock or raise :class:`LockError` on conflict.

        Re-acquiring a held lock is a no-op (:attr:`LockGrant.HELD`);
        shared -> exclusive upgrade is granted when no other client
        holds the page (:attr:`LockGrant.UPGRADED`).  The grant kind
        tells a multi-page caller how to back out on partial failure:
        release NEW pages, downgrade UPGRADED ones.

        The conflict path mutates nothing but ``lock_waits`` — retrying
        the same request must not double-count ``lock_acquisitions`` or
        disturb :meth:`holders`.
        """
        lock = self._locks.get(page_id)
        held = lock.holders.get(client) if lock is not None else None
        if held is mode or (held is LockMode.EXCLUSIVE and mode is LockMode.SHARED):
            return LockGrant.HELD
        if lock is not None and not lock.compatible(client, mode):
            self._stats.lock_waits += 1
            raise LockError(
                f"client {client!r} cannot lock page {page_id} in mode "
                f"{mode.value}: held by {sorted(h for h in lock.holders if h != client)}"
            )
        if lock is None:
            lock = self._locks[page_id] = _PageLock()
        lock.holders[client] = mode
        if held is None:
            self._client_pages.setdefault(client, set()).add(page_id)
            self._stats.lock_acquisitions += 1
            return LockGrant.NEW
        self._stats.lock_upgrades += 1
        return LockGrant.UPGRADED

    def downgrade(self, client: str, page_id: int) -> bool:
        """Demote an EXCLUSIVE hold back to SHARED.

        The undo for an :attr:`LockGrant.UPGRADED` grant when a
        multi-page acquisition fails partway.  Returns True if the
        client held the page EXCLUSIVE; a SHARED hold (or no hold) is
        left untouched.
        """
        lock = self._locks.get(page_id)
        if lock is None or lock.holders.get(client) is not LockMode.EXCLUSIVE:
            return False
        lock.holders[client] = LockMode.SHARED
        return True

    def release(self, client: str, page_id: int) -> bool:
        """Release one page lock; returns True if the client held it."""
        pages = self._client_pages.get(client)
        if pages is None or page_id not in pages:
            return False
        pages.discard(page_id)
        if not pages:
            del self._client_pages[client]
        lock = self._locks.get(page_id)
        if lock is not None:
            lock.holders.pop(client, None)
            if not lock.holders:
                del self._locks[page_id]
        return True

    def release_all(self, client: str) -> int:
        """Release every lock the client holds (end of transaction)."""
        pages = self._client_pages.pop(client, set())
        for page_id in pages:
            lock = self._locks.get(page_id)
            if lock is not None:
                lock.holders.pop(client, None)
                if not lock.holders:
                    del self._locks[page_id]
        return len(pages)

    def holders(self, page_id: int) -> dict[str, LockMode]:
        lock = self._locks.get(page_id)
        return dict(lock.holders) if lock else {}

    def held_pages(self, client: str) -> set[int]:
        return set(self._client_pages.get(client, ()))
