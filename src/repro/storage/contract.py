"""The frozen storage-backend contract.

This module is the *interface half* of the storage layer: the abstract
:class:`StorageManager` API every server version implements, the
:class:`CacheHooks` protocol an attached object cache must satisfy, and
the capability flags (``persistent``, ``supports_concurrency``,
``supports_segments``, ``supports_crash_matrix``) the backend registry
(``repro.storage.registry``) queries to decide where a backend may run.

Nothing here constructs pages, pools or disks — the shared paged
implementation lives in ``repro.storage.base`` — so a new backend can
depend on the contract without dragging in any mechanism it replaces.
LabBase (Architecture C) is written once against this interface, exactly
as the paper runs "virtually the same LabBase implementation" over each
storage manager.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator, Protocol

if TYPE_CHECKING:
    from repro.storage.integrity import IntegrityReport

from repro.errors import UnknownOidError
from repro.storage.stats import StorageStats


class CacheHooks(Protocol):
    """What a storage manager asks of an attached object cache."""

    def on_sm_begin(self) -> None: ...
    def on_sm_drain(self) -> None: ...
    def on_sm_txn_end(self) -> None: ...
    def on_sm_invalidate(self) -> None: ...
    def on_sm_delete(self, oid: int) -> None: ...


class StorageManager(abc.ABC):
    """Abstract persistent object store.

    Objects are plain data (see ``repro.storage.serializer``) addressed by
    integer oids.  Named *roots* bootstrap access to everything else.
    """

    name: str = "abstract"
    supports_segments: bool = False
    supports_concurrency: bool = False
    persistent: bool = True
    #: Whether the backend accepts a ``fault_injector`` and keeps the
    #: deterministic write-point sequence the crash matrix sweeps.  Main
    #: memory backends have no disk to tear, so they opt out.
    supports_crash_matrix: bool = False

    stats: StorageStats

    #: Attached object caches (see ``repro.storage.objcache``).  Class-level
    #: empty tuple so managers without caches pay nothing; ``attach_cache``
    #: installs a per-instance list.
    _caches: tuple[CacheHooks, ...] | list[CacheHooks] = ()

    # -- object-cache hooks --------------------------------------------------
    #
    # An object cache layered above this manager registers itself here so
    # the manager can keep it coherent: transactions drain it, aborts and
    # recovery invalidate it, deletes evict.  Concrete managers call the
    # ``_*_caches`` helpers from their commit/abort/delete/recover paths.

    def attach_cache(self, cache: CacheHooks) -> None:
        """Register an object cache for coherence callbacks."""
        if not isinstance(self._caches, list):
            self._caches = []
        self._caches.append(cache)

    def detach_cache(self, cache: CacheHooks) -> None:
        """Unregister a cache (missing caches are ignored)."""
        if isinstance(self._caches, list) and cache in self._caches:
            self._caches.remove(cache)

    def _drain_caches(self) -> None:
        for cache in self._caches:
            cache.on_sm_drain()

    def _begin_caches(self) -> None:
        for cache in self._caches:
            cache.on_sm_begin()

    def _end_txn_caches(self) -> None:
        for cache in self._caches:
            cache.on_sm_txn_end()

    def _invalidate_caches(self) -> None:
        for cache in self._caches:
            cache.on_sm_invalidate()

    def _evict_caches(self, oid: int) -> None:
        for cache in self._caches:
            cache.on_sm_delete(oid)

    # -- lifecycle -----------------------------------------------------------

    @abc.abstractmethod
    def close(self) -> None:
        """Flush and release resources; further calls raise."""

    # -- segments --------------------------------------------------------------

    @abc.abstractmethod
    def create_segment(self, name: str, description: str = "") -> str:
        """Create (or return) a named clustering unit.

        Managers without segment support accept the call but place all
        data in the single default segment — matching how code written
        for ObjectStore runs unchanged, just unclustered, on Texas.
        """

    @abc.abstractmethod
    def segment_names(self) -> list[str]:
        """Names of existing segments."""

    # -- objects --------------------------------------------------------------

    @abc.abstractmethod
    def allocate_write(self, obj: object, segment: str | None = None) -> int:
        """Store a new object, returning its oid."""

    @abc.abstractmethod
    def write(self, oid: int, obj: object) -> None:
        """Overwrite an existing object in place."""

    @abc.abstractmethod
    def read(self, oid: int) -> object:
        """Fetch an object by oid."""

    @abc.abstractmethod
    def exists(self, oid: int) -> bool:
        """Whether the oid names a stored object."""

    @abc.abstractmethod
    def delete(self, oid: int) -> None:
        """Remove an object."""

    @abc.abstractmethod
    def oids(self) -> Iterator[int]:
        """Iterate every stored oid (testing / integrity checks)."""

    def pages_of(self, oid: int) -> list[int]:
        """Page ids holding an object's record(s), in storage order.

        Part of the public API so layers above (the lock manager maps
        oids to page-granularity locks) need not reach into directory
        internals.  Managers without paged storage hold objects in no
        page at all and return an empty list; an unknown oid raises
        :class:`UnknownOidError` either way.
        """
        if not self.exists(oid):
            raise UnknownOidError(oid)
        return []

    # -- roots ---------------------------------------------------------------

    @abc.abstractmethod
    def set_root(self, name: str, oid: int) -> None:
        """Bind a well-known name to an oid."""

    @abc.abstractmethod
    def get_root(self, name: str) -> int | None:
        """Look up a root binding, or None."""

    # -- transactions -----------------------------------------------------------

    #: Set by subclasses between begin() and commit()/abort().
    _in_txn: bool = False

    @property
    def in_transaction(self) -> bool:
        """Whether an explicit transaction is open (no nesting)."""
        return self._in_txn

    @abc.abstractmethod
    def begin(self) -> None:
        """Start a transaction (no nesting)."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Make all writes durable; also usable outside a transaction
        as a checkpoint."""

    @abc.abstractmethod
    def abort(self) -> None:
        """Undo all writes since :meth:`begin`."""

    # -- accounting ----------------------------------------------------------

    @abc.abstractmethod
    def size_bytes(self) -> int:
        """Total database size on disk (the paper's size column)."""

    # -- crash consistency -----------------------------------------------------

    def verify(self) -> "IntegrityReport":
        """Check on-disk and in-memory invariants; see ``integrity``.

        The default (for non-paged managers, which hold no disk state
        that could tear) reports success.
        """
        from repro.storage.integrity import IntegrityReport

        return IntegrityReport(manager=self.name, problems=[])

    def recover(self) -> dict[str, int]:
        """Repair state after a crash-reopen.

        The default is a no-op: managers without persistent state have
        nothing to reconcile.  Returns the same counter dict as the
        paged implementation so drivers can report uniformly.
        """
        self._invalidate_caches()
        return {"dropped_objects": 0, "dropped_roots": 0, "vacuumed_slots": 0}

    # -- convenience ---------------------------------------------------------

    def object_count(self) -> int:
        return sum(1 for _ in self.oids())
