"""Counters every storage manager maintains.

The benchmark harness reads these to fill the paper's resource table:
``major_faults`` stands in for the paper's ``majflt`` column (see
``repro.util.timing`` for why), and the remaining counters feed the
locality and ablation experiments (E5, A2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StorageStats:
    """Mutable counter block attached to a storage manager."""

    page_reads: int = 0          # pages brought into the buffer pool from disk
    page_writes: int = 0         # pages written back to disk
    major_faults: int = 0        # buffer-pool misses (the simulated majflt)
    buffer_hits: int = 0         # buffer-pool hits
    objects_read: int = 0
    objects_written: int = 0
    objects_deleted: int = 0
    bytes_read: int = 0          # serialized record bytes deserialized
    bytes_written: int = 0       # serialized record bytes written
    swizzle_operations: int = 0  # Texas: pointer slots swizzled at fault time
    lock_acquisitions: int = 0   # ObjectStore: page-lock grants
    lock_waits: int = 0          # ObjectStore: lock conflicts observed
    lock_upgrades: int = 0       # ObjectStore: SHARED -> EXCLUSIVE promotions
    commits: int = 0
    aborts: int = 0
    cache_hits: int = 0          # object-cache: reads served in memory
    cache_misses: int = 0        # object-cache: reads that hit the SM
    cache_coalesced: int = 0     # object-cache: writes absorbed pre-commit
    cache_evictions: int = 0     # object-cache: LRU evictions of clean objects
    pages_prefetched: int = 0    # read-ahead: pages staged by vectored reads
    prefetch_hits: int = 0       # read-ahead: faults absorbed by staged pages
    io_batches: int = 0          # vectored disk transfers (>= 2 pages each)
    mapped_reads: int = 0        # mmap backend: demand reads served zero-copy
    records_fast_path: int = 0   # codec: records encoded via a fixed layout
    records_fallback: int = 0    # codec: records encoded via the pickle fallback
    intern_table_size: int = 0   # codec: attribute names in the intern table
    meta_bytes_written: int = 0  # checkpoint blob bytes physically written
    group_commits: int = 0       # server: storage commits closing a group
    sessions_per_group: int = 0  # server: session-units fused into those groups
    commit_stalls: int = 0       # server: groups forced closed by a lock conflict

    def reset(self) -> None:
        """Zero every counter (used between benchmark intervals)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """An immutable copy of the counters as a plain dict."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    def delta(self, earlier: dict[str, int]) -> dict[str, int]:
        """Counter increments since an earlier :meth:`snapshot`."""
        return {
            name: getattr(self, name) - earlier.get(name, 0)
            for name in self.__dataclass_fields__
        }

    @property
    def hit_ratio(self) -> float:
        """Buffer-pool hit ratio in [0, 1]; 1.0 when no accesses occurred."""
        accesses = self.buffer_hits + self.major_faults
        if accesses == 0:
            return 1.0
        return self.buffer_hits / accesses

    @property
    def cache_hit_ratio(self) -> float:
        """Object-cache hit ratio in [0, 1]; 1.0 when no reads occurred."""
        accesses = self.cache_hits + self.cache_misses
        if accesses == 0:
            return 1.0
        return self.cache_hits / accesses

    @property
    def prefetch_absorption(self) -> float:
        """Faults absorbed by read-ahead, over absorbed + still-missed."""
        staged_or_missed = self.prefetch_hits + self.major_faults
        if staged_or_missed == 0:
            return 0.0
        return self.prefetch_hits / staged_or_missed

    @property
    def coalesce_ratio(self) -> float:
        """Object writes absorbed pre-commit, over absorbed + drained."""
        writes = self.cache_coalesced + self.objects_written
        if writes == 0:
            return 0.0
        return self.cache_coalesced / writes

    @property
    def fast_path_ratio(self) -> float:
        """Records encoded via a fixed layout, over all records encoded."""
        encoded = self.records_fast_path + self.records_fallback
        if encoded == 0:
            return 0.0
        return self.records_fast_path / encoded

    @property
    def mapped_read_ratio(self) -> float:
        """Demand reads served zero-copy from the map, per page read."""
        if self.page_reads == 0:
            return 0.0
        return self.mapped_reads / self.page_reads

    @property
    def group_width(self) -> float:
        """Mean session-units fused per group commit; 0.0 unserved."""
        if self.group_commits == 0:
            return 0.0
        return self.sessions_per_group / self.group_commits

    @property
    def commit_stall_ratio(self) -> float:
        """Groups forced closed by a lock conflict, per group commit."""
        if self.group_commits == 0:
            return 0.0
        return self.commit_stalls / self.group_commits


# Field list is part of the public contract: tests assert that no counter
# is silently dropped when the harness renders extended reports.
STAT_FIELDS: tuple[str, ...] = tuple(StorageStats.__dataclass_fields__)
