"""The "Texas+TC" server version: Texas plus client-level clustering.

The paper describes this version as "almost identical to Texas, and using
the same storage manager, but with additional object clustering
implemented in client code".  We model it as the Texas store (same
power-of-two cells, same swizzle-at-fault cost, same single-client rule)
with the segment hints *honoured* — the clustering the client code
achieved by steering allocations — at the price of extra client CPU per
allocation, which is why Texas+TC shows the highest user-CPU column in
the paper's table.

Because the hints are honoured, the storage layer's segment-aware
read-ahead sees real clustering here: a cold scan of a Texas+TC segment
streams in long contiguous runs like OStore's, while plain Texas — same
storage manager, hints ignored — only gets runs as long as allocation
order happens to provide.
"""

from __future__ import annotations

from repro.storage.registry import register_backend
from repro.storage.texas import TexasSM


@register_backend(
    "Texas+TC",
    order=1,
    description="Texas plus client-code object clustering",
)
class TexasTCSM(TexasSM):
    """Texas with client-code clustering (the paper's *Texas+TC*)."""

    name = "Texas+TC"
    supports_segments = True  # clustering reinstated, in "client code"

    #: Synthetic work units per allocation spent deciding placement —
    #: the client-code clustering overhead.
    CLUSTERING_WORK = 120

    def allocate_write(self, obj: object, segment: str | None = None) -> int:
        self._burn_clustering_cpu()
        return super().allocate_write(obj, segment=segment)

    def write(self, oid: int, obj: object) -> None:
        self._burn_clustering_cpu()
        super().write(oid, obj)

    def _burn_clustering_cpu(self) -> None:
        acc = 0
        for _ in range(self.CLUSTERING_WORK):
            acc += 1
        self._clustering_sink = acc
