"""Record (de)serialization for the storage managers.

Objects handed to a storage manager must be *plain data*: combinations of
``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``, ``list``,
``tuple``, ``dict`` and ``set``.  This mirrors what the 1996 storage
managers persisted (C structs plus collections) and keeps stored state
independent of Python class definitions, which is what lets LabBase
implement schema evolution *above* the storage layer.

Pickle (protocol 4) is used as the wire format: it is deterministic for
plain data, measures realistic byte sizes for the paper's ``size (bytes)``
column, and round-trips exactly.  ``validate_plain_data`` rejects
arbitrary objects up front so a class instance can never sneak into a
page.
"""

from __future__ import annotations

import pickle

from repro.errors import StorageError

_PLAIN_SCALARS = (type(None), bool, int, float, str, bytes)


def validate_plain_data(obj: object, _depth: int = 0) -> None:
    """Raise :class:`StorageError` unless ``obj`` is plain data.

    The accepted grammar, exactly:

    * scalars — ``None``, ``bool``, ``int``, ``float``, ``str`` and
      ``bytes`` (subclasses included — they survive a pickle round-trip
      as their subclass, which is all the storage contract promises);
    * containers — ``list``, ``tuple``, ``dict``, ``set`` and
      ``frozenset`` of plain data, nested at most 100 levels deep.

    Dict keys may be any *hashable* plain data, which lets container
    keys (tuples, frozensets of plain data) through.  Note that ``set``
    and ``frozenset`` iteration order — and therefore their encoded
    bytes — follows the process hash seed for ``str``/``bytes``
    elements: records that must encode bit-identically across processes
    should store sorted lists instead.

    Depth is bounded to catch pathological self-referencing structures
    before pickle recurses into them.
    """
    if _depth > 100:
        raise StorageError("record nests deeper than 100 levels (cycle?)")
    if isinstance(obj, _PLAIN_SCALARS):
        return
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            validate_plain_data(item, _depth + 1)
        return
    if isinstance(obj, dict):
        for key, value in obj.items():
            validate_plain_data(key, _depth + 1)
            validate_plain_data(value, _depth + 1)
        return
    raise StorageError(
        f"records must be plain data; got {type(obj).__name__}"
    )


def serialize(obj: object) -> bytes:
    """Encode a plain-data object to bytes."""
    validate_plain_data(obj)
    return pickle.dumps(obj, protocol=4)


def deserialize(payload: "bytes | bytearray | memoryview") -> object:
    """Decode bytes produced by :func:`serialize`.

    Accepts any bytes-like payload — ``memoryview`` included, so the
    mmap read path can unpickle straight from a mapped page slot
    without materializing an intermediate ``bytes`` copy.
    """
    try:
        return pickle.loads(payload)
    # Corrupt payloads raise whatever opcode pickle trips over
    # (UnpicklingError, EOFError, ValueError, ...); catch them all and
    # translate into the storage stack's own corruption error.
    except Exception as exc:  # lint: ignore[LF06]
        raise StorageError(f"corrupt record payload: {exc}") from exc


def record_size(obj: object) -> int:
    """Serialized size of an object, in bytes.

    Sizing is measurement, not admission: every caller sizes records it
    already validated (or is about to store through :func:`serialize`),
    so this deliberately skips the ``validate_plain_data`` walk rather
    than paying it twice per record.
    """
    return len(pickle.dumps(obj, protocol=4))
