"""The "OStore" server version: a simulated ObjectStore v3.0.

What the paper attributes to ObjectStore, and what this class models:

* **Segments.**  The application controls clustering by placing objects
  in named segments; pages belong to one segment, so related objects are
  contiguous.  LabBase uses four segments — three small hot ones and one
  large cold one — which is exactly what our ``segment=`` hints enable.
* **Dense allocation.**  Records are packed into pages at their exact
  size (plus slot overhead), giving the smaller database file the paper's
  size column shows (16.6 MB vs Texas's 24.3-24.6 MB at 0.5X).
* **Page server with lock-based concurrency control.**  All access is
  mediated; multiple clients may attach, and their page locks are
  tracked by a :class:`~repro.storage.locks.LockManager`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import StorageError
from repro.storage.base import PagedStorageManager

if TYPE_CHECKING:
    from repro.storage.faultinject import FaultInjector
from repro.storage.buffer import DEFAULT_POOL_PAGES, DEFAULT_READAHEAD_PAGES
from repro.storage.codec import DEFAULT_CODEC
from repro.storage.locks import LockGrant, LockManager, LockMode
from repro.storage.page import exact_charge
from repro.storage.registry import register_backend


@register_backend(
    "OStore",
    order=0,
    description="ObjectStore-style: segments, dense pages, page server",
)
class ObjectStoreSM(PagedStorageManager):
    """Segment-aware page-server store (the paper's *OStore* version)."""

    name = "OStore"
    supports_segments = True
    supports_concurrency = True
    persistent = True

    def __init__(
        self,
        path: str | None = None,
        buffer_pages: int = DEFAULT_POOL_PAGES,
        checkpoint_every: int = 0,
        fault_injector: FaultInjector | None = None,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
        codec: str = DEFAULT_CODEC,
    ) -> None:
        super().__init__(
            path=path,
            buffer_pages=buffer_pages,
            charge_policy=exact_charge,
            checkpoint_every=checkpoint_every,
            fault_injector=fault_injector,
            readahead_pages=readahead_pages,
            codec=codec,
        )
        self._lock_manager = LockManager(self.stats)
        self._clients: set[str] = set()

    # -- client sessions (the concurrency surface) -----------------------------

    def attach_client(self, client: str) -> None:
        """Register a client session; any number may attach."""
        self._check_open()
        if client in self._clients:
            raise StorageError(f"client {client!r} already attached")
        self._clients.add(client)

    def detach_client(self, client: str) -> None:
        self._check_open()
        self._clients.discard(client)
        self._lock_manager.release_all(client)

    def lock_page(self, client: str, page_id: int, exclusive: bool = False) -> LockGrant:
        """Acquire a page lock on behalf of an attached client.

        Returns the :class:`LockGrant` kind (NEW / UPGRADED / HELD), so
        a multi-page caller knows how to back each page out if the
        acquisition fails partway.
        """
        self._check_open()
        if client not in self._clients:
            raise StorageError(f"client {client!r} is not attached")
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        return self._lock_manager.acquire(client, page_id, mode)

    def unlock_page(self, client: str, page_id: int) -> bool:
        """Release one page lock (backing out a failed multi-page grab)."""
        self._check_open()
        return self._lock_manager.release(client, page_id)

    def downgrade_page(self, client: str, page_id: int) -> bool:
        """Demote an EXCLUSIVE hold to SHARED (backing out an upgrade)."""
        self._check_open()
        return self._lock_manager.downgrade(client, page_id)

    def unlock_all(self, client: str) -> int:
        """Release a client's locks (transaction end)."""
        self._check_open()
        return self._lock_manager.release_all(client)

    @property
    def lock_manager(self) -> LockManager:
        return self._lock_manager
