"""The shared paged storage-manager implementation.

The abstract :class:`StorageManager` API — the contract every server
version of the benchmark runs against — lives in
``repro.storage.contract`` (re-exported here for compatibility); this
module supplies :class:`PagedStorageManager`, which implements the API
over pages, a buffer pool, and the simulated disk.  Concrete managers
differ only in the *policies* the paper attributes the measured
differences to:

* ``charge_policy`` — how record bytes map to allocated bytes
  (dense for ObjectStore, power-of-two cells for Texas);
* segment support — whether ``segment=`` placement hints are honoured
  (ObjectStore) or everything lands in one heap in allocation order
  (Texas);
* the fault hook — Texas charges pointer-swizzling work per fault;
* concurrency — ObjectStore admits multiple clients through a lock
  manager, Texas refuses a second client;
* the disk layer — the :meth:`PagedStorageManager._open_disk` hook lets
  a backend substitute the page-file implementation (the mmap-backed
  store swaps in zero-copy mapped pages) without touching any policy
  above it.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.storage.faultinject import FaultInjector
    from repro.storage.integrity import IntegrityReport

from repro.errors import (
    PageOverflowError,
    StorageClosedError,
    StorageError,
    TransactionError,
    UnknownOidError,
    UnknownSegmentError,
)
from repro.storage.buffer import (
    DEFAULT_POOL_PAGES,
    DEFAULT_READAHEAD_PAGES,
    BufferPool,
)
from repro.storage.contract import CacheHooks, StorageManager
from repro.storage.disk import PageFile
from repro.storage.page import (
    MAX_RECORD_BYTES,
    Page,
    ChargePolicy,
    exact_charge,
)
from repro.storage.segment import DEFAULT_SEGMENT, Segment
from repro.storage import serializer
from repro.storage.codec import DEFAULT_CODEC, RecordCodec
from repro.storage.stats import StorageStats
from repro.util.ids import OidAllocator

__all__ = ["CacheHooks", "StorageManager", "PagedStorageManager", "len_meta"]

#: Payload bytes per large-object chunk (kept under MAX_RECORD_BYTES with
#: room for the pickle framing of a bytes object).
CHUNK_PAYLOAD_BYTES = 3800

#: Journal marker: the oid had no directory entry before the transaction.
_ABSENT = object()


class PagedStorageManager(StorageManager):
    """Shared implementation for the page-based (persistent) managers."""

    supports_crash_matrix = True

    def __init__(
        self,
        path: str | None = None,
        buffer_pages: int = DEFAULT_POOL_PAGES,
        charge_policy: ChargePolicy = exact_charge,
        checkpoint_every: int = 0,
        fault_injector: FaultInjector | None = None,
        readahead_pages: int = DEFAULT_READAHEAD_PAGES,
        codec: str = DEFAULT_CODEC,
    ) -> None:
        """``checkpoint_every``: persist metadata every N commits
        (0 = only on close/explicit checkpoint).  Data pages are always
        flushed at commit; the metadata checkpoint bounds how much a
        crash (close() never called) can lose — see ``recover_info``.

        ``fault_injector``: a ``repro.storage.faultinject.FaultInjector``
        that makes the disk layer crash deterministically mid-workload
        (crash-consistency testing).

        ``readahead_pages``: window for segment-aware read-ahead, and
        the single switch for batched I/O overall — 0 turns off both
        the prefetcher and vectored commit writes (every transfer is
        then one page, the pre-batching behaviour).  Batching changes
        how pages travel, never which bytes land where: database files
        are bit-identical either way.

        ``codec``: record wire format, ``"labf"`` (schema-aware fast
        paths, the default) or ``"pickle"`` (the legacy raw pickle).
        Reads dispatch on the record's own tag byte, so either setting
        opens databases written under the other.
        """
        if readahead_pages < 0:
            raise ValueError("readahead_pages must be >= 0")
        self.stats = StorageStats()
        # The codec is created before the meta blob is restored: the
        # blob carries the attribute-name intern table the codec needs
        # to decode fast-path records.
        self._codec = RecordCodec(codec, self.stats)
        self.checkpoint_every = checkpoint_every
        self._commits_since_checkpoint = 0
        self._charge = charge_policy
        self._chunk_payload_bytes = self._compute_chunk_payload(charge_policy)
        self._readahead_pages = readahead_pages
        self._pages_flushed_since_checkpoint = False
        self._last_checkpoint_image: bytes | None = None
        # The manager *owns* its page file: _open_disk is the single
        # place the storage stack opens one, so every write point flows
        # through the injectable disk layer below.  Backends that swap
        # the disk implementation (mmapstore) override the hook.
        self._disk = self._open_disk(path, fault_injector)
        batched = readahead_pages > 0
        self._pool = BufferPool(
            capacity_pages=buffer_pages,
            load_page=self._load_page,
            flush_page=self._flush_page,
            stats=self.stats,
            fault_hook=self._on_fault,
            read_pages=self._disk.read_pages if batched else None,
            flush_pages=self._flush_pages if batched else None,
            readahead_pages=readahead_pages,
            prefetch_run=self._prefetch_run if batched else None,
        )
        self._closed = False
        self._in_txn = False
        # Undo journal for abort: old directory entries (or _ABSENT for
        # oids created in the txn) plus small-state copies.  A journal
        # instead of a full metadata snapshot keeps begin() O(changes),
        # not O(database) — essential for the per-transaction stream.
        self._undo_dir: dict[int, object] | None = None
        self._undo_small: dict | None = None

        meta = self._disk.read_meta()
        if meta is None:
            self._oid_alloc = OidAllocator(start=1)
            self._page_alloc = OidAllocator(start=0)
            # directory: oid -> (page_id, slot) for small records,
            #            ("L", [(page_id, slot), ...]) for chunked ones.
            self._directory: dict[int, object] = {}
            self._roots: dict[str, int] = {}
            self._segments: dict[str, Segment] = {}
            self._segment_by_id: dict[int, Segment] = {}
            self._make_segment(DEFAULT_SEGMENT, "default placement")
            self._meta_epoch = 0
            self._disk.epoch = 1
            if self._disk.page_count:
                # Pages exist but no checkpoint ever landed: the store
                # died before its first metadata write.
                self._open_problems = [
                    f"page file holds {self._disk.page_count} pages but no "
                    "metadata checkpoint exists"
                ]
            else:
                self._open_problems: list[str] = []
        else:
            self._restore_meta(meta)
            # Resume stamping in the epoch after the checkpointed one,
            # and record anything on disk that contradicts the
            # checkpoint: torn pages, or pages flushed by commits the
            # checkpoint never heard of (epoch beyond the blob's).
            self._disk.epoch = self._meta_epoch + 1
            self._open_problems = self._disk.epoch_issues(self._meta_epoch)
            # The restored state *is* the checkpointed state: a close with
            # no intervening writes can skip rewriting the blob.
            self._last_checkpoint_image = self._checkpoint_image()
        self._index_pages()

    def _open_disk(
        self, path: str | None, fault_injector: FaultInjector | None
    ) -> PageFile:
        """Open the page file this manager will own.

        The hook is the seam backends use to substitute the disk layer:
        the base opens the buffered :class:`PageFile` (wrapped for fault
        injection when the crash matrix asks), mmapstore returns the
        memory-mapped equivalents.  Overrides must honour
        ``fault_injector`` or clear ``supports_crash_matrix``.
        """
        if fault_injector is not None:
            from repro.storage.faultinject import FaultyPageFile

            return FaultyPageFile(path, fault_injector)  # lint: ignore[LF01]
        return PageFile(path)  # lint: ignore[LF01]

    # -- metadata persistence ---------------------------------------------------

    def _meta(self) -> dict:
        return {
            "manager": self.name,
            "epoch": self._disk.epoch,
            "oid_high": self._oid_alloc.high_water,
            "page_high": self._page_alloc.high_water,
            "directory": dict(self._directory),
            "roots": dict(self._roots),
            "segments": [seg.to_meta() for seg in self._segments.values()],
            "intern": self._codec.intern_names(),
        }

    def _restore_meta(self, meta: dict) -> None:
        self._meta_epoch = meta.get("epoch", 0)
        # Pre-codec meta blobs carry no intern table; an empty one is
        # right for them (their records are all raw pickles).
        self._codec.restore_intern(meta.get("intern", ()))
        self._oid_alloc = OidAllocator(start=meta["oid_high"])
        self._page_alloc = OidAllocator(start=meta["page_high"])
        self._directory = dict(meta["directory"])
        self._roots = dict(meta["roots"])
        self._segments = {}
        self._segment_by_id = {}
        for seg_meta in meta["segments"]:
            segment = Segment.from_meta(seg_meta)
            self._segments[segment.name] = segment
            self._segment_by_id[segment.segment_id] = segment

    # -- page plumbing -----------------------------------------------------------

    def _load_page(self, page_id: int) -> Page:
        image = self._disk.read_page(page_id)
        return Page.from_bytes(page_id, image)

    def _flush_page(self, page: Page) -> None:
        self._disk.write_page(page.page_id, page.to_bytes())
        self._pages_flushed_since_checkpoint = True

    def _flush_pages(self, start_page_id: int, pages: list[Page]) -> None:
        """Vectored write-back for a contiguous ascending page run."""
        self._disk.write_pages(
            start_page_id, [page.to_bytes() for page in pages]
        )
        self._pages_flushed_since_checkpoint = True

    def _on_fault(self, page: Page) -> None:
        """Policy hook: called once per buffer-pool miss."""

    def _prefetch_run(self, page_id: int) -> tuple[int, int]:
        """Segment-aware read-ahead policy: what follows a faulting page.

        The run is the faulting page's *own segment's* contiguous pages —
        read-ahead never crosses into a neighbouring segment, because a
        sequential scan of clustered data stays inside its segment and
        pages beyond the boundary belong to someone else's working set.
        For managers that ignore placement (Texas) everything lives in
        the single default segment, so the policy degrades naturally to
        flat-heap read-ahead over allocation order.
        """
        segment = self._page_segments.get(page_id)
        if segment is None:
            return page_id + 1, 0
        run = segment.contiguous_run_after(page_id, self._readahead_pages)
        # Never speculate past the end of the file: trailing pages of the
        # run may be allocated but not yet flushed (resident-only).
        run = min(run, max(0, self._disk.page_count - (page_id + 1)))
        return page_id + 1, run

    def _index_pages(self) -> None:
        """(Re)build the page -> segment map the prefetcher consults."""
        self._page_segments = {
            page_id: segment
            for segment in self._segments.values()
            for page_id in segment.page_ids
        }

    def _new_page(self, segment: Segment) -> Page:
        page = Page(self._page_alloc.allocate(), segment.segment_id)
        segment.add_page(page.page_id)
        self._page_segments[page.page_id] = segment
        self._pool.admit_new(page)
        return page

    def _make_segment(self, name: str, description: str) -> Segment:
        segment = Segment(
            segment_id=len(self._segment_by_id), name=name, description=description
        )
        self._segments[name] = segment
        self._segment_by_id[segment.segment_id] = segment
        return segment

    def _check_open(self) -> None:
        if self._closed:
            raise StorageClosedError(f"{self.name} store is closed")

    # -- segments ----------------------------------------------------------------

    def create_segment(self, name: str, description: str = "") -> str:
        self._check_open()
        if not self.supports_segments:
            # Accept and ignore: callers written for ObjectStore run
            # unchanged, they just lose clustering control.
            return DEFAULT_SEGMENT
        if name not in self._segments:
            self._make_segment(name, description)
        return name

    def segment_names(self) -> list[str]:
        return list(self._segments)

    def _resolve_segment(self, segment: str | None) -> Segment:
        if not self.supports_segments or segment is None:
            return self._segments[DEFAULT_SEGMENT]
        try:
            return self._segments[segment]
        except KeyError:
            raise UnknownSegmentError(f"unknown segment {segment!r}") from None

    def segment_of(self, oid: int) -> str:
        """Name of the segment holding an object (its first chunk)."""
        entry = self._entry(oid)
        page_id = entry[1][0][0] if entry[0] == "L" else entry[0]
        page = self._pool.fetch(page_id)
        return self._segment_by_id[page.segment_id].name

    # -- record placement ---------------------------------------------------------

    def _place_record(self, payload: bytes, segment: Segment) -> tuple[int, int]:
        """Find or open a page for a record; returns (page_id, slot)."""
        charged = self._charge(len(payload))
        for page_id in segment.candidate_pages():
            page = self._pool.fetch(page_id)
            if page.fits(charged):
                slot = page.insert(payload, charged)
                return page_id, slot
            segment.drop_candidate(page_id)
        page = self._new_page(segment)
        slot = page.insert(payload, charged)
        return page.page_id, slot

    @staticmethod
    def _compute_chunk_payload(charge_policy: ChargePolicy) -> int:
        """Largest chunk size whose *charged* size still fits a page.

        Texas's power-of-two cells charge a 3 KB chunk a full 4 KB, so
        the safe chunk size depends on the charge policy, not just on
        CHUNK_PAYLOAD_BYTES.
        """
        size = CHUNK_PAYLOAD_BYTES
        while size > 1 and charge_policy(size) > MAX_RECORD_BYTES:
            size -= 1
        return size

    def _store_payload(self, payload: bytes, segment: Segment) -> object:
        """Store a serialized record, chunking if oversized.

        Returns a directory entry: (page_id, slot) or ("L", [locations]).
        """
        charged = self._charge(len(payload))
        if charged <= MAX_RECORD_BYTES:
            return self._place_record(payload, segment)
        step = self._chunk_payload_bytes
        locations = []
        for start in range(0, len(payload), step):
            chunk = payload[start:start + step]
            locations.append(self._place_record(chunk, segment))
        return ("L", locations)

    def _free_entry(self, entry: object) -> None:
        locations = entry[1] if entry[0] == "L" else [entry]
        for page_id, slot in locations:
            page = self._pool.fetch(page_id)
            page.delete(slot)
            segment = self._segment_by_id[page.segment_id]
            segment.note_free_space(page_id, page.free_bytes)

    def _entry(self, oid: int) -> object:
        try:
            return self._directory[oid]
        except KeyError:
            raise UnknownOidError(oid) from None

    # -- object API ------------------------------------------------------------------

    def allocate_write(self, obj: object, segment: str | None = None) -> int:
        self._check_open()
        seg = self._resolve_segment(segment)
        payload = self._codec.encode(obj)
        oid = self._oid_alloc.allocate()
        self._journal_dir(oid)
        self._directory[oid] = self._store_payload(payload, seg)
        self.stats.objects_written += 1
        self.stats.bytes_written += len(payload)
        return oid

    def write(self, oid: int, obj: object) -> None:
        self._check_open()
        entry = self._entry(oid)
        payload = self._codec.encode(obj)
        charged = self._charge(len(payload))
        # Fast path: small record replaced in place on its current page.
        if entry[0] != "L" and charged <= MAX_RECORD_BYTES:
            page_id, slot = entry
            page = self._pool.fetch(page_id)
            if page.can_replace(slot, charged):
                page.replace(slot, payload, charged)
                self.stats.objects_written += 1
                self.stats.bytes_written += len(payload)
                return
        # Slow path: free old space, restore placement in the same segment.
        first_page_id = entry[1][0][0] if entry[0] == "L" else entry[0]
        segment = self._segment_by_id[self._pool.fetch(first_page_id).segment_id]
        self._journal_dir(oid)
        self._free_entry(entry)
        self._directory[oid] = self._store_payload(payload, segment)
        self.stats.objects_written += 1
        self.stats.bytes_written += len(payload)

    def read(self, oid: int) -> object:
        self._check_open()
        entry = self._entry(oid)
        if entry[0] == "L":
            payload = b"".join(
                self._pool.fetch(page_id).read(slot) for page_id, slot in entry[1]
            )
        else:
            page_id, slot = entry
            payload = self._pool.fetch(page_id).read(slot)
        self.stats.objects_read += 1
        self.stats.bytes_read += len(payload)
        return self._codec.decode(payload)

    def exists(self, oid: int) -> bool:
        self._check_open()
        return oid in self._directory

    def delete(self, oid: int) -> None:
        self._check_open()
        entry = self._entry(oid)
        self._journal_dir(oid)
        self._free_entry(entry)
        del self._directory[oid]
        self._evict_caches(oid)
        self.stats.objects_deleted += 1

    def oids(self) -> Iterator[int]:
        self._check_open()
        return iter(list(self._directory))

    def pages_of(self, oid: int) -> list[int]:
        """Page ids holding the object's record, chunk order for large ones."""
        self._check_open()
        entry = self._entry(oid)
        locations = entry[1] if entry[0] == "L" else [entry]
        return [page_id for page_id, _slot in locations]

    # -- roots ----------------------------------------------------------------------

    def set_root(self, name: str, oid: int) -> None:
        self._check_open()
        if oid not in self._directory:
            raise UnknownOidError(oid)
        self._roots[name] = oid

    def get_root(self, name: str) -> int | None:
        self._check_open()
        return self._roots.get(name)

    # -- transactions --------------------------------------------------------------------

    def begin(self) -> None:
        self._check_open()
        if self._in_txn:
            raise TransactionError("transaction already in progress")
        # Writes before begin() must be on disk before the transaction
        # starts, otherwise abort's drop_dirty would lose them — and any
        # attached object cache must drain its buffered writes first for
        # the same reason.
        self._drain_caches()
        self._pool.flush_dirty()
        self._undo_dir = {}
        self._undo_small = {
            "roots": dict(self._roots),
            "oid_high": self._oid_alloc.high_water,
            "page_high": self._page_alloc.high_water,
            "segments": [seg.to_meta() for seg in self._segments.values()],
        }
        self._in_txn = True
        self._begin_caches()

    def _journal_dir(self, oid: int) -> None:
        """Record an oid's pre-transaction directory entry, once."""
        if self._in_txn and oid not in self._undo_dir:  # type: ignore[operator]
            self._undo_dir[oid] = self._directory.get(oid, _ABSENT)  # type: ignore[index]

    def commit(self) -> None:
        """Flush dirty pages (durability of data pages).

        Metadata is persisted by :meth:`checkpoint` and :meth:`close`,
        not per commit — matching how the 1996 stores wrote data pages
        eagerly but maintained their maps in virtual memory.
        """
        self._check_open()
        # Coalesced object-cache writes land first (oid order), so the
        # page flush below carries them out in this same commit.
        self._drain_caches()
        self._end_txn_caches()
        self._pool.flush_dirty()
        self._disk.sync()
        self._in_txn = False
        self._undo_dir = None
        self._undo_small = None
        self.stats.commits += 1
        if self.checkpoint_every:
            self._commits_since_checkpoint += 1
            if self._commits_since_checkpoint >= self.checkpoint_every:
                self._write_checkpoint()
                self._commits_since_checkpoint = 0

    def abort(self) -> None:
        self._check_open()
        if not self._in_txn:
            raise TransactionError("abort without a transaction")
        # Cached objects may carry in-memory mutations from the aborted
        # transaction (buffered writes, or records mutated in place
        # before a write that never came) — drop them all.
        self._invalidate_caches()
        self._end_txn_caches()
        self._pool.drop_dirty()
        assert self._undo_dir is not None and self._undo_small is not None
        for oid, old_entry in self._undo_dir.items():
            if old_entry is _ABSENT:
                self._directory.pop(oid, None)
            else:
                self._directory[oid] = old_entry
        self._roots = self._undo_small["roots"]
        self._oid_alloc = OidAllocator(start=self._undo_small["oid_high"])
        self._page_alloc = OidAllocator(start=self._undo_small["page_high"])
        self._segments = {}
        self._segment_by_id = {}
        for seg_meta in self._undo_small["segments"]:
            segment = Segment.from_meta(seg_meta)
            self._segments[segment.name] = segment
            self._segment_by_id[segment.segment_id] = segment
        self._index_pages()
        self._undo_dir = None
        self._undo_small = None
        self._in_txn = False
        self.stats.aborts += 1

    def checkpoint(self) -> None:
        """Flush pages *and* persist metadata (directory, roots, segments)."""
        self._check_open()
        if self._in_txn:
            raise TransactionError("checkpoint inside an open transaction")
        self._flush_all()

    def _flush_all(self) -> None:
        self._pool.flush_dirty()
        self._write_checkpoint()

    def _checkpoint_image(self) -> bytes:
        """Canonical image of the metadata, epoch excluded.

        The epoch advances with every checkpoint, so comparing raw blobs
        would never find two equal; everything *else* being unchanged is
        what makes a checkpoint redundant.
        """
        probe = self._meta()
        probe.pop("epoch", None)
        return pickle.dumps(probe, protocol=4)

    def _write_checkpoint(self) -> None:
        """Persist metadata and advance the commit epoch.

        The blob records the epoch its page images were stamped with;
        subsequent page writes get the next epoch, so a later crash
        leaves those pages detectably "from the future" relative to
        this checkpoint.

        Redundant checkpoints are skipped: with ``checkpoint_every=1``
        a read-mostly phase would otherwise re-pickle and rewrite the
        whole blob — directory, roots, segment maps — every commit.
        Skipping is only legal when no page was flushed since the last
        checkpoint either; flushed pages carry the *current* epoch, and
        a checkpoint must land to ratify it, otherwise a reopen would
        flag them as from-the-future orphans of a checkpoint that never
        happened.
        """
        image = self._checkpoint_image()
        if (
            image == self._last_checkpoint_image
            and not self._pages_flushed_since_checkpoint
        ):
            return
        self.stats.meta_bytes_written += self._disk.write_meta(self._meta())
        self._disk.sync()
        self._meta_epoch = self._disk.epoch
        self._disk.epoch += 1
        self._last_checkpoint_image = image
        self._pages_flushed_since_checkpoint = False

    @property
    def commit_epoch(self) -> int:
        """Epoch of the last durable metadata checkpoint (0 = none)."""
        return self._meta_epoch

    @property
    def codec_name(self) -> str:
        """The record codec new writes use (``"labf"`` or ``"pickle"``)."""
        return self._codec.mode

    def decode_record(self, payload: "bytes | bytearray | memoryview") -> object:
        """Decode one raw record payload (any codec era).

        The public decode surface for tools that read slots directly —
        the integrity checker and size accounting — so they never reach
        into the manager's codec state.
        """
        return self._codec.decode(payload)

    # -- accounting ------------------------------------------------------------------

    def size_bytes(self) -> int:
        self._check_open()
        # Allocated pages + current metadata blob, matching what the 1996
        # size column measured: the database file(s) on disk.
        return self._disk.size_bytes + len_meta(self)

    def buffer_resident_pages(self) -> int:
        return self._pool.resident_pages

    # -- introspection accessors -------------------------------------------------
    #
    # The read-only view the integrity checker and the segment reports
    # need.  Public so those modules (and future tools) never reach into
    # ``_directory`` / ``_segments`` / ``_pool`` — the LF03 lint rule
    # holds everyone to that.

    def segments(self) -> list[Segment]:
        """Every segment, in segment-id order."""
        return sorted(self._segments.values(), key=lambda seg: seg.segment_id)

    def directory_items(self) -> list[tuple[int, object]]:
        """(oid, directory entry) pairs, oid order; entries are
        ``(page_id, slot)`` or ``("L", [locations])`` for chunked records."""
        return sorted(self._directory.items())

    def root_items(self) -> list[tuple[str, int]]:
        """(root name, oid) bindings, name order."""
        return sorted(self._roots.items())

    def fetch_page(self, page_id: int) -> Page:
        """The live page object, through the buffer pool (counts faults)."""
        return self._pool.fetch(page_id)

    def pool_stats(self) -> dict[str, int]:
        """Buffer-pool occupancy snapshot."""
        return {
            "capacity_pages": self._pool.capacity_pages,
            "resident_pages": self._pool.resident_pages,
            "staged_pages": self._pool.staged_pages,
            "overflow_high_water": self._pool.overflow_high_water,
        }

    def open_problems(self) -> list[str]:
        """Crash evidence recorded at open; cleared only by recover()."""
        return list(self._open_problems)

    @property
    def disk_epoch(self) -> int:
        """The commit epoch new page writes are stamped with."""
        return self._disk.epoch

    def disk_issues(self, max_epoch: int | None = None) -> list[str]:
        """Disk-level problems: torn pages, epochs beyond ``max_epoch``
        (default: the store's current stamping epoch)."""
        if max_epoch is None:
            max_epoch = self._disk.epoch
        return self._disk.epoch_issues(max_epoch)

    def verify(self) -> IntegrityReport:
        """Full integrity check; see ``repro.storage.integrity.verify``."""
        from repro.storage import integrity

        return integrity.verify(self)

    def recover(self) -> dict[str, int]:
        """Reconcile state after a crash-reopen from a rolling checkpoint.

        Data pages are flushed at every commit but metadata only at
        checkpoints, so a crash leaves the reopened directory *older*
        than the pages: entries may reference slots that later commits
        deleted or moved (dangling), and pages may hold records the old
        directory never heard of (orphans).  There is no write-ahead
        log to redo from — the 1996 stores offered none either — so
        recovery reconciles to the checkpoint state: torn pages are
        discarded, dangling entries and their roots are dropped, orphan
        slots are vacuumed, and a fresh checkpoint makes the repaired
        state durable.

        Returns ``{"dropped_objects": ..., "dropped_roots": ...,
        "vacuumed_slots": ...}``.  After recover(), ``verify`` passes.
        """
        self._check_open()
        # Torn pages first: an interrupted write left garbage that every
        # later phase (directory probing, vacuum) would trip over.  The
        # page's contents are unrecoverable — discard it back to a hole
        # and let the directory reconciliation below drop whatever
        # referenced it.
        for page_id in range(self._disk.page_count):
            try:
                self._disk.read_page_epoch(page_id)
            except StorageError:
                self._pool.drop(page_id)
                self._disk.clear_page(page_id)
                for segment in self._segments.values():
                    segment.remove_page(page_id)
                self._page_segments.pop(page_id, None)
                # The zero-fill changed disk bytes relative to the last
                # checkpoint; the closing checkpoint must not be skipped.
                self._pages_flushed_since_checkpoint = True
        dropped = 0
        for oid in list(self._directory):
            entry = self._directory[oid]
            locations = entry[1] if entry[0] == "L" else [entry]
            intact = True
            chunks = []
            for page_id, slot in locations:
                try:
                    chunks.append(self._pool.fetch(page_id).read(slot))
                except StorageError:
                    # Unreadable means dangling: the slot was moved or
                    # deleted by a post-checkpoint commit the crash ate.
                    intact = False
                    break
            if intact:
                # The slots are readable, but the payload must also
                # *decode* under the checkpointed intern table: a record
                # flushed after the checkpoint may reference intern ids
                # (or pickle shapes) the crash never made durable.
                try:
                    self._codec.decode(
                        chunks[0] if len(chunks) == 1 else b"".join(chunks)
                    )
                except StorageError:
                    intact = False
            if not intact:
                del self._directory[oid]
                dropped += 1
        dropped_roots = 0
        for name in list(self._roots):
            if self._roots[name] not in self._directory:
                del self._roots[name]
                dropped_roots += 1
        vacuumed = self.vacuum_orphans()
        # The repaired state supersedes whatever the crash left behind:
        # checkpoint it so the epoch bookkeeping matches the disk again,
        # and clear the problems recorded at open.  Cached objects may
        # reference dropped state — surviving values re-read lazily.
        self._invalidate_caches()
        # Force the checkpoint even if the metadata is unchanged: pages
        # flushed by post-checkpoint commits the crash orphaned carry a
        # newer epoch, and only a fresh checkpoint ratifies them (an
        # in-place overwrite leaves the directory identical, so the
        # redundancy check alone would skip it and the pages would be
        # flagged "from the future" again at the next reopen).
        self._pages_flushed_since_checkpoint = True
        self._flush_all()
        self._open_problems = []
        return {
            "dropped_objects": dropped,
            "dropped_roots": dropped_roots,
            "vacuumed_slots": vacuumed,
        }

    def vacuum_orphans(self) -> int:
        """Delete occupied slots no directory entry references.

        After crash recovery (a reopen from a metadata checkpoint older
        than the last flushed pages), pages may hold records whose
        directory entries were lost.  Vacuuming reclaims them; returns
        the number of slots freed.
        """
        self._check_open()
        referenced: set[tuple[int, int]] = set()
        for entry in self._directory.values():
            locations = entry[1] if entry[0] == "L" else [entry]
            for location in locations:
                referenced.add(tuple(location))
        freed = 0
        for segment in self._segments.values():
            for page_id in list(segment.page_ids):
                page = self._pool.fetch(page_id)
                for slot in list(page.slots()):
                    if (page_id, slot) not in referenced:
                        page.delete(slot)
                        segment.note_free_space(page_id, page.free_bytes)
                        freed += 1
        return freed

    def drop_buffer(self) -> None:
        """Flush dirty pages, then empty the buffer pool.

        Used by the locality experiments (E5, A2) to measure queries
        against a cold cache, where every page touched is a fault.  Any
        attached object cache goes cold too — otherwise "cold" queries
        would be served from deserialized objects without touching a
        single page.
        """
        self._check_open()
        self._drain_caches()
        self._invalidate_caches()
        self._pool.flush_dirty()
        self._pool.clear()

    def close(self) -> None:
        if self._closed:
            return
        if self._in_txn:
            raise TransactionError("close() inside an open transaction")
        self._drain_caches()
        self._flush_all()
        # Release pool pages (and any staged read images that may view
        # the disk layer's buffers) before the disk unmaps/closes.
        self._pool.clear()
        self._disk.close()
        self._closed = True


def len_meta(manager: PagedStorageManager) -> int:
    """Current metadata blob size without persisting it."""
    return len(pickle.dumps(manager._meta(), protocol=4))
