"""The storage-backend registry.

Every server version registers itself here with the
:func:`register_backend` class decorator; everything that needs the set
of versions — ``SERVER_ORDER``, the benchmark harness, the CLI
``--server`` choices, ``repro serve`` — derives it from this module
instead of hard-coding names.  Adding a contender therefore means
writing one backend module and decorating one class, not editing the
harness.

The registry is *lazy*: backend modules are imported on first query, so
``import repro.storage.registry`` stays cheap and circular imports
cannot happen (a backend module importing the registry for its
decorator never triggers the loader).  :data:`_BACKEND_MODULES` lists
module paths to probe — paths, not backend names; the names live on the
decorated classes, and this module never repeats them.

Capability queries (:func:`backends`) filter on the contract's class
flags — ``persistent``, ``supports_concurrency``,
``supports_crash_matrix``, ``supports_segments`` — so callers ask for
"every persistent backend" rather than knowing which ones those are.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import StorageError, UnknownBackendError
from repro.storage.codec import DEFAULT_CODEC
from repro.storage.contract import StorageManager

#: Module paths probed for ``@register_backend`` decorations.  These are
#: module names, not backend names: one module may register several
#: versions (memstore registers both main-memory flavours).
_BACKEND_MODULES: tuple[str, ...] = (
    "repro.storage.objectstore",
    "repro.storage.clustered",
    "repro.storage.texas",
    "repro.storage.memstore",
    "repro.storage.mmapstore",
)


@dataclass(frozen=True)
class BackendInfo:
    """One registered server version: its class, blurb and column order."""

    name: str
    cls: type[StorageManager]
    description: str
    #: Sort key for the paper's column order (the Section 10 table reads
    #: left to right from most to least storage management; later
    #: contenders append after the original five).
    order: int

    # -- capability flags (delegated to the contract's class attributes) --

    @property
    def persistent(self) -> bool:
        return bool(self.cls.persistent)

    @property
    def concurrent(self) -> bool:
        return bool(self.cls.supports_concurrency)

    @property
    def segments(self) -> bool:
        return bool(self.cls.supports_segments)

    @property
    def crash_matrix(self) -> bool:
        return bool(self.cls.supports_crash_matrix)

    def make(
        self,
        path: str | None,
        buffer_pages: int,
        readahead_pages: int,
        codec: str = DEFAULT_CODEC,
    ) -> StorageManager:
        """Construct the backend with the benchmark's knobs.

        Main-memory backends take no file and no pool, only the codec;
        paged backends share the ``(path, buffer_pages,
        readahead_pages, codec)`` constructor surface the benchmark
        config threads through.
        """
        if not self.persistent:
            return self.cls(codec=codec)  # type: ignore[call-arg]
        return self.cls(  # type: ignore[call-arg]
            path=path,
            buffer_pages=buffer_pages,
            readahead_pages=readahead_pages,
            codec=codec,
        )


_REGISTRY: dict[str, BackendInfo] = {}
_loaded = False


def register_backend(
    name: str, *, order: int, description: str = ""
) -> Callable[[type[StorageManager]], type[StorageManager]]:
    """Class decorator registering a :class:`StorageManager` subclass.

    ``name`` must equal the class's ``name`` attribute (the registry is
    an index over the contract, not a rename layer), and must be new —
    a duplicate registration is always a bug, so it raises rather than
    silently shadowing the earlier backend.
    """

    def decorate(cls: type[StorageManager]) -> type[StorageManager]:
        if name in _REGISTRY:
            raise StorageError(
                f"storage backend {name!r} is already registered "
                f"(by {_REGISTRY[name].cls.__name__})"
            )
        if getattr(cls, "name", None) != name:
            raise StorageError(
                f"backend class {cls.__name__} has name "
                f"{getattr(cls, 'name', None)!r}, registered as {name!r}"
            )
        _REGISTRY[name] = BackendInfo(
            name=name, cls=cls, description=description, order=order
        )
        return cls

    return decorate


def _ensure_loaded() -> None:
    """Import every backend module once so decorations have run."""
    global _loaded
    if _loaded:
        return
    for module in _BACKEND_MODULES:
        importlib.import_module(module)
    _loaded = True


def backend(name: str) -> BackendInfo:
    """Look up one backend; raises :class:`UnknownBackendError` with the
    full registered list for anything else."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, backend_names()) from None


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in table column order."""
    _ensure_loaded()
    return tuple(info.name for info in backends())


def backends(
    *,
    persistent: bool | None = None,
    concurrent: bool | None = None,
    crash_matrix: bool | None = None,
    segments: bool | None = None,
) -> list[BackendInfo]:
    """Registered backends in column order, filtered by capability.

    Each keyword left as ``None`` matches everything; ``True``/``False``
    require that capability flag.  ``backends(persistent=True)`` is the
    verify/recover candidate set, ``backends(concurrent=True)`` the
    servable one, ``backends(crash_matrix=True)`` the sweepable one.
    """
    _ensure_loaded()
    wanted = {
        "persistent": persistent,
        "concurrent": concurrent,
        "crash_matrix": crash_matrix,
        "segments": segments,
    }
    found = [
        info
        for info in _REGISTRY.values()
        if all(
            value is None or getattr(info, flag) == value
            for flag, value in wanted.items()
        )
    ]
    return sorted(found, key=lambda info: (info.order, info.name))


def create(
    name: str,
    path: str | None = None,
    buffer_pages: int | None = None,
    readahead_pages: int | None = None,
    codec: str = DEFAULT_CODEC,
) -> StorageManager:
    """Factory: construct a backend by name with benchmark-style knobs.

    ``None`` knobs fall back to the storage layer's defaults, so
    ``create("mmap", path)`` opens a store the way the CLI does.
    """
    from repro.storage.buffer import DEFAULT_POOL_PAGES, DEFAULT_READAHEAD_PAGES

    return backend(name).make(
        path,
        DEFAULT_POOL_PAGES if buffer_pages is None else buffer_pages,
        DEFAULT_READAHEAD_PAGES if readahead_pages is None else readahead_pages,
        codec,
    )
