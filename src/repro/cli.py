"""Command-line interface.

::

    python -m repro compare [--clones N] [--db-dir DIR] [--servers ...]
    python -m repro run --server OStore [--clones N] [--db-dir DIR]
    python -m repro graph [--workflow FILE]
    python -m repro eer [--workflow FILE]
    python -m repro demo [--clones N]
    python -m repro query DBFILE "state(M, S)."
    python -m repro shell DBFILE
    python -m repro serve [DBFILE] [--server NAME] [--port P] [--smoke N]
    python -m repro monitor --port P [--samples N] [--interval SEC]
    python -m repro bench record [--schemas A4 A5 A6 A7 A8]
    python -m repro bench compare --baseline BENCH_A4.json ... [--tolerance T]
    python -m repro verify DBFILE [--server OStore]
    python -m repro recover DBFILE [--server OStore]
    python -m repro lint [PATHS] [--format json]

``compare`` regenerates the paper's Section 10 table; ``graph`` and
``eer`` emit the Appendix B and Figure 1 artefacts; ``query``/``shell``
run the deductive language against a persisted database file;
``verify``/``recover`` check and repair a database file after a crash;
``monitor`` attaches to a running ``serve`` and streams interval
samples; ``bench record``/``bench compare`` maintain the committed
``BENCH_*.json`` baselines and gate regressions against them.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.benchmark import (
    BenchmarkConfig,
    SERVER_ORDER,
    render_comparison,
    render_run,
    render_stats,
    run_comparison,
    run_server,
    server_spec,
)
from repro.benchmark.schema_report import eer_text
from repro.labbase import Chronicle, LabBase
from repro.query import Program
from repro.storage import ObjectStoreSM
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng
from repro.workflow import (
    WorkflowEngine,
    build_genome_spec,
    build_genome_workflow,
    load_workflow,
)


def _load_graph(path: str | None):
    if path is None:
        return build_genome_workflow()
    with open(path) as handle:
        return load_workflow(handle.read())


def _object_cache_capacity(value: str) -> int:
    """Parse ``--object-cache on|off|SIZE`` into a capacity (A4 knob)."""
    from repro.storage import DEFAULT_CACHE_OBJECTS

    if value == "on":
        return DEFAULT_CACHE_OBJECTS
    if value == "off":
        return 0
    try:
        capacity = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'on', 'off' or an object count, got {value!r}"
        ) from None
    if capacity < 0:
        raise argparse.ArgumentTypeError("object-cache size must be >= 0")
    return capacity


def _add_object_cache_flag(parser) -> None:
    parser.add_argument(
        "--object-cache", type=_object_cache_capacity, default="on",
        metavar="on|off|SIZE",
        help="object-cache capacity: on (default), off, or max cached objects",
    )


def _readahead_window(value: str) -> int:
    """Parse ``--readahead on|off|N`` into a page window (A5 knob)."""
    from repro.storage import DEFAULT_READAHEAD_PAGES

    if value == "on":
        return DEFAULT_READAHEAD_PAGES
    if value == "off":
        return 0
    try:
        window = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'on', 'off' or a page count, got {value!r}"
        ) from None
    if window < 0:
        raise argparse.ArgumentTypeError("readahead window must be >= 0")
    return window


def _add_readahead_flag(parser) -> None:
    parser.add_argument(
        "--readahead", type=_readahead_window, default="on",
        metavar="on|off|N",
        help="read-ahead window in pages: on (default), off (also disables "
             "vectored commit writes), or an explicit window",
    )


def _add_codec_flag(parser) -> None:
    from repro.storage.codec import CODEC_NAMES, DEFAULT_CODEC

    parser.add_argument(
        "--codec", choices=CODEC_NAMES, default=DEFAULT_CODEC,
        help="record codec (A8 knob): labf = schema-aware fixed layouts "
             "with pickle fallback (default), pickle = legacy pickles",
    )


def _config(args) -> BenchmarkConfig:
    return BenchmarkConfig(
        clones_per_interval=args.clones,
        seed=args.seed,
        db_dir=args.db_dir,
        object_cache=args.object_cache,
        readahead=args.readahead,
        codec=args.codec,
    )


# -- subcommands ------------------------------------------------------------


def cmd_compare(args) -> int:
    config = _config(args)
    servers = tuple(args.servers) if args.servers else SERVER_ORDER
    comparison = run_comparison(config, servers=servers)
    print(render_comparison(comparison))
    print()
    print(render_stats(comparison))
    return 0


def cmd_run(args) -> int:
    config = _config(args)
    result = run_server(server_spec(args.server), config)
    print(render_run(result))
    return 0


def cmd_graph(args) -> int:
    graph = _load_graph(args.workflow)
    print(graph.to_text())
    return 0


def cmd_eer(args) -> int:
    if args.workflow is None:
        spec = build_genome_spec()
    else:
        spec = _load_graph(args.workflow).spec
    print(eer_text(spec))
    return 0


def cmd_demo(args) -> int:
    graph = _load_graph(args.workflow)
    db = LabBase(ObjectStoreSM(path=args.db))
    engine = WorkflowEngine(db, graph, DeterministicRng(args.seed))
    engine.install_schema()
    print(f"processing {args.clones} materials...")
    intake_class = graph.spec.materials[0].class_name
    for _ in range(args.clones):
        engine.create_material(intake_class)
    executed = engine.pump(1_000_000)
    print(f"{executed} workflow steps executed\n")

    chronicle = Chronicle(db)
    rows = [
        [p.class_name, p.executions, p.materials_touched]
        for p in chronicle.step_profiles()
    ]
    print(format_table(["step class", "runs", "materials"], rows,
                       align_right=(1, 2)))
    census = {s: n for s, n in db.sets.state_census().items() if n}
    print(f"\nfinal state census: {census}")
    if args.db:
        db.storage.close()
        print(f"database saved to {args.db}")
    return 0


def _open_program(db_path: str) -> tuple[Program, LabBase]:
    db = LabBase(ObjectStoreSM(path=db_path))
    return Program(db=db), db


def _print_solutions(program: Program, query: str, limit: int) -> None:
    try:
        shown = 0
        for row in program.solve(query):
            print("  " + (", ".join(f"{k} = {v!r}" for k, v in row.items())
                          if row else "yes"))
            shown += 1
            if shown >= limit:
                print(f"  ... (stopped at {limit} solutions)")
                break
        if shown == 0:
            print("  no")
    except Exception as exc:
        print(f"  error: {exc}", file=sys.stderr)


def cmd_record(args) -> int:
    from repro.benchmark import LabFlowWorkload, TracingServer
    from repro.storage import OStoreMM

    config = BenchmarkConfig(clones_per_interval=args.clones, seed=args.seed)
    traced = TracingServer(LabBase(OStoreMM()))
    LabFlowWorkload(traced, config).run_all()
    with open(args.trace, "w") as fp:
        traced.trace.dump(fp)
    counts = traced.trace.operations()
    print(f"recorded {len(traced.trace)} events to {args.trace}: {counts}")
    return 0


def cmd_replay(args) -> int:
    from repro.benchmark import Trace, replay
    from repro.util.timing import ResourceMeter

    with open(args.trace) as fp:
        trace = Trace.load(fp)
    config = BenchmarkConfig(db_dir=args.db_dir, object_cache=args.object_cache,
                             readahead=args.readahead, codec=args.codec)
    sm = server_spec(args.server).make(config)
    db = LabBase(sm, object_cache=config.object_cache)
    meter = ResourceMeter(fault_source=sm.stats)
    meter.start()
    counts = replay(trace, db)
    usage = meter.lap(size_bytes=sm.size_bytes())
    print(f"replayed {sum(counts.values())} events onto {args.server}")
    for resource, value in usage.as_rows():
        print(f"  {resource:14s} {value}")
    sm.close()
    return 0


def _open_existing_store(args):
    """Open a database file for verify/recover; refuse to create one.

    Constructing a store on a missing path would silently create an
    empty (trivially valid) database — the opposite of what someone
    checking a file after a crash wants.
    """
    if not os.path.exists(args.db):
        print(f"error: no such database file: {args.db}", file=sys.stderr)
        return None
    from repro.storage.registry import backend

    return backend(args.server).cls(path=args.db)  # type: ignore[call-arg]


def cmd_verify(args) -> int:
    sm = _open_existing_store(args)
    if sm is None:
        return 2
    report = sm.verify()
    print(f"{report.manager}: checked {report.objects_checked} objects, "
          f"{report.pages_checked} pages")
    for problem in report.problems:
        print(f"  {problem}")
    print("OK" if report.ok else f"{len(report.problems)} problem(s) found "
          "— run 'repro recover' to repair")
    # Deliberately no close(): closing checkpoints, and verification
    # must never modify the store it is judging.
    return 0 if report.ok else 1


def cmd_recover(args) -> int:
    sm = _open_existing_store(args)
    if sm is None:
        return 2
    outcome = sm.recover()
    print(f"dropped {outcome['dropped_objects']} object(s), "
          f"{outcome['dropped_roots']} root(s); "
          f"vacuumed {outcome['vacuumed_slots']} slot(s)")
    report = sm.verify()
    sm.close()
    if not report.ok:
        for problem in report.problems:
            print(f"  {problem}", file=sys.stderr)
        print("store is still inconsistent after recovery", file=sys.stderr)
        return 1
    print("store is consistent")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.main import main as lint_main

    lint_argv = list(args.paths)
    lint_argv += ["--format", args.format]
    if args.rules:
        lint_argv += ["--rules", args.rules]
    if args.list_rules:
        lint_argv.append("--list-rules")
    if args.check_ignores:
        lint_argv.append("--check-ignores")
    return lint_main(lint_argv)


def cmd_sanitize(args) -> int:
    """Both sanitizer prongs in one command: static rules, then runtime.

    Static: LF08 (lock-order/2PL) + LF09 (unguarded shared state) over
    the tree.  Runtime: a watchdog-instrumented served smoke run, then a
    bounded schedule-fuzz sweep asserting serial equivalence on every
    registered backend.  Exit 0 only if every prong is clean.
    """
    import json as json_mod

    from repro.analysis.core import run_rules
    from repro.analysis.main import collect_paths, default_root, load_project
    from repro.analysis.rules import rules_by_id
    from repro.server.fuzz import fuzz_sweep

    rules = rules_by_id(["LF08", "LF09"])
    roots = list(args.paths) or [default_root()]
    project, errors = load_project(collect_paths(roots))
    if errors:
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 2
    static_findings = run_rules(project, rules)

    smoke = None if args.no_smoke else _sanitize_smoke(
        clients=args.smoke_clients, units=args.smoke_units
    )

    reports = [] if args.no_fuzz else fuzz_sweep(
        args.backends.split(",") if args.backends else None,
        seeds=tuple(range(args.seeds)),
        sessions=args.sessions,
        units_per_session=args.units,
    )

    fuzz_ok = all(r.identical and r.watchdog_violations == 0 for r in reports)
    smoke_ok = smoke is None or bool(smoke["ok"])
    ok = not static_findings and smoke_ok and fuzz_ok

    if args.format == "json":
        payload = {
            "static": {
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "rule": f.rule,
                        "message": f.message,
                    }
                    for f in static_findings
                ],
                "checked_files": len(project.modules),
            },
            "smoke": smoke,
            "fuzz": [r.to_json() for r in reports],
            "ok": ok,
        }
        print(json_mod.dumps(payload, indent=2, sort_keys=True))
        return 0 if ok else 1

    for finding in static_findings:
        print(finding.render())
    print(
        f"static: {len(static_findings)} finding(s) in "
        f"{len(project.modules)} file(s) [LF08+LF09]"
    )
    if smoke is not None:
        print(
            f"smoke:  {smoke['clients']} clients x {smoke['units']} units "
            f"on {smoke['backend']}: "
            f"{smoke['acquisitions']} acquisitions, "
            f"{len(smoke['edges'])} lock-order edges, "
            f"{len(smoke['violations'])} violation(s), "
            f"verify {'OK' if smoke['verify_ok'] else 'FAILED'}"
        )
        for violation in smoke["violations"]:
            print(f"        {violation}")
    for r in reports:
        status = "identical" if r.identical else "DIVERGED"
        print(
            f"fuzz:   {r.backend} seed={r.seed} sessions={r.sessions} "
            f"completed={r.completed_units} {status}, "
            f"{r.watchdog_violations} watchdog violation(s)"
        )
    print("sanitize: OK" if ok else "sanitize: FAILED")
    return 0 if ok else 1


def _sanitize_smoke(*, clients: int, units: int) -> dict:
    """One watchdog-instrumented served run over real sockets."""
    from repro.obs.watchdog import LockOrderWatchdog
    from repro.server import (
        LabFlowService,
        ServiceRunner,
        bootstrap_schema,
        run_concurrent_clients,
    )
    from repro.storage.registry import backends

    info = backends(concurrent=True)[0]
    sm = info.cls(path=None)  # type: ignore[call-arg]
    db = LabBase(sm)
    bootstrap_schema(db)
    watchdog = LockOrderWatchdog()
    service = LabFlowService(db, retry_backoff=0.0, watchdog=watchdog)
    runner = ServiceRunner(service, watchdog=watchdog)
    host, port = runner.start()
    try:
        run_concurrent_clients(host, port, clients=clients, units=units)
        service.drain()
        verify_ok = db.verify_storage().ok
    finally:
        runner.stop()
        sm.close()
    digest = watchdog.summary()
    return {
        "backend": info.name,
        "clients": clients,
        "units": units,
        "acquisitions": digest["acquisitions"],
        "edges": digest["edges"],
        "violations": digest["violations"],
        "verify_ok": verify_ok,
        "ok": bool(digest["ok"]) and verify_ok,
    }


def cmd_serve(args) -> int:
    import threading

    from repro.obs import IntervalSampler, UnitTracer, gauges_from
    from repro.server import (
        LabFlowService,
        ServiceRunner,
        bootstrap_schema,
        run_concurrent_clients,
    )
    from repro.storage.registry import backend
    from repro.storage.report import stats_report

    sm = backend(args.server).cls(  # type: ignore[call-arg]
        path=args.db, checkpoint_every=args.checkpoint_every, codec=args.codec
    )
    db = LabBase(sm)
    bootstrap_schema(db)
    trace_sink = open(args.trace, "w") if args.trace else None
    tracer = UnitTracer(sink=trace_sink) if trace_sink else None
    watchdog = None
    if args.sanitize:
        from repro.obs.watchdog import LockOrderWatchdog

        watchdog = LockOrderWatchdog(tracer=tracer)
    service = LabFlowService(
        db,
        group_commit=not args.no_group_commit,
        group_cap=args.group_cap,
        tracer=tracer,
        watchdog=watchdog,
    )
    sample_sink = open(args.sample_log, "w") if args.sample_log else None
    stop_sampling = threading.Event()
    sampler_thread: threading.Thread | None = None
    if sample_sink:
        sampler = IntervalSampler(service.stats_snapshot, sink=sample_sink)

        def sampling_loop() -> None:
            while not stop_sampling.wait(args.sample_interval):
                sampler.sample()

        sampler_thread = threading.Thread(
            target=sampling_loop, name="labflow-sampler", daemon=True
        )
        sampler_thread.start()
    runner = ServiceRunner(
        service, host=args.host, port=args.port, watchdog=watchdog
    )
    host, port = runner.start()
    print(f"serving {args.db or '<in-memory>'} [{args.server}] on "
          f"{host}:{port} "
          f"(group commit {'off' if args.no_group_commit else 'on'}, "
          f"cap {args.group_cap}"
          f"{', lock-order watchdog on' if watchdog else ''})")
    try:
        if args.smoke:
            summary = run_concurrent_clients(
                host, port, clients=args.smoke, units=args.units
            )
            for name in sorted(summary):
                print(f"  {name}: {summary[name]}")
            stats = service.stats_snapshot()
            print(stats_report(
                stats, gauges_from(stats), title="smoke-run storage counters"
            ))
            service.drain()
            report = db.verify_storage()
            if not report.ok:
                for problem in report.problems:
                    print(f"  {problem}", file=sys.stderr)
                print("verify: FAILED", file=sys.stderr)
                return 1
            print("verify: OK")
            if watchdog is not None:
                digest = watchdog.summary()
                print(
                    f"watchdog: {digest['acquisitions']} acquisitions, "
                    f"{len(digest['edges'])} lock-order edges, "  # type: ignore[arg-type]
                    f"{len(digest['violations'])} violation(s)"  # type: ignore[arg-type]
                )
                if not digest["ok"]:
                    for violation in digest["violations"]:  # type: ignore[attr-defined]
                        print(f"  {violation}", file=sys.stderr)
                    print("watchdog: FAILED", file=sys.stderr)
                    return 1
            return 0
        try:
            threading.Event().wait()
        except KeyboardInterrupt:
            print("shutting down")
        return 0
    finally:
        runner.stop()
        stop_sampling.set()
        if sampler_thread is not None:
            sampler_thread.join(timeout=5.0)
        if sample_sink:
            sample_sink.close()
        if trace_sink:
            trace_sink.close()
        sm.close()


def cmd_monitor(args) -> int:
    from repro.errors import ReproError
    from repro.obs.monitor import monitor

    try:
        monitor(
            args.host,
            args.port,
            samples=args.samples,
            interval=args.interval,
            out=sys.stdout,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_bench(args) -> int:
    from repro.obs import baseline as bl
    from repro.obs.render import render_drift_table

    if args.bench_command == "record":
        for schema in args.schemas:
            try:
                path = bl.record(schema, args.results, args.out)
            except FileNotFoundError as exc:
                print(f"error: {schema}: missing bench result: {exc}",
                      file=sys.stderr)
                return 2
            print(f"recorded {path}")
        return 0

    # compare
    all_drifts: list[bl.Drift] = []
    all_notes: list[str] = []
    compared: list[str] = []
    for baseline_file in args.baseline:
        try:
            drifts, notes = bl.compare_files(
                baseline_file, args.results, tolerance=args.tolerance
            )
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {baseline_file}: {exc}", file=sys.stderr)
            return 2
        compared.append(baseline_file)
        all_drifts.extend(drifts)
        all_notes.extend(notes)
    print(render_drift_table(
        [d.as_dict() for d in all_drifts],
        title=(f"bench compare: {len(compared)} baseline(s), "
               f"tolerance {args.tolerance:g}"),
    ))
    for note in all_notes:
        print(f"  note: {note}")
    if args.report:
        bl.dump_json(args.report, {
            "baselines": compared,
            "tolerance": args.tolerance,
            "drifts": [d.as_dict() for d in all_drifts],
            "notes": all_notes,
            "ok": not all_drifts,
        })
        print(f"report written to {args.report}")
    return 1 if all_drifts else 0


def cmd_query(args) -> int:
    program, db = _open_program(args.db)
    _print_solutions(program, args.goal, args.limit)
    db.storage.close()
    return 0


def cmd_shell(args) -> int:
    program, db = _open_program(args.db)
    print("LabBase deductive shell — end queries with '.', 'quit.' to exit")
    while True:
        try:
            line = input("?- ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in ("quit.", "quit", "halt."):
            break
        _print_solutions(program, line, args.limit)
    db.storage.close()
    return 0


# -- parser -------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LabFlow-1 workflow-management benchmark (EDBT 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale(p):
        p.add_argument("--clones", type=int, default=15,
                       help="clones per 0.5X interval (default 15)")
        p.add_argument("--seed", type=int, default=1996)
        p.add_argument("--db-dir", default=None,
                       help="directory for database files (default: in-memory)")
        _add_object_cache_flag(p)
        _add_readahead_flag(p)
        _add_codec_flag(p)

    p = sub.add_parser("compare", help="the Section 10 five-server table")
    add_scale(p)
    p.add_argument("--servers", nargs="*", choices=SERVER_ORDER,
                   help="subset of server versions")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("run", help="run the stream on one server version")
    add_scale(p)
    p.add_argument("--server", choices=SERVER_ORDER, default="OStore")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("graph", help="print the workflow graph (Appendix B)")
    p.add_argument("--workflow", help="workflow DSL file (default: genome)")
    p.set_defaults(func=cmd_graph)

    p = sub.add_parser("eer", help="print the EER schema (Figure 1)")
    p.add_argument("--workflow", help="workflow DSL file (default: genome)")
    p.set_defaults(func=cmd_eer)

    p = sub.add_parser("demo", help="run a workflow and print lab reports")
    p.add_argument("--workflow", help="workflow DSL file (default: genome)")
    p.add_argument("--clones", type=int, default=10)
    p.add_argument("--seed", type=int, default=1996)
    p.add_argument("--db", default=None, help="persist the database here")
    p.set_defaults(func=cmd_demo)

    p = sub.add_parser("record", help="record the benchmark stream to a trace file")
    p.add_argument("trace", help="output trace file (JSON lines)")
    p.add_argument("--clones", type=int, default=10)
    p.add_argument("--seed", type=int, default=1996)
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="replay a trace onto a server version")
    p.add_argument("trace", help="trace file produced by 'record'")
    p.add_argument("--server", choices=SERVER_ORDER, default="OStore")
    p.add_argument("--db-dir", default=None)
    _add_object_cache_flag(p)
    _add_readahead_flag(p)
    _add_codec_flag(p)
    p.set_defaults(func=cmd_replay)

    from repro.storage.registry import backends

    persistent_servers = [info.name for info in backends(persistent=True)]
    concurrent_servers = [info.name for info in backends(concurrent=True)]

    p = sub.add_parser("verify", help="check a database file's integrity")
    p.add_argument("db", help="database file to check (read-only)")
    p.add_argument("--server", choices=persistent_servers,
                   default=persistent_servers[0],
                   help="store format of the file")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("recover",
                       help="repair a database file after a crash")
    p.add_argument("db", help="database file to repair (rewritten)")
    p.add_argument("--server", choices=persistent_servers,
                   default=persistent_servers[0],
                   help="store format of the file")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser("lint",
                       help="run the storage-stack invariant linter (LF01-LF09)")
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: the repro package)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--rules", default=None, metavar="LF01,LF02,...")
    p.add_argument("--list-rules", action="store_true")
    p.add_argument("--check-ignores", action="store_true",
                   help="also flag lint: ignore markers that suppress nothing")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "sanitize",
        help="concurrency sanitizer: static LF08/LF09 pass + watchdog "
             "smoke + schedule-fuzz sweep")
    p.add_argument("paths", nargs="*",
                   help="files or directories for the static pass "
                        "(default: the repro package)")
    p.add_argument("--format", choices=("text", "json"), default="text")
    p.add_argument("--seeds", type=int, default=2,
                   help="fuzz seeds per backend (default 2)")
    p.add_argument("--sessions", type=int, default=3,
                   help="fuzz sessions on concurrent backends (default 3)")
    p.add_argument("--units", type=int, default=8,
                   help="fuzzed units per session (default 8)")
    p.add_argument("--backends", default=None, metavar="NAME,NAME,...",
                   help="fuzz only these backends (default: all registered)")
    p.add_argument("--smoke-clients", type=int, default=3,
                   help="clients in the watchdog smoke run (default 3)")
    p.add_argument("--smoke-units", type=int, default=12,
                   help="units per smoke client (default 12)")
    p.add_argument("--no-smoke", action="store_true",
                   help="skip the served watchdog smoke run")
    p.add_argument("--no-fuzz", action="store_true",
                   help="skip the schedule-fuzz sweep")
    p.set_defaults(func=cmd_sanitize)

    p = sub.add_parser("serve",
                       help="serve a database to concurrent socket clients")
    p.add_argument("db", nargs="?", default=None,
                   help="database file (created if missing; omitted = "
                        "in-memory)")
    p.add_argument("--server", choices=concurrent_servers,
                   default=concurrent_servers[0],
                   help="storage backend serving the sessions")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listening port (default 0 picks a free one)")
    p.add_argument("--group-cap", type=int, default=8,
                   help="update units that close a commit group (default 8)")
    p.add_argument("--no-group-commit", action="store_true",
                   help="one storage commit per update unit")
    p.add_argument("--checkpoint-every", type=int, default=1,
                   help="checkpoint cadence in commits (default 1)")
    _add_codec_flag(p)
    p.add_argument("--smoke", type=int, default=0, metavar="N",
                   help="run N scripted concurrent clients, verify, and exit")
    p.add_argument("--units", type=int, default=24,
                   help="units per smoke client (default 24)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write unit-of-work span events here (JSONL)")
    p.add_argument("--sample-log", default=None, metavar="FILE",
                   help="write interval counter samples here (JSONL)")
    p.add_argument("--sample-interval", type=float, default=1.0,
                   help="seconds between interval samples (default 1.0)")
    p.add_argument("--sanitize", action="store_true",
                   help="wrap service locks in the lock-order watchdog; "
                        "with --smoke, fail on any recorded violation")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("monitor",
                       help="attach to a running serve and stream live samples")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="port of the running 'repro serve'")
    p.add_argument("--samples", type=int, default=10,
                   help="observations to take before detaching (default 10)")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between polls (default 1.0)")
    p.set_defaults(func=cmd_monitor)

    p = sub.add_parser("bench",
                       help="record / compare the committed BENCH_*.json baselines")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    bp = bench_sub.add_parser(
        "record", help="canonicalize fresh bench results into baseline files"
    )
    bp.add_argument("--results", default="benchmarks/results",
                    help="bench results directory (default benchmarks/results)")
    bp.add_argument("--out", default=".",
                    help="where the BENCH_*.json files go (default: repo root)")
    bp.add_argument("--schemas", nargs="*",
                    default=["A4", "A5", "A6", "A7", "A8"],
                    choices=["A4", "A5", "A6", "A7", "A8"],
                    help="baseline schemas to record (default: all)")
    bp.set_defaults(func=cmd_bench)
    bp = bench_sub.add_parser(
        "compare", help="diff fresh bench results against committed baselines"
    )
    bp.add_argument("--baseline", nargs="+", required=True, metavar="FILE",
                    help="committed BENCH_*.json files to compare against")
    bp.add_argument("--results", default="benchmarks/results",
                    help="fresh bench results directory")
    bp.add_argument("--tolerance", type=float, default=0.10,
                    help="relative counter tolerance (default 0.10); gauges "
                         "use their per-metric absolute tolerances")
    bp.add_argument("--report", default=None, metavar="FILE",
                    help="write the comparison report as JSON here")
    bp.set_defaults(func=cmd_bench)

    p = sub.add_parser("query", help="run one deductive query on a database")
    p.add_argument("db", help="database file (ObjectStoreSM format)")
    p.add_argument("goal", help="the query, e.g. \"state(M, S).\"")
    p.add_argument("--limit", type=int, default=25)
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("shell", help="interactive deductive shell")
    p.add_argument("db", help="database file (ObjectStoreSM format)")
    p.add_argument("--limit", type=int, default=25)
    p.set_defaults(func=cmd_shell)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
