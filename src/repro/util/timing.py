"""Resource metering in the paper's vocabulary.

Section 10 of the paper reports, per measurement interval, the resources
consumed by each storage-manager version: elapsed seconds, user CPU
seconds, system CPU seconds, major page faults (``majflt``), and database
size in bytes.

On 1996 hardware the database did not fit in RAM, so OS-level major page
faults measured how well each storage manager controlled locality of
reference.  On modern hardware the same databases sit comfortably in the
page cache, so OS majflt would read 0 for every version and the comparison
would vanish.  We therefore meter *simulated* major faults: buffer-pool
misses reported by the storage layer, which is exactly the quantity the
paper's majflt numbers proxied.  Real elapsed and CPU time are still
measured with :func:`time.perf_counter` and :func:`os.times`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ResourceUsage:
    """One interval's resource consumption, in the paper's units."""

    elapsed_sec: float
    user_cpu_sec: float
    sys_cpu_sec: float
    majflt: int
    size_bytes: int
    # Object-cache counters (PR 3).  Not part of the paper's five-resource
    # table — ``as_rows`` is unchanged — but metered per interval so the
    # A4 ablation can report hit rates alongside wall-clock time.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_coalesced: int = 0

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        """Accumulate two intervals (size is *latest*, not summed)."""
        return ResourceUsage(
            elapsed_sec=self.elapsed_sec + other.elapsed_sec,
            user_cpu_sec=self.user_cpu_sec + other.user_cpu_sec,
            sys_cpu_sec=self.sys_cpu_sec + other.sys_cpu_sec,
            majflt=self.majflt + other.majflt,
            size_bytes=max(self.size_bytes, other.size_bytes),
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            cache_coalesced=self.cache_coalesced + other.cache_coalesced,
        )

    def as_rows(self) -> list[tuple[str, str]]:
        """Render as (resource, value) rows matching the paper's table."""
        return [
            ("elapsed sec", f"{self.elapsed_sec:,.3f}"),
            ("user cpu sec", f"{self.user_cpu_sec:,.3f}"),
            ("sys cpu sec", f"{self.sys_cpu_sec:,.3f}"),
            ("majflt", f"{self.majflt:,}"),
            ("size (bytes)", f"{self.size_bytes:,}" if self.size_bytes else "-"),
        ]

    @property
    def cache_hit_ratio(self) -> float:
        """Object-cache hit ratio in [0, 1]; 1.0 when no reads occurred."""
        accesses = self.cache_hits + self.cache_misses
        if accesses == 0:
            return 1.0
        return self.cache_hits / accesses

    def cache_rows(self) -> list[tuple[str, str]]:
        """Extra (resource, value) rows for cache-aware reports."""
        return [
            ("cache hits", f"{self.cache_hits:,}"),
            ("cache misses", f"{self.cache_misses:,}"),
            ("writes coalesced", f"{self.cache_coalesced:,}"),
            ("cache hit ratio", f"{self.cache_hit_ratio:.3f}"),
        ]


@dataclass
class _Snapshot:
    wall: float
    user: float
    sys: float
    faults: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_coalesced: int = 0


class ResourceMeter:
    """Meters elapsed/CPU time and simulated faults over intervals.

    Usage::

        meter = ResourceMeter(fault_source=store.stats)
        meter.start()
        ... run interval 1 ...
        usage1 = meter.lap(size_bytes=store.size_bytes())
        ... run interval 2 ...
        usage2 = meter.lap(size_bytes=store.size_bytes())

    ``fault_source`` is any object with a ``major_faults`` integer
    attribute (the storage stats counters); main-memory versions pass a
    source that always reads 0.
    """

    def __init__(self, fault_source: object | None = None) -> None:
        self._fault_source = fault_source
        self._last: _Snapshot | None = None
        self.intervals: list[ResourceUsage] = []

    def _read_faults(self) -> int:
        if self._fault_source is None:
            return 0
        return int(getattr(self._fault_source, "major_faults", 0))

    def _read_counter(self, name: str) -> int:
        if self._fault_source is None:
            return 0
        return int(getattr(self._fault_source, name, 0))

    def _snapshot(self) -> _Snapshot:
        times = os.times()
        return _Snapshot(
            wall=time.perf_counter(),
            user=times.user,
            sys=times.system,
            faults=self._read_faults(),
            cache_hits=self._read_counter("cache_hits"),
            cache_misses=self._read_counter("cache_misses"),
            cache_coalesced=self._read_counter("cache_coalesced"),
        )

    def start(self) -> None:
        """Begin metering; resets interval history."""
        self.intervals = []
        self._last = self._snapshot()

    def lap(self, size_bytes: int = 0) -> ResourceUsage:
        """Close the current interval and return its usage."""
        if self._last is None:
            raise RuntimeError("ResourceMeter.lap() called before start()")
        now = self._snapshot()
        usage = ResourceUsage(
            elapsed_sec=now.wall - self._last.wall,
            user_cpu_sec=now.user - self._last.user,
            sys_cpu_sec=now.sys - self._last.sys,
            majflt=now.faults - self._last.faults,
            size_bytes=size_bytes,
            cache_hits=now.cache_hits - self._last.cache_hits,
            cache_misses=now.cache_misses - self._last.cache_misses,
            cache_coalesced=now.cache_coalesced - self._last.cache_coalesced,
        )
        self.intervals.append(usage)
        self._last = now
        return usage

    def total(self) -> ResourceUsage:
        """Sum of all closed intervals."""
        total = ResourceUsage(0.0, 0.0, 0.0, 0, 0)
        for usage in self.intervals:
            total = total + usage
        return total
