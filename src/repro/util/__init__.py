"""Shared utilities: id allocation, timing/metering, RNG, table formatting."""

from repro.util.ids import OidAllocator
from repro.util.rng import DeterministicRng
from repro.util.timing import ResourceMeter, ResourceUsage
from repro.util.fmt import format_table, format_bytes

__all__ = [
    "OidAllocator",
    "DeterministicRng",
    "ResourceMeter",
    "ResourceUsage",
    "format_table",
    "format_bytes",
]
