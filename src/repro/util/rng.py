"""Deterministic random-number helpers for workload generation.

The benchmark must be reproducible: the same seed must yield the same
stream of materials, steps, attribute values and BLAST hits, so that runs
against different storage managers see *identical* workloads (the paper
runs the same stream against every server version).

``DeterministicRng`` wraps :class:`random.Random` with the domain-specific
draws the generators need, plus named substreams so that adding draws in
one part of the generator does not perturb another.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

T = TypeVar("T")

_BASES = "ACGT"


class DeterministicRng:
    """Seeded RNG with named, independent substreams.

    >>> rng = DeterministicRng(42)
    >>> a = rng.substream("materials").randint(0, 10)
    >>> b = DeterministicRng(42).substream("materials").randint(0, 10)
    >>> a == b
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._random = random.Random(seed)
        self._substreams: dict[str, DeterministicRng] = {}

    # -- substreams --------------------------------------------------------

    def substream(self, name: str) -> "DeterministicRng":
        """Return a child RNG whose stream depends only on (seed, name)."""
        stream = self._substreams.get(name)
        if stream is None:
            child_seed = random.Random((self.seed, name).__repr__()).getrandbits(64)
            stream = DeterministicRng(child_seed)
            self._substreams[name] = stream
        return stream

    # -- primitive draws ----------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        return self._random.uniform(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._random.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._random.sample(seq, k)

    def shuffle(self, items: list) -> None:
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self._random.random() < probability

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """One draw from ``items`` with the given relative weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    # -- domain draws -------------------------------------------------------

    def dna(self, length: int) -> str:
        """A random DNA sequence of the given length."""
        return "".join(self._random.choice(_BASES) for _ in range(length))

    def identifier(self, prefix: str, width: int = 6) -> str:
        """A synthetic lab identifier such as ``clone-004217``."""
        return f"{prefix}-{self._random.randrange(10 ** width):0{width}d}"

    def gaussian_int(self, mean: float, stddev: float, minimum: int = 0) -> int:
        """A normally distributed integer, clamped below at ``minimum``."""
        return max(minimum, round(self._random.gauss(mean, stddev)))
