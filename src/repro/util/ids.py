"""Object-identifier allocation.

LabBase and the storage managers both hand out monotonically increasing
integer oids.  Keeping allocation in one small class makes persistence
(the allocator's high-water mark is stored in the store header) and
testing straightforward.
"""

from __future__ import annotations


class OidAllocator:
    """Monotonically increasing integer id source.

    The first id handed out is ``start`` (default 1, so 0 can serve as a
    null oid).  The allocator can be re-seeded from a persisted high-water
    mark via :meth:`restore`.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        if start < 0:
            raise ValueError("oid start must be non-negative")
        self._next = start

    def allocate(self) -> int:
        """Return a fresh, never-before-returned id."""
        oid = self._next
        self._next += 1
        return oid

    def allocate_many(self, count: int) -> range:
        """Reserve ``count`` consecutive ids and return them as a range."""
        if count < 0:
            raise ValueError("count must be non-negative")
        first = self._next
        self._next += count
        return range(first, first + count)

    @property
    def high_water(self) -> int:
        """The next id that would be allocated (for persistence)."""
        return self._next

    def restore(self, high_water: int) -> None:
        """Re-seed from a persisted high-water mark.

        Never moves backwards: restoring a stale mark cannot cause id reuse.
        """
        if high_water > self._next:
            self._next = high_water
