"""Plain-text table rendering for benchmark reports.

The harness prints results in the same layout as the paper's Section 10
table: a ``Resource`` column on the left and one column per server
version, grouped by measurement interval.  Keeping the renderer here (and
dependency-free) lets tests assert on report content without pulling in a
formatting library.
"""

from __future__ import annotations

from typing import Sequence


def format_bytes(count: int) -> str:
    """Human-readable byte count (exact below 10 KiB, scaled above)."""
    if count < 10 * 1024:
        return f"{count} B"
    value = float(count)
    for unit in ("KiB", "MiB", "GiB", "TiB"):
        value /= 1024.0
        if value < 1024.0:
            return f"{value:.2f} {unit}"
    return f"{value:.2f} PiB"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    align_right: Sequence[int] = (),
) -> str:
    """Render a monospace table.

    ``align_right`` lists column indexes to right-align (numeric columns);
    all other columns are left-aligned.
    """
    cells = [[str(h) for h in headers]]
    cells.extend([str(value) for value in row] for row in rows)
    n_cols = max(len(row) for row in cells)
    for row in cells:
        row.extend([""] * (n_cols - len(row)))
    widths = [max(len(row[col]) for row in cells) for col in range(n_cols)]
    right = set(align_right)

    def render_row(row: list[str]) -> str:
        parts = []
        for col, value in enumerate(row):
            if col in right:
                parts.append(value.rjust(widths[col]))
            else:
                parts.append(value.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in cells[1:])
    return "\n".join(lines)
