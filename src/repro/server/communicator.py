"""Wire protocol between served LabFlow clients and the service.

One request, one response, newline-framed JSON — deliberately boring.
The interesting concurrency lives in the service core
(:mod:`repro.server.service_runner`); the communicator only has to be
unambiguous, deterministic (keys are sorted, so a captured exchange
byte-compares across runs) and strict: anything malformed raises
:class:`~repro.errors.ProtocolError` instead of guessing.

Values must be JSON-representable (LabBase records are dicts, lists,
strings and numbers, so everything the served operations return
qualifies; tuples arrive back as lists).
"""

from __future__ import annotations

import json
import socket
from dataclasses import dataclass, field

from repro.errors import ProtocolError

#: Hard cap on one encoded message; a line longer than this is a
#: protocol violation, not a workload.
MAX_MESSAGE_BYTES = 4 * 1024 * 1024


@dataclass(frozen=True)
class Request:
    """One client operation: ``op`` applied for session ``session``."""

    op: str
    session: str = ""
    args: dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Response:
    """The service's answer: a value, or a typed error."""

    ok: bool
    value: object = None
    error: str = ""
    error_type: str = ""


def encode_request(request: Request) -> bytes:
    payload = {
        "op": request.op,
        "session": request.session,
        "args": request.args,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def decode_request(line: bytes) -> Request:
    payload = _decode_payload(line)
    op = payload.get("op")
    session = payload.get("session", "")
    args = payload.get("args", {})
    if not isinstance(op, str) or not op:
        raise ProtocolError("request has no operation name")
    if not isinstance(session, str):
        raise ProtocolError("request session must be a string")
    if not isinstance(args, dict):
        raise ProtocolError("request args must be an object")
    return Request(op=op, session=session, args=args)


def encode_response(response: Response) -> bytes:
    payload = {
        "ok": response.ok,
        "value": response.value,
        "error": response.error,
        "error_type": response.error_type,
    }
    return json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"


def decode_response(line: bytes) -> Response:
    payload = _decode_payload(line)
    ok = payload.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError("response has no ok flag")
    return Response(
        ok=ok,
        value=payload.get("value"),
        error=str(payload.get("error", "")),
        error_type=str(payload.get("error_type", "")),
    )


def _decode_payload(line: bytes) -> dict[str, object]:
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_MESSAGE_BYTES} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


class Channel:
    """Newline-framed JSON messages over one connected socket.

    Both ends use the same channel: the client sends requests and reads
    responses, the server reads requests and sends responses.  ``recv_*``
    returns ``None`` on a clean EOF (peer closed), raises
    :class:`ProtocolError` on garbage.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._reader = sock.makefile("rb")

    def send_request(self, request: Request) -> None:
        self._sock.sendall(encode_request(request))

    def recv_request(self) -> Request | None:
        line = self._read_line()
        return None if line is None else decode_request(line)

    def send_response(self, response: Response) -> None:
        self._sock.sendall(encode_response(response))

    def recv_response(self) -> Response | None:
        line = self._read_line()
        return None if line is None else decode_response(line)

    def roundtrip(self, request: Request) -> Response:
        """One request, one response — the client-side exchange.

        A clean EOF here is an error, not an end: the client asked a
        question and the peer hung up instead of answering.
        """
        self.send_request(request)
        response = self.recv_response()
        if response is None:
            raise ProtocolError("server closed the connection mid-exchange")
        return response

    def _read_line(self) -> bytes | None:
        line = self._reader.readline(MAX_MESSAGE_BYTES + 1)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError("unterminated message (peer died mid-line?)")
        return line

    def close(self) -> None:
        # shutdown() first: closing alone does not unblock a thread
        # sitting in readline() on the makefile wrapper.
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
