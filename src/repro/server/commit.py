"""Group commit: one storage commit for many session units of work.

The objcache (PR 3) and vectored-flush (PR 4) layers were built so many
small unit-of-work write sets could be fused into one batched transfer;
this coordinator is the piece that finally does the fusing.  Completed
update units accumulate in the open *group*; when the group closes, a
single ``db.commit()`` flushes every dirty page the group produced —
one vectored ``flush_dirty``, one sync, and (with ``checkpoint_every``
set) one checkpoint amortized over every participant, instead of one
each per unit.

What grouping defers is only page flush / sync / checkpoint.  Each
unit's object writes drain into the storage manager at the unit's own
end, in oid order, so the storage-level write sequence — and therefore
the on-disk bytes — is identical whether units commit one by one or in
a group.  That is the invariant the multi-session bit-identity property
test pins.

Counters (all rendered by the benchmark reports):

* ``group_commits`` — storage commits that closed a group;
* ``sessions_per_group`` — distinct sessions fused into those groups
  (so ``sessions_per_group / group_commits`` is the mean batch width);
* ``commit_stalls`` — groups forced closed early because a waiting
  session conflicted with locks the group still held (bumped by the
  service, which owns conflict handling).
"""

from __future__ import annotations

from repro.labbase.database import LabBase
from repro.obs.tracing import UnitTracer

#: Default number of update units that closes a group.
DEFAULT_GROUP_CAP = 8


class CommitCoordinator:
    """Batches completed session units into one storage commit."""

    def __init__(
        self,
        db: LabBase,
        *,
        enabled: bool = True,
        cap: int = DEFAULT_GROUP_CAP,
        tracer: UnitTracer | None = None,
    ) -> None:
        if cap < 1:
            raise ValueError("group-commit cap must be >= 1")
        self._db = db
        self.enabled = enabled
        self.cap = cap
        self._tracer = tracer
        self._pending: list[str] = []

    @property
    def pending_units(self) -> int:
        """Completed update units waiting for the group to close."""
        return len(self._pending)

    def pending_sessions(self) -> list[str]:
        """Distinct sessions with units in the open group, sorted."""
        return sorted(set(self._pending))

    def note_unit(self, session: str) -> None:
        """Record one completed update unit for ``session``."""
        self._pending.append(session)

    def should_close(self) -> bool:
        """Whether the group must close now (cap reached, or no grouping)."""
        if not self._pending:
            return False
        return not self.enabled or len(self._pending) >= self.cap

    def close(self) -> list[str]:
        """Close the group: one commit covering every pending unit.

        Returns the distinct participant sessions (their locks may now
        be released by the caller).  A no-op when nothing is pending.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        participants = sorted(set(pending))
        self._db.commit()
        stats = self._db.storage.stats
        stats.group_commits += 1
        stats.sessions_per_group += len(participants)
        if self._tracer is not None:
            self._tracer.group_flush(width=len(participants), units=len(pending))
        return participants
