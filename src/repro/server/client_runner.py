"""Client side of the served session layer.

Three pieces, smallest first:

* :class:`LocalClient` — the client API applied directly to an
  in-process :class:`~repro.server.service_runner.LabFlowService`
  (property tests and benchmarks want the core without socket noise);
* :class:`ServiceClient` — the same API over a socket
  :class:`~repro.server.communicator.Channel`, with bounded
  retry/backoff on lock conflicts (the client half of the queued-wait
  discipline);
* :class:`ClientRunner` — a seeded, deterministic E8-style operation
  mix (create / record_step / set_state / queries) driven through
  either client, used by the CI smoke run and bench_a6.

``run_concurrent_clients`` wires N socket clients through N threads
against one server — the shape of the CI server-smoke step.
"""

from __future__ import annotations

import random
import socket
import threading
import time

import repro.errors as errors
from repro.errors import LockError, ProtocolError, ReproError, ServerError
from repro.labbase.database import LabBase
from repro.server.communicator import Channel, Request
from repro.server.service_runner import LabFlowService, apply_request

#: Client-side retry budget for lock conflicts (the service retries
#: internally first; this covers budget exhaustion under real contention).
DEFAULT_CLIENT_RETRIES = 4

#: Base client-side backoff in seconds, scaled linearly by attempt.
DEFAULT_CLIENT_BACKOFF = 0.01

#: The workflow states the scripted mix cycles materials through.
MIX_STATES = ("active", "busy", "done")


def bootstrap_schema(db: LabBase) -> None:
    """Register the minimal schema the scripted client mix uses.

    Idempotent; call once on the LabBase before serving it to
    :class:`ClientRunner` traffic.
    """
    db.define_material_class("clone")
    db.define_step_class("measure", ["value"], ["clone"])


class _ClientOps:
    """The operation vocabulary, shared by both client flavours."""

    session: str

    def call(self, op: str, **args: object) -> object:
        raise NotImplementedError

    def call_with_retry(
        self,
        op: str,
        retries: int = DEFAULT_CLIENT_RETRIES,
        backoff: float = DEFAULT_CLIENT_BACKOFF,
        **args: object,
    ) -> object:
        """``call`` with bounded retry/backoff on lock conflicts."""
        attempts = 0
        while True:
            try:
                return self.call(op, **args)
            except LockError:
                attempts += 1
                if attempts > retries:
                    raise
                if backoff:
                    time.sleep(backoff * attempts)

    # -- updates -------------------------------------------------------------

    def create_material(
        self,
        class_name: str,
        key: str,
        valid_time: int,
        state: str | None = None,
    ) -> int:
        return _expect_int(
            self.call(
                "create_material",
                class_name=class_name,
                key=key,
                valid_time=valid_time,
                state=state,
            )
        )

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: list[int],
        results: dict[str, object] | None = None,
    ) -> int:
        return _expect_int(
            self.call(
                "record_step",
                class_name=class_name,
                valid_time=valid_time,
                involves=involves,
                results=results,
            )
        )

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None:
        self.call(
            "set_state",
            material_oid=material_oid,
            state=state,
            valid_time=valid_time,
        )

    # -- queries -------------------------------------------------------------

    def most_recent(self, material_oid: int, attribute: str) -> object:
        return self.call(
            "most_recent", material_oid=material_oid, attribute=attribute
        )

    def state_of(self, material_oid: int) -> object:
        return self.call("state_of", material_oid=material_oid)

    def lookup(self, class_name: str, key: str) -> int:
        return _expect_int(self.call("lookup", class_name=class_name, key=key))

    def in_state(self, state: str) -> list[int]:
        value = self.call("in_state", state=state)
        if not isinstance(value, list):
            raise ProtocolError(f"in_state returned {type(value).__name__}")
        return [_expect_int(oid) for oid in value]

    def history_len(self, material_oid: int) -> int:
        return _expect_int(self.call("history_len", material_oid=material_oid))

    # -- admin ---------------------------------------------------------------

    def drain(self) -> int:
        return _expect_int(self.call("drain"))

    def stats(self) -> dict[str, int]:
        value = self.call("stats")
        if not isinstance(value, dict):
            raise ProtocolError(f"stats returned {type(value).__name__}")
        return {str(name): _expect_int(count) for name, count in value.items()}

    def sample(self) -> dict[str, object]:
        """One observability poll: counters, gauges, service state."""
        value = self.call("sample")
        if not isinstance(value, dict):
            raise ProtocolError(f"sample returned {type(value).__name__}")
        return {str(name): payload for name, payload in value.items()}

    def verify_ok(self) -> bool:
        value = self.call("verify")
        if not isinstance(value, dict):
            raise ProtocolError(f"verify returned {type(value).__name__}")
        return bool(value.get("ok"))


class LocalClient(_ClientOps):
    """The client surface applied directly to an in-process service."""

    def __init__(self, service: LabFlowService, session: str) -> None:
        self._service = service
        self.session = session
        self.call("open_session")

    def call(self, op: str, **args: object) -> object:
        request = Request(op=op, session=self.session, args=dict(args))
        return apply_request(self._service, request)

    def close(self, failed: bool = False) -> None:
        self.call("close_session", failed=failed)


class ServiceClient(_ClientOps):
    """The client surface over a socket connection."""

    def __init__(self, host: str, port: int, session: str) -> None:
        self._channel = Channel(socket.create_connection((host, port)))
        self.session = session
        self._closed = False
        self.call("open_session")

    def call(self, op: str, **args: object) -> object:
        if self._closed:
            raise ServerError(f"client {self.session!r} is closed")
        request = Request(op=op, session=self.session, args=dict(args))
        try:
            response = self._channel.roundtrip(request)
        except ProtocolError as exc:
            raise ServerError(str(exc)) from exc
        if response.ok:
            return response.value
        raise _revive_error(response.error_type, response.error)

    def close(self, failed: bool = False) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            request = Request(
                op="close_session", session=self.session, args={"failed": failed}
            )
            self._channel.send_request(request)
            self._channel.recv_response()
            self._channel.send_request(Request(op="bye", session=self.session))
            self._channel.recv_response()
        except (OSError, ServerError, ProtocolError):
            pass  # closing a dead connection is still a close
        finally:
            self._channel.close()


def _revive_error(error_type: str, message: str) -> ReproError:
    """Rebuild the server's typed error so client retry logic works."""
    candidate = getattr(errors, error_type, None)
    if isinstance(candidate, type) and issubclass(candidate, ReproError):
        try:
            return candidate(message)
        except TypeError:
            # Multi-argument constructor (e.g. DuplicateKeyError): the
            # type matters more to retry logic than the re-split args.
            revived = candidate.__new__(candidate)
            Exception.__init__(revived, message)
            return revived
    return ServerError(f"{error_type or 'error'}: {message}")


def _expect_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"expected an integer, got {value!r}")
    return value


class ClientRunner:
    """A seeded E8-style mix of workflow units through one client.

    Deterministic for a given ``(seed, units)``: the mix interleaves
    creates, step recordings, state transitions and queries over the
    client's own materials (``<session>-<i>`` keys), plus optional
    ``shared_oids`` that several runners contend over.
    """

    def __init__(
        self,
        client: _ClientOps,
        *,
        seed: int = 0,
        materials: int = 4,
        shared_oids: tuple[int, ...] = (),
    ) -> None:
        if materials < 1:
            raise ValueError("the mix needs at least one material")
        self._client = client
        self._seed = seed
        self._materials = materials
        self._shared = list(shared_oids)

    def run(self, units: int) -> dict[str, int]:
        """Drive ``units`` operations; returns an operation tally."""
        client = self._client
        rng = random.Random(self._seed)
        tally = {
            "creates": 0,
            "steps": 0,
            "state_sets": 0,
            "queries": 0,
            "conflicts": 0,
        }
        tick = 0

        def next_tick() -> int:
            nonlocal tick
            tick += 1
            return tick

        own: list[int] = []
        stepped: list[int] = []
        for i in range(self._materials):
            own.append(
                client.create_material(
                    "clone",
                    f"{client.session}-{i}",
                    next_tick(),
                    state=MIX_STATES[i % len(MIX_STATES)],
                )
            )
            tally["creates"] += 1

        for _unit in range(units):
            roll = rng.random()
            pool = own + self._shared
            try:
                if roll < 0.45:
                    involves = [rng.choice(pool)]
                    if len(pool) > 1 and rng.random() < 0.3:
                        other = rng.choice(pool)
                        if other != involves[0]:
                            involves.append(other)
                    client.call_with_retry(
                        "record_step",
                        class_name="measure",
                        valid_time=next_tick(),
                        involves=involves,
                        results={"value": tick},
                    )
                    stepped.extend(o for o in involves if o not in stepped)
                    tally["steps"] += 1
                elif roll < 0.60:
                    client.call_with_retry(
                        "set_state",
                        material_oid=rng.choice(pool),
                        state=rng.choice(MIX_STATES),
                        valid_time=next_tick(),
                    )
                    tally["state_sets"] += 1
                elif roll < 0.80 and stepped:
                    client.call_with_retry(
                        "most_recent",
                        material_oid=rng.choice(stepped),
                        attribute="value",
                    )
                    tally["queries"] += 1
                else:
                    self._run_query(rng, own)
                    tally["queries"] += 1
            except LockError:
                tally["conflicts"] += 1  # retries exhausted: skip the unit
        return tally

    def _run_query(self, rng: random.Random, own: list[int]) -> None:
        client = self._client
        roll = rng.random()
        if roll < 0.4:
            client.call_with_retry("state_of", material_oid=rng.choice(own))
        elif roll < 0.7:
            client.lookup("clone", f"{client.session}-0")
        else:
            client.in_state(rng.choice(MIX_STATES))


def run_concurrent_clients(
    host: str,
    port: int,
    *,
    clients: int = 4,
    units: int = 24,
    seed: int = 11,
) -> dict[str, int]:
    """N socket clients, N threads, one server: the smoke-run shape.

    Raises :class:`ServerError` if any client thread failed; otherwise
    returns the merged operation tally.
    """
    if clients < 1:
        raise ValueError("need at least one client")
    tallies: list[dict[str, int] | None] = [None] * clients
    failures: list[str] = []

    def work(index: int) -> None:
        try:
            client = ServiceClient(host, port, f"smoke-{index}")
            try:
                tallies[index] = ClientRunner(
                    client, seed=seed + index
                ).run(units)
            finally:
                client.close()
        except (ReproError, OSError) as exc:
            failures.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=work, args=(index,), name=f"labflow-client-{index}")
        for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise ServerError("; ".join(sorted(failures)))
    merged: dict[str, int] = {}
    for tally in tallies:
        assert tally is not None  # no failure recorded, so every slot is set
        for name, count in tally.items():
            merged[name] = merged.get(name, 0) + count
    return merged
