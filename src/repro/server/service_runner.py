"""The served session layer: N clients, one LabBase, one lock space.

``LabFlowService`` is the synchronous heart of the server.  Every client
request is one **unit of work**: page locks are acquired first (oid
order, all-or-nothing), then the operation runs with its object writes
buffered in the shared object cache, then the unit drains — its writes
reach the storage manager in oid order — and, for updates, joins the
open commit group (:mod:`repro.server.commit`).  Units execute one at a
time under the service mutex; concurrency is in the *interleaving* of
sessions' units and in the socket layer around the core, exactly like
the page-server model the paper describes.

Lock discipline (strict two-phase for updates):

* update units take EXCLUSIVE locks up front and keep them until the
  group closes — no other session can observe a unit whose pages are
  not yet durable;
* query units take SHARED locks and give them back at the unit's end;
* a conflict raises :class:`~repro.errors.LockError` inside the core —
  the service turns that into the queued-wait discipline of a real page
  server: close the open group early if it holds the contended locks
  (a ``commit_stall``), otherwise wait (timeout-bounded), and retry up
  to a fixed budget before the error reaches the client.

Because all lock holders across unit boundaries are, by construction,
sessions with units in the open group, closing the group releases every
blocking lock: the retry always makes progress, so there is no deadlock
— only bounded waiting.

Durability: a unit's completion acknowledges *execution*; durability
arrives when its group closes (cap reached, conflict stall, or an
explicit ``drain``).  With ``group_commit=False`` every update unit
closes its own group — the sequential per-session baseline bench_a6
compares against.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, Iterable

from repro.errors import (
    DuplicateKeyError,
    LockError,
    ProtocolError,
    ReproError,
    ServerError,
    SessionError,
    TransactionError,
)
from repro.labbase.database import LabBase
from repro.labbase.sessions import LockedPages, SessionManager
from repro.obs.registry import gauges_from
from repro.obs.tracing import UnitTracer
from repro.obs.watchdog import LockOrderWatchdog
from repro.server.commit import DEFAULT_GROUP_CAP, CommitCoordinator
from repro.server.communicator import Channel, Request, Response

#: Retry budget for a lock-conflicted unit before the error reaches the
#: client (who may retry again at its own layer).
DEFAULT_MAX_RETRIES = 8

#: Base wait (seconds) between in-core retries when flushing the open
#: group did not resolve the conflict (i.e. another thread holds the
#: mutex-protected state mid-change).  Grows linearly with attempts.
DEFAULT_RETRY_BACKOFF = 0.005

_UPDATE_OPS = frozenset({"create_material", "record_step", "set_state"})
_QUERY_OPS = frozenset(
    {"lookup", "most_recent", "state_of", "in_state", "history_len"}
)


class LabFlowService:
    """N named sessions running workflow units against one LabBase."""

    def __init__(
        self,
        db: LabBase,
        *,
        group_commit: bool = True,
        group_cap: int = DEFAULT_GROUP_CAP,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        tracer: UnitTracer | None = None,
        watchdog: LockOrderWatchdog | None = None,
    ) -> None:
        if db.storage.in_transaction:
            raise TransactionError(
                "the served database must not have an open transaction; "
                "the service owns commit timing"
            )
        self._db = db
        self._sessions = SessionManager(db)
        self._tracer = tracer
        self._coordinator = CommitCoordinator(
            db, enabled=group_commit, cap=group_cap, tracer=tracer
        )
        self._max_retries = max(0, max_retries)
        self._retry_backoff = max(0.0, retry_backoff)
        # Any: a watched RLock and a real RLock expose the same protocol
        # (Condition included), but share no typeshed-visible base.
        self._mutex: Any = (
            watchdog.rlock("service.mutex")
            if watchdog is not None
            else threading.RLock()
        )
        self._wakeup = threading.Condition(self._mutex)
        self._completed: list[tuple[str, str, dict[str, object]]] = []

    # -- introspection -------------------------------------------------------

    @property
    def db(self) -> LabBase:
        return self._db

    @property
    def group_commit(self) -> bool:
        return self._coordinator.enabled

    def open_sessions(self) -> list[str]:
        with self._mutex:
            return self._sessions.open_sessions()

    def completed_units(self) -> list[tuple[str, str, dict[str, object]]]:
        """Update units in completion order: ``(session, op, args)``.

        Replaying exactly this sequence through a fresh service — any
        grouping, any session layout — produces a bit-identical
        database: the serial witness the property tests compare against.
        """
        with self._mutex:
            return [(s, op, dict(args)) for s, op, args in self._completed]

    @property
    def tracer(self) -> UnitTracer | None:
        return self._tracer

    def stats_snapshot(self) -> dict[str, int]:
        with self._mutex:
            return self._db.storage.stats.snapshot()

    def sample(self) -> dict[str, object]:
        """One observability poll: counters, gauges and service state.

        This is what the ``sample`` protocol op and the server's own
        interval sampler read; everything in it is JSON-safe.
        """
        with self._mutex:
            counters = self._db.storage.stats.snapshot()
            payload: dict[str, object] = {
                "counters": counters,
                "gauges": gauges_from(counters),
                "pending_units": self._coordinator.pending_units,
                "open_sessions": len(self._sessions.open_sessions()),
            }
            if self._tracer is not None:
                payload["trace"] = self._tracer.summary()
            return payload

    # -- session lifecycle ---------------------------------------------------

    def open_session(self, name: str) -> None:
        if not name:
            raise SessionError("session name must be non-empty")
        with self._mutex:
            self._sessions.open_session(name)

    def close_session(self, name: str, failed: bool = False) -> None:
        """Detach a session; its group-pending units stay committed.

        A failing session only loses what was never completed — units
        already in the open group were executed and drained, so they
        remain part of the group and become durable when it closes.
        """
        with self._mutex:
            if name not in self._sessions.open_sessions():
                return
            self._sessions.detach(name, failed=failed)
            self._wakeup.notify_all()

    # -- the unit-of-work surface -------------------------------------------

    def submit(
        self, name: str, op: str, args: dict[str, object] | None = None
    ) -> object:
        """Run one unit of work for session ``name`` and return its value.

        Retries lock conflicts internally (group flush + bounded
        backoff); raises the final :class:`LockError` only when the
        budget is exhausted.
        """
        call_args: dict[str, object] = dict(args or {})
        if op not in _UPDATE_OPS and op not in _QUERY_OPS:
            raise ProtocolError(f"unknown operation {op!r}")
        with self._mutex:
            if name not in self._sessions.open_sessions():
                raise SessionError(f"no open session {name!r}")
            attempts = 0
            while True:
                try:
                    return self._run_unit(name, op, call_args)
                except LockError:
                    attempts += 1
                    if self._tracer is not None:
                        self._tracer.lock_wait(name, op, attempt=attempts)
                    stalled = self._flush_conflicting_group()
                    if attempts > self._max_retries:
                        raise
                    if not stalled and self._retry_backoff:
                        self._wakeup.wait(self._retry_backoff * attempts)

    def drain(self) -> int:
        """Close the open group now; returns the units made durable."""
        with self._mutex:
            pending = self._coordinator.pending_units
            self._close_group()
            return pending

    def shutdown(self) -> None:
        """Drain, then close every remaining session (clean detach)."""
        with self._mutex:
            self._close_group()
            for name in self._sessions.open_sessions():
                self._sessions.detach(name)
            self._wakeup.notify_all()

    # -- unit internals ------------------------------------------------------

    def _run_unit(self, name: str, op: str, args: dict[str, object]) -> object:
        cache = self._db.cache
        tracer = self._tracer
        # Every tracer touch (including clock reads) is guarded: with no
        # tracer attached this method is byte-for-byte the PR 6 path —
        # the sampling-on/off equivalence property depends on that.
        t_begin = tracer.now() if tracer is not None else 0.0
        if tracer is not None:
            tracer.unit_begin(name, op)
        taken = self._acquire(name, op, args)
        t_locked = tracer.now() if tracer is not None else 0.0
        cache.begin_unit()
        try:
            value = self._execute(name, op, args)
        except ReproError as exc:
            # The unit never happened: drop its buffered writes and put
            # its locks back the way the acquisition found them.
            cache.discard_unit()
            self._restore_unit_locks(name, taken)
            if tracer is not None:
                tracer.abort(name, op, error_type=type(exc).__name__)
            raise
        t_executed = tracer.now() if tracer is not None else 0.0
        cache.end_unit()
        if op in _UPDATE_OPS:
            self._completed.append((name, op, dict(args)))
            self._coordinator.note_unit(name)
            if self._coordinator.should_close():
                self._close_group()
        else:
            self._release_query_locks(name, taken)
        if tracer is not None:
            tracer.unit_end(
                name,
                op,
                lock_seconds=t_locked - t_begin,
                exec_seconds=t_executed - t_locked,
                drain_seconds=tracer.now() - t_executed,
            )
        return value

    def _acquire(self, name: str, op: str, args: dict[str, object]) -> LockedPages:
        if op == "record_step":
            involves = [int(oid) for oid in _as_iterable(args.get("involves"))]
            return self._sessions.lock_objects(name, involves, exclusive=True)
        if op == "set_state":
            return self._sessions.lock_object(
                name, int(_as_int(args.get("material_oid"))), True
            )
        if op in ("most_recent", "state_of", "history_len"):
            return self._sessions.lock_object(
                name, int(_as_int(args.get("material_oid"))), False
            )
        # create_material locks nothing: the material does not exist yet
        # and its record may share a page only with records the executor
        # serializes anyway.  lookup/in_state are catalog-level reads.
        return LockedPages()

    def _execute(self, name: str, op: str, args: dict[str, object]) -> object:
        db = self._db
        if op == "create_material":
            class_name = str(args.get("class_name"))
            key = str(args.get("key"))
            # Pre-check: create_material allocates before its index
            # insert can raise, and allocation is not undoable by a
            # unit discard — refuse duplicates before touching storage.
            if db.material_exists(class_name, key):
                raise DuplicateKeyError(class_name, key)
            state = args.get("state")
            return db.create_material(
                class_name,
                key,
                _as_int(args.get("valid_time")),
                state=None if state is None else str(state),
            )
        if op == "record_step":
            results = args.get("results")
            if results is not None and not isinstance(results, dict):
                raise ProtocolError("record_step results must be an object")
            version = args.get("version_id")
            return db.record_step(
                str(args.get("class_name")),
                _as_int(args.get("valid_time")),
                [int(oid) for oid in _as_iterable(args.get("involves"))],
                results,
                None if version is None else int(_as_int(version)),
            )
        if op == "set_state":
            db.set_state(
                _as_int(args.get("material_oid")),
                str(args.get("state")),
                _as_int(args.get("valid_time")),
            )
            return None
        if op == "most_recent":
            return db.most_recent(
                _as_int(args.get("material_oid")), str(args.get("attribute"))
            )
        if op == "state_of":
            return db.state_of(_as_int(args.get("material_oid")))
        if op == "lookup":
            return db.lookup(str(args.get("class_name")), str(args.get("key")))
        if op == "in_state":
            return db.in_state(str(args.get("state")))
        if op == "history_len":
            return len(db.material_history(_as_int(args.get("material_oid"))))
        raise ProtocolError(f"unknown operation {op!r}")

    def _close_group(self) -> None:
        participants = self._coordinator.close()
        for participant in participants:
            # The group close IS unit/commit end: every participant's
            # locks go at the durability boundary.
            # lint: ignore[LF08] -- group-commit durability boundary
            self._sessions.release(participant)
        self._wakeup.notify_all()

    def _flush_conflicting_group(self) -> bool:
        """Conflict handling: the open group may hold the contended locks.

        Closing it early releases them (and makes its units durable) —
        the cost is a smaller batch, counted as a ``commit_stall``.
        Returns True when a group was actually closed.
        """
        if self._coordinator.pending_units == 0:
            return False
        self._db.storage.stats.commit_stalls += 1
        self._close_group()
        return True

    def _restore_unit_locks(self, name: str, taken: LockedPages) -> None:
        if not self._db.storage.supports_concurrency:
            return
        for page_id in taken.new:
            self._db.storage.unlock_page(name, page_id)
        for page_id in taken.upgraded:
            self._db.storage.downgrade_page(name, page_id)

    def _release_query_locks(self, name: str, taken: LockedPages) -> None:
        # Shared grants never upgrade; give back only what this unit
        # newly took — pages held by the session's group-pending update
        # units stay locked until the group closes.
        if not self._db.storage.supports_concurrency:
            return
        for page_id in taken.new:
            # Query units are not two-phase: SHARED grants go back at
            # unit end by design (see the module docstring), and
            # update-path grants never route through here.
            # lint: ignore[LF08] -- shared-grant release at query unit end
            self._db.storage.unlock_page(name, page_id)


def _as_int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float, str)):
        raise ProtocolError(f"expected an integer, got {value!r}")
    try:
        return int(value)
    except ValueError as exc:
        raise ProtocolError(f"expected an integer, got {value!r}") from exc


def _as_iterable(value: object) -> Iterable[object]:
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"expected a list, got {value!r}")
    return value


class ServiceRunner:
    """Socket front-end: one reader thread per connection, one core.

    The runner listens on ``host:port`` (port 0 picks a free port),
    decodes each connection's requests and applies them to the shared
    :class:`LabFlowService`.  Application errors travel back as typed
    error responses; only a dead connection ends its thread.
    """

    def __init__(
        self,
        service: LabFlowService,
        host: str = "127.0.0.1",
        port: int = 0,
        watchdog: LockOrderWatchdog | None = None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._channels: set[Channel] = set()
        # Any: watched Lock / real Lock, same protocol, no shared base.
        # _channel_lock guards _channels AND _threads — the two
        # containers both the acceptor and the stopping thread touch.
        self._channel_lock: Any = (
            watchdog.lock("runner.channels")
            if watchdog is not None
            else threading.Lock()
        )
        self._closing = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        if self._listener is None:
            raise ServerError("server is not running")
        addr = self._listener.getsockname()
        return str(addr[0]), int(addr[1])

    def start(self) -> tuple[str, int]:
        """Bind, listen and start accepting; returns the bound address."""
        if self._listener is not None:
            raise ServerError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen()
        self._listener = listener
        acceptor = threading.Thread(
            target=self._accept_loop,
            args=(listener,),
            name="labflow-accept",
            daemon=True,
        )
        acceptor.start()
        with self._channel_lock:
            self._threads.append(acceptor)
        return self.address

    def stop(self) -> None:
        """Stop accepting, close connections, drain the service."""
        self._closing.set()
        if self._listener is not None:
            try:
                # shutdown() wakes the thread blocked in accept();
                # close() alone leaves it sleeping until a connection.
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._channel_lock:
            channels = list(self._channels)
            threads = list(self._threads)
            self._threads.clear()
        for channel in channels:
            channel.close()
        # Join outside _channel_lock: exiting workers take it to drop
        # their channel, and the acceptor takes it to register late ones.
        for thread in threads:
            thread.join(timeout=5.0)
        self._listener = None
        self._service.shutdown()

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._closing.is_set():
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            channel = Channel(conn)
            worker = threading.Thread(
                target=self._serve_connection,
                args=(channel,),
                name="labflow-conn",
                daemon=True,
            )
            with self._channel_lock:
                self._channels.add(channel)
                self._threads.append(worker)
            worker.start()

    def _serve_connection(self, channel: Channel) -> None:
        try:
            while not self._closing.is_set():
                try:
                    request = channel.recv_request()
                except ProtocolError as exc:
                    channel.send_response(_error_response(exc))
                    return
                except OSError:
                    return
                if request is None:
                    return  # clean EOF
                try:
                    channel.send_response(self._handle(request))
                except OSError:
                    return
                if request.op == "bye":
                    return
        finally:
            with self._channel_lock:
                self._channels.discard(channel)
            channel.close()

    def _handle(self, request: Request) -> Response:
        try:
            return Response(ok=True, value=apply_request(self._service, request))
        except ReproError as exc:
            return _error_response(exc)


def apply_request(service: LabFlowService, request: Request) -> object:
    """Apply one protocol request to a service (sockets or in-process).

    The session-management and admin operations live here so the socket
    runner and :class:`~repro.server.client_runner.LocalClient` dispatch
    identically; everything else is a unit of work for ``submit``.
    """
    op = request.op
    if op == "ping" or op == "bye":
        return "pong"
    if op == "open_session":
        service.open_session(request.session)
        return None
    if op == "close_session":
        service.close_session(
            request.session, failed=bool(request.args.get("failed"))
        )
        return None
    if op == "drain":
        return service.drain()
    if op == "stats":
        return service.stats_snapshot()
    if op == "sample":
        return service.sample()
    if op == "verify":
        service.drain()
        report = service.db.verify_storage()
        return {"ok": report.ok, "problems": list(report.problems)}
    return service.submit(request.session, op, request.args)


def _error_response(exc: ReproError) -> Response:
    return Response(ok=False, error=str(exc), error_type=type(exc).__name__)
