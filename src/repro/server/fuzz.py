"""Deterministic schedule fuzzing for the concurrent server.

The property tests replay one fixed interleaving per seed; the fuzzer
explores *many* interleavings and checks the same invariant for each:
an interleaved run must produce a database bit-identical to a serial
replay of its own completion order (Section 7's serial-equivalence
claim, exercised instead of assumed).

Determinism is the whole design.  A :class:`ScheduleFuzzer` precomputes
the entire schedule — which session runs each unit, and what that unit
does — from one seed before any thread starts.  Worker threads then
token-pass a *gate* lock: a thread runs its unit only while it holds the
gate and the schedule says it is that thread's turn, so the execution
order is exactly the precomputed schedule, every run, on every backend.
The units still execute on real threads through the real service mutex,
so the same run doubles as a :class:`~repro.obs.watchdog.LockOrderWatchdog`
workout: the gate ranks *below* ``service.mutex`` in
:data:`repro.obs.tracing.LOCK_RANKS`, making gate -> mutex -> tracer the
sanctioned nesting and any drift a reported inversion.

Backends that refuse concurrent sessions are still swept — with one
session the schedule degenerates to serial, and the equivalence check
becomes a replay-determinism check, which is exactly the guarantee those
backends do make.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Protocol, Sequence

from repro.errors import LockError
from repro.labbase.database import LabBase
from repro.obs.watchdog import LockOrderWatchdog
from repro.server.client_runner import MIX_STATES, LocalClient, bootstrap_schema
from repro.server.service_runner import LabFlowService
from repro.storage import registry
from repro.util.rng import DeterministicRng

DEFAULT_SESSIONS = 3
DEFAULT_UNITS = 8
_CODE_SPAN = 1 << 30


def make_schedule(
    n_sessions: int, units_per_session: int, rng: DeterministicRng
) -> tuple[int, ...]:
    """A full interleaving: session index for each of the N*U slots.

    Every session appears exactly ``units_per_session`` times; the order
    is a seeded draw among sessions with work remaining, so different
    seeds yield genuinely different contention patterns while one seed
    always yields the same schedule.
    """
    remaining = [units_per_session] * n_sessions
    schedule: list[int] = []
    while any(remaining):
        candidates = [i for i, left in enumerate(remaining) if left]
        pick = rng.choice(candidates)
        remaining[pick] -= 1
        schedule.append(pick)
    return tuple(schedule)


class ScheduleFuzzer:
    """Drive one precomputed interleaving through a live service.

    One worker thread per session; the gate lock (watchdog-wrapped when
    a watchdog is supplied, rank 0 in the lock-order table) serialises
    unit execution in schedule order.  All cross-thread state — the
    schedule cursor, per-session material pools, the tally — is only
    ever touched with the gate held.
    """

    def __init__(
        self,
        service: LabFlowService,
        session_names: Sequence[str],
        *,
        units_per_session: int = DEFAULT_UNITS,
        seed: int = 0,
        watchdog: LockOrderWatchdog | None = None,
    ) -> None:
        if not session_names:
            raise ValueError("the fuzzer needs at least one session")
        if units_per_session < 1:
            raise ValueError("units_per_session must be positive")
        self._service = service
        self._names = tuple(session_names)
        rng = DeterministicRng(seed)
        self._schedule = make_schedule(
            len(self._names), units_per_session, rng.substream("schedule")
        )
        codes = rng.substream("codes")
        self._codes = tuple(
            codes.randint(0, _CODE_SPAN - 1) for _ in self._schedule
        )
        # Any: a watched Lock and a real Lock expose the same protocol
        # (Condition included), but share no typeshed-visible base.
        self._gate_lock: Any = (
            watchdog.lock("fuzz.gate")
            if watchdog is not None
            else threading.Lock()
        )
        self._turn = threading.Condition(self._gate_lock)
        self._pos = 0
        self._tick = 0
        self._failure: BaseException | None = None
        self._clients: dict[str, LocalClient] = {}
        self._own: dict[str, list[int]] = {}
        self._tally = {
            "creates": 0,
            "steps": 0,
            "state_sets": 0,
            "queries": 0,
            "conflicts": 0,
        }

    @property
    def schedule(self) -> tuple[int, ...]:
        return self._schedule

    def run(self) -> dict[str, int]:
        """Execute the schedule; returns the operation tally.

        Any exception a unit raised on a worker thread (other than the
        :class:`LockError` conflicts the tally counts) is re-raised
        here, on the caller's thread.
        """
        with self._gate_lock:
            for name in self._names:
                client = LocalClient(self._service, name)
                self._clients[name] = client
                self._tick += 1
                seed_oid = client.create_material(
                    "clone", f"{name}-seed", self._tick, state="active"
                )
                self._own[name] = [seed_oid]
                self._tally["creates"] += 1
        workers = [
            threading.Thread(
                target=self._worker, args=(index,), name=f"fuzz-{name}"
            )
            for index, name in enumerate(self._names)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        with self._gate_lock:
            for name in sorted(self._clients):
                self._clients[name].close()
            if self._failure is not None:
                raise self._failure
            return dict(self._tally)

    # -- worker side ---------------------------------------------------------

    def _worker(self, index: int) -> None:
        name = self._names[index]
        while True:
            with self._gate_lock:
                while (
                    self._failure is None
                    and self._pos < len(self._schedule)
                    and self._schedule[self._pos] != index
                ):
                    self._turn.wait()
                if self._failure is not None or self._pos >= len(
                    self._schedule
                ):
                    self._turn.notify_all()
                    return
                code = self._codes[self._pos]
                try:
                    self._run_unit(name, code)
                except LockError:
                    self._tally["conflicts"] += 1
                # lint: ignore[LF06] -- captured, re-raised by run()
                except Exception as exc:
                    self._failure = exc
                self._pos += 1
                self._turn.notify_all()

    def _run_unit(self, name: str, code: int) -> None:
        self._tick += 1
        client = self._clients[name]
        own = self._own[name]
        pool = own + [self._own[other][0] for other in self._names]
        _mix_unit(client, name, code, self._tick, own, pool, self._tally)


class MixClient(Protocol):
    """The op surface the mix interpreter drives.

    Both the service-backed :class:`LocalClient` and the session-less
    :class:`_DirectClient` satisfy it; typing the interpreter against
    the protocol (not a union) also tells the concurrency sanitizer the
    two implementations are distinct call targets, so the gate-held
    threaded path is not conflated with the lock-free direct path.
    """

    def create_material(
        self,
        class_name: str,
        key: str,
        valid_time: int,
        state: str | None = None,
    ) -> int: ...

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: list[int],
        results: dict[str, object] | None = None,
    ) -> object: ...

    def set_state(
        self, material_oid: int, state: str, valid_time: int
    ) -> None: ...

    def state_of(self, material_oid: int) -> object: ...

    def history_len(self, material_oid: int) -> object: ...


def _mix_unit(
    client: MixClient,
    name: str,
    code: int,
    tick: int,
    own: list[int],
    pool: list[int],
    tally: dict[str, int],
) -> None:
    """One unit of the mix, decoded from ``code``.

    The op vocabulary mirrors the property tests' interpreter: create /
    step / state-set / two query shapes, with every session's seed
    material in every pool so schedules genuinely contend on shared
    pages.
    """
    target = pool[code % len(pool)]
    kind = code % 5
    if kind == 0:
        own.append(
            client.create_material(
                "clone",
                f"{name}-{tick}",
                tick,
                state=MIX_STATES[code % len(MIX_STATES)],
            )
        )
        tally["creates"] += 1
    elif kind == 1:
        involves = [target]
        extra = pool[(code // 7) % len(pool)]
        if extra != target:
            involves.append(extra)
        client.record_step("measure", tick, involves, {"value": code})
        tally["steps"] += 1
    elif kind == 2:
        client.set_state(target, MIX_STATES[code % len(MIX_STATES)], tick)
        tally["state_sets"] += 1
    elif kind == 3:
        client.state_of(target)
        tally["queries"] += 1
    else:
        client.history_len(target)
        tally["queries"] += 1


# ---------------------------------------------------------------------------
# direct drive: the path for backends with no client sessions at all
# ---------------------------------------------------------------------------


_UPDATE_OPS = frozenset({"create_material", "record_step", "set_state"})


def _arg_int(args: dict[str, object], key: str) -> int:
    value = args[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"recorded unit arg {key!r} is not an int: {value!r}")
    return value


def _arg_oids(args: dict[str, object], key: str) -> list[int]:
    value = args[key]
    if not isinstance(value, (list, tuple)):
        raise ValueError(f"recorded unit arg {key!r} is not a list: {value!r}")
    return [int(oid) for oid in value]


def apply_unit(db: LabBase, op: str, args: dict[str, object]) -> object:
    """Run one recorded unit straight against a :class:`LabBase`.

    This is the replay interpreter for backends the service cannot wrap
    (no ``attach_client``): one transaction per update unit, queries
    outside any transaction — the same unit boundaries the serial
    witness uses.
    """
    update = op in _UPDATE_OPS
    if update:
        db.begin()
    if op == "create_material":
        state = args.get("state")
        value: object = db.create_material(
            str(args["class_name"]),
            str(args["key"]),
            _arg_int(args, "valid_time"),
            state=None if state is None else str(state),
        )
    elif op == "record_step":
        results = args.get("results")
        value = db.record_step(
            str(args["class_name"]),
            _arg_int(args, "valid_time"),
            _arg_oids(args, "involves"),
            results if isinstance(results, dict) else None,
        )
    elif op == "set_state":
        db.set_state(
            _arg_int(args, "material_oid"),
            str(args["state"]),
            _arg_int(args, "valid_time"),
        )
        value = None
    elif op == "state_of":
        value = db.state_of(_arg_int(args, "material_oid"))
    elif op == "history_len":
        value = len(db.material_history(_arg_int(args, "material_oid")))
    else:
        raise ValueError(f"unknown direct op {op!r}")
    if update:
        db.commit()
    return value


class _DirectClient:
    """The :class:`LocalClient` op surface over a bare :class:`LabBase`.

    No sessions, no locks — the single-threaded stand-in for backends
    that cannot be served.  Update units are recorded in ``completed``
    in execution order, mirroring ``LabFlowService.completed_units``.
    """

    def __init__(
        self,
        db: LabBase,
        session: str,
        completed: list[tuple[str, str, dict[str, object]]],
    ) -> None:
        self._db = db
        self.session = session
        self._completed = completed

    def _unit(self, op: str, args: dict[str, object]) -> object:
        value = apply_unit(self._db, op, args)
        if op in _UPDATE_OPS:
            self._completed.append((self.session, op, dict(args)))
        return value

    def create_material(
        self,
        class_name: str,
        key: str,
        valid_time: int,
        state: str | None = None,
    ) -> int:
        oid = self._unit(
            "create_material",
            {
                "class_name": class_name,
                "key": key,
                "valid_time": valid_time,
                "state": state,
            },
        )
        assert isinstance(oid, int)
        return oid

    def record_step(
        self,
        class_name: str,
        valid_time: int,
        involves: list[int],
        results: dict[str, object] | None = None,
    ) -> object:
        return self._unit(
            "record_step",
            {
                "class_name": class_name,
                "valid_time": valid_time,
                "involves": list(involves),
                "results": results,
            },
        )

    def set_state(self, material_oid: int, state: str, valid_time: int) -> None:
        self._unit(
            "set_state",
            {
                "material_oid": material_oid,
                "state": state,
                "valid_time": valid_time,
            },
        )

    def state_of(self, material_oid: int) -> object:
        return self._unit("state_of", {"material_oid": material_oid})

    def history_len(self, material_oid: int) -> object:
        return self._unit("history_len", {"material_oid": material_oid})


def _direct_run(
    db: LabBase,
    names: Sequence[str],
    schedule: Sequence[int],
    codes: Sequence[int],
) -> tuple[list[tuple[str, str, dict[str, object]]], dict[str, int]]:
    """Run the schedule single-threaded, straight against the database."""
    completed: list[tuple[str, str, dict[str, object]]] = []
    clients = {name: _DirectClient(db, name, completed) for name in names}
    own: dict[str, list[int]] = {}
    tally = {
        "creates": 0,
        "steps": 0,
        "state_sets": 0,
        "queries": 0,
        "conflicts": 0,
    }
    tick = 0
    for name in names:
        tick += 1
        own[name] = [
            clients[name].create_material(
                "clone", f"{name}-seed", tick, state="active"
            )
        ]
        tally["creates"] += 1
    for pos, index in enumerate(schedule):
        name = names[index]
        tick += 1
        pool = own[name] + [own[other][0] for other in names]
        _mix_unit(clients[name], name, codes[pos], tick, own[name], pool, tally)
    return completed, tally


# ---------------------------------------------------------------------------
# the sweep harness: fuzz a backend, replay serially, compare
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzzed schedule on one backend."""

    backend: str
    seed: int
    sessions: int
    units_per_session: int
    completed_units: int
    conflicts: int
    identical: bool
    fingerprint: str
    watchdog_violations: int

    def to_json(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "seed": self.seed,
            "sessions": self.sessions,
            "units_per_session": self.units_per_session,
            "completed_units": self.completed_units,
            "conflicts": self.conflicts,
            "identical": self.identical,
            "fingerprint": self.fingerprint,
            "watchdog_violations": self.watchdog_violations,
        }


def file_fingerprint(directory: str) -> str:
    """SHA-256 over every file (name and bytes) under ``directory``."""
    digest = hashlib.sha256()
    for entry in sorted(os.listdir(directory)):
        path = os.path.join(directory, entry)
        if not os.path.isfile(path):
            continue
        digest.update(entry.encode())
        with open(path, "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def logical_fingerprint(db: LabBase) -> str:
    """SHA-256 over every material and step record, in oid order.

    The byte-equality witness for backends with no bytes on disk.
    """
    digest = hashlib.sha256()
    for oid, record in sorted(db.iter_materials()):
        digest.update(repr((oid, sorted(record.items()))).encode())
    for oid, record in sorted(db.iter_steps()):
        digest.update(repr((oid, sorted(record.items()))).encode())
    return digest.hexdigest()


def fuzz_backend(
    backend_name: str,
    *,
    seed: int = 0,
    sessions: int = DEFAULT_SESSIONS,
    units_per_session: int = DEFAULT_UNITS,
    group_commit: bool = True,
    watchdog: LockOrderWatchdog | None = None,
) -> FuzzReport:
    """Fuzz one schedule, replay its completion order serially, compare.

    Non-concurrent backends run a single session (their contract), and
    backends with no session support at all run the schedule straight
    against the database on one thread; the comparison still holds for
    both, now as a replay-determinism check.
    """
    info = registry.backend(backend_name)
    servable = hasattr(info.cls, "attach_client")
    n_sessions = sessions if info.concurrent else 1
    names = [f"s{i}" for i in range(n_sessions)]
    with tempfile.TemporaryDirectory(prefix="labflow-fuzz-") as root:
        fuzz_dir = os.path.join(root, "fuzzed")
        serial_dir = os.path.join(root, "serial")
        os.mkdir(fuzz_dir)
        os.mkdir(serial_dir)

        store = registry.create(
            backend_name,
            path=os.path.join(fuzz_dir, "db.pages") if info.persistent else None,
        )
        db = LabBase(store)
        bootstrap_schema(db)
        if servable:
            service = LabFlowService(
                db,
                group_commit=group_commit,
                group_cap=3,
                retry_backoff=0.0,
                watchdog=watchdog,
            )
            fuzzer = ScheduleFuzzer(
                service,
                names,
                units_per_session=units_per_session,
                seed=seed,
                watchdog=watchdog,
            )
            tally = fuzzer.run()
            completed = service.completed_units()
            service.shutdown()
        else:
            rng = DeterministicRng(seed)
            schedule = make_schedule(
                len(names), units_per_session, rng.substream("schedule")
            )
            codes = [
                rng.substream("codes").randint(0, _CODE_SPAN - 1)
                for _ in schedule
            ]
            completed, tally = _direct_run(db, names, schedule, codes)
        assert db.verify_storage().ok
        if info.persistent:
            store.close()
            fuzzed_print = file_fingerprint(fuzz_dir)
        else:
            fuzzed_print = logical_fingerprint(db)
            store.close()

        replay = registry.create(
            backend_name,
            path=(
                os.path.join(serial_dir, "db.pages")
                if info.persistent
                else None
            ),
        )
        replay_db = LabBase(replay)
        bootstrap_schema(replay_db)
        if servable:
            witness = LabFlowService(replay_db, group_commit=False)
            witness.open_session("serial")
            # The witness must replay units in completion order — one
            # session, one unit at a time, so there is nothing to rank.
            # lint: ignore[LF08] -- serial replay preserves completion order
            for _session, op, args in completed:
                witness.submit("serial", op, args)
            witness.shutdown()
        else:
            for _session, op, args in completed:
                apply_unit(replay_db, op, args)
        if info.persistent:
            replay.close()
            serial_print = file_fingerprint(serial_dir)
        else:
            serial_print = logical_fingerprint(replay_db)
            replay.close()

    return FuzzReport(
        backend=backend_name,
        seed=seed,
        sessions=n_sessions,
        units_per_session=units_per_session,
        completed_units=len(completed),
        conflicts=tally["conflicts"],
        identical=fuzzed_print == serial_print,
        fingerprint=fuzzed_print,
        watchdog_violations=(
            0 if watchdog is None else len(watchdog.violations())
        ),
    )


def fuzz_sweep(
    backend_names: Sequence[str] | None = None,
    *,
    seeds: Sequence[int] = (0, 1),
    sessions: int = DEFAULT_SESSIONS,
    units_per_session: int = DEFAULT_UNITS,
    sanitize: bool = True,
) -> list[FuzzReport]:
    """Fuzz every backend (or the named ones) across ``seeds``.

    With ``sanitize`` each run gets a fresh lock-order watchdog, so the
    sweep also asserts the server's runtime lock discipline.
    """
    names = (
        list(backend_names)
        if backend_names is not None
        else list(registry.backend_names())
    )
    reports = []
    # Backends run one at a time in registry column order; each run tears
    # its service down before the next starts, so nothing is held across
    # iterations and acquisition ranking across sessions does not apply.
    # lint: ignore[LF08] -- sequential sweep, no locks held across runs
    for name in names:
        # lint: ignore[LF08] -- sequential sweep, no locks held across runs
        for seed in seeds:
            watchdog = LockOrderWatchdog() if sanitize else None
            reports.append(
                fuzz_backend(
                    name,
                    seed=seed,
                    sessions=sessions,
                    units_per_session=units_per_session,
                    watchdog=watchdog,
                )
            )
    return reports
