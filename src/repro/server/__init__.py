"""The served, concurrent session layer over one LabBase.

The paper's Section 10 usability headline — ObjectStore "offers
concurrent access with lock based concurrency control implemented in a
page server" — becomes runnable here: N clients drive workflow sessions
against one storage manager through a socket server, with per-session
page locking, queued waits with bounded retry, and **group commit**
batching concurrently-arriving session commits into one vectored flush.

Decomposition (see DESIGN.md §13):

* :mod:`~repro.server.communicator` — newline-framed JSON requests and
  responses over a socket;
* :mod:`~repro.server.service_runner` — the deterministic synchronous
  service core (:class:`LabFlowService`) and the threaded socket
  front-end (:class:`ServiceRunner`);
* :mod:`~repro.server.commit` — the group-commit coordinator;
* :mod:`~repro.server.client_runner` — client proxies and the scripted
  deterministic mix used by the CI smoke run and bench_a6.
"""

from repro.server.commit import DEFAULT_GROUP_CAP, CommitCoordinator
from repro.server.communicator import (
    Channel,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.server.client_runner import (
    ClientRunner,
    LocalClient,
    ServiceClient,
    bootstrap_schema,
    run_concurrent_clients,
)
from repro.server.service_runner import (
    DEFAULT_MAX_RETRIES,
    LabFlowService,
    ServiceRunner,
    apply_request,
)

__all__ = [
    "CommitCoordinator",
    "DEFAULT_GROUP_CAP",
    "DEFAULT_MAX_RETRIES",
    "Channel",
    "Request",
    "Response",
    "encode_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "LabFlowService",
    "ServiceRunner",
    "apply_request",
    "ClientRunner",
    "LocalClient",
    "ServiceClient",
    "bootstrap_schema",
    "run_concurrent_clients",
]
