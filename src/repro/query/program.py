"""Programs: rules + dynamic facts + LabBase base predicates.

A :class:`Program` is what applications query.  It combines:

* consulted **rules** (the deductive view definitions);
* **dynamic facts** maintained by ``assert``/``retract``;
* the **LabBase base predicates** — the view of the workflow database
  the paper's Section 7 describes, defined *independently of the
  workflow* so workflow changes never invalidate queries:

  ===============================  =============================================
  predicate                        meaning
  ===============================  =============================================
  ``material(Class, Key, M)``      M is the material Key of class Class
  ``material_class(C)``            C is a registered material class
  ``step_class(C)``                C is a registered step class
  ``state(M, S)``                  material M is currently in workflow state S
  ``value_of(M, A, V)``            V is M's most-recent value for attribute A
  ``history_step(M, Step)``        Step is in M's event history
  ``involves(Step, M)``            step Step involved material M
  ``step_info(Step, C, T)``        Step is a C step with valid time T
  ``step_result(Step, A, V)``      Step recorded value V for attribute A
  ``class_count(C, N)``            N materials in class C (with subclasses)
  ``step_count(C, N)``             N steps recorded under step class C
  ``create_material(C, Key, M)``   update: create a material (U2)
  ``record_step(C, Ms, Results)``  update: record a step (U1); Results is a
                                   list of ``attr = value`` pairs
  ``set_state(M, S)``              update: workflow state transition (U3)
  ===============================  =============================================

``assert(state(M, S))`` and ``retract(state(M, S))`` route to LabBase's
state store, so the paper's Section 7 transition rules run verbatim::

    promote(M) <- state(M, waiting_for_sequencing),
                  test:sequencing_ok(M),
                  retract(state(M, waiting_for_sequencing)),
                  assert(state(M, waiting_for_incorporation)).
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import (
    EvaluationError,
    InstantiationError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownMaterialError,
)
from repro.labbase.database import LabBase
from repro.labbase.temporal import LabClock
from repro.query import ast
from repro.query.builtins import CORE_BUILTINS
from repro.query.engine import Builtin, Engine
from repro.query.parser import parse_program, parse_query
from repro.query.unify import resolve, unify, walk


class RuleBase:
    """Rules and dynamic facts indexed by predicate indicator."""

    def __init__(self) -> None:
        self._clauses: dict[str, list[ast.Rule]] = {}

    def add_rule(self, rule: ast.Rule) -> None:
        self._clauses.setdefault(rule.head.indicator, []).append(rule)

    def declare(self, indicator: str) -> None:
        """Make a predicate known (empty) so calls fail instead of error."""
        self._clauses.setdefault(indicator, [])

    def clauses_for(self, indicator: str) -> list[ast.Rule] | None:
        return self._clauses.get(indicator)

    def retract_first(self, fact: ast.Struct, subst: dict) -> dict | None:
        """Remove the first clause whose head unifies; returns new subst."""
        clauses = self._clauses.get(fact.indicator, [])
        for index, clause in enumerate(clauses):
            if clause.body:
                continue
            new = unify(fact, clause.head, subst)
            if new is not None:
                del clauses[index]
                return new
        return None

    def indicators(self) -> list[str]:
        return sorted(self._clauses)


class Program:
    """A queryable deductive program, optionally bound to a LabBase."""

    def __init__(
        self,
        db: LabBase | None = None,
        clock: LabClock | None = None,
        text: str | None = None,
        max_depth: int = 4000,
    ) -> None:
        self.rules = RuleBase()
        self.db = db
        self.clock = clock or LabClock()
        self._builtins: dict[str, Builtin] = dict(CORE_BUILTINS)
        self._builtins["assert/1"] = self._bi_assert
        self._builtins["retract/1"] = self._bi_retract
        if db is not None:
            self._install_labbase_predicates()
        self.engine = Engine(self, max_depth=max_depth)
        self.engine.output = []  # write/1 sink
        if text:
            self.consult(text)

    # -- GoalSource protocol ------------------------------------------------------

    def builtin_for(self, indicator: str) -> Builtin | None:
        return self._builtins.get(indicator)

    def clauses_for(self, indicator: str) -> list[ast.Rule] | None:
        return self.rules.clauses_for(indicator)

    # -- loading ---------------------------------------------------------------------

    def consult(self, text: str) -> list[tuple]:
        """Load rules from program text; returns embedded ``?-`` queries."""
        rules, queries = parse_program(text)
        for rule in rules:
            if rule.head.indicator in self._builtins:
                raise EvaluationError(
                    f"cannot redefine builtin {rule.head.indicator}"
                )
            self.rules.add_rule(rule)
        return queries

    # -- querying ------------------------------------------------------------------------

    def solve(self, query: str | tuple) -> Iterator[dict[str, object]]:
        """Solutions as {variable name: Python value} dicts."""
        goals = parse_query(query) if isinstance(query, str) else tuple(query)
        variables = _query_variables(goals)
        for subst in self.engine.solve(goals):
            yield {
                var.name: _lower(resolve(var, subst)) for var in variables
            }

    def solutions(self, query: str | tuple) -> list[dict[str, object]]:
        return list(self.solve(query))

    def ask(self, query: str | tuple) -> bool:
        """Whether the query has at least one solution."""
        for _ in self.solve(query):
            return True
        return False

    def first(self, query: str | tuple) -> dict[str, object] | None:
        for solution in self.solve(query):
            return solution
        return None

    def output_text(self) -> str:
        """Text produced by write/1 and nl/0 so far."""
        return "".join(self.engine.output)

    # -- assert / retract --------------------------------------------------------------

    def _bi_assert(self, engine, goal, subst, depth):
        fact = resolve(goal.args[0], subst)
        fact = _as_struct(fact, "assert/1")
        if self.db is not None and fact.indicator == "state/2":
            material_oid = _need_int(fact.args[0], "assert(state/2)")
            state = _need_name(fact.args[1], "assert(state/2)")
            self.db.set_state(material_oid, state, self.clock.tick())
            yield subst
            return
        if fact.indicator in self._builtins:
            raise EvaluationError(f"cannot assert over builtin {fact.indicator}")
        self.rules.add_rule(ast.Rule(head=fact, body=()))
        yield subst

    def _bi_retract(self, engine, goal, subst, depth):
        fact = walk(goal.args[0], subst)
        fact = _as_struct(fact, "retract/1")
        if self.db is not None and fact.indicator == "state/2":
            material_oid = _need_int(resolve(fact.args[0], subst), "retract(state/2)")
            current = self.db.state_of(material_oid)
            if current is None:
                return
            new = unify(fact.args[1], ast.Const(ast.sym(current)), subst)
            if new is None:
                return
            self.db.clear_state(material_oid)
            yield new
            return
        new = self.rules.retract_first(fact, subst)
        if new is not None:
            yield new

    # -- LabBase base predicates -----------------------------------------------------------

    def _install_labbase_predicates(self) -> None:
        self._builtins.update(
            {
                "material/3": self._bp_material,
                "material_class/1": self._bp_material_class,
                "step_class/1": self._bp_step_class,
                "state/2": self._bp_state,
                "workflow_state/1": self._bp_workflow_state,
                "value_of/3": self._bp_value_of,
                "value_as_of/4": self._bp_value_as_of,
                "history_step/2": self._bp_history_step,
                "involves/2": self._bp_involves,
                "step_info/3": self._bp_step_info,
                "step_result/3": self._bp_step_result,
                "class_count/2": self._bp_class_count,
                "step_count/2": self._bp_step_count,
                "create_material/3": self._bp_create_material,
                "record_step/3": self._bp_record_step,
                "set_state/2": self._bp_set_state,
            }
        )

    # (read predicates)

    def _bp_material(self, engine, goal, subst, depth):
        class_term = walk(goal.args[0], subst)
        key_term = walk(goal.args[1], subst)
        oid_term = walk(goal.args[2], subst)
        db = self.db
        if isinstance(oid_term, ast.Const):
            oid = _need_int(oid_term, "material/3")
            try:
                record = db.material(oid)
            except Exception:
                return
            yield from _unify_all(
                subst,
                (goal.args[0], ast.Const(ast.sym(record["class_name"]))),
                (goal.args[1], ast.Const(ast.sym(record["key"]))),
            )
            return
        if not isinstance(class_term, ast.Var) and not isinstance(key_term, ast.Var):
            class_name = _need_name(class_term, "material/3")
            key = _need_name(key_term, "material/3")
            try:
                oid = db.lookup(class_name, key)
            except (UnknownMaterialError, UnknownClassError):
                return
            new = unify(goal.args[2], ast.Const(oid), subst)
            if new is not None:
                yield new
            return
        # enumeration (storage scan)
        for oid, record in db.iter_materials():
            yield from _unify_all(
                subst,
                (goal.args[0], ast.Const(ast.sym(record["class_name"]))),
                (goal.args[1], ast.Const(ast.sym(record["key"]))),
                (goal.args[2], ast.Const(oid)),
            )

    def _bp_material_class(self, engine, goal, subst, depth):
        for name in self.db.catalog.material_classes:
            new = unify(goal.args[0], ast.Const(ast.sym(name)), subst)
            if new is not None:
                yield new

    def _bp_step_class(self, engine, goal, subst, depth):
        for name in self.db.catalog.step_classes:
            new = unify(goal.args[0], ast.Const(ast.sym(name)), subst)
            if new is not None:
                yield new

    def _bp_state(self, engine, goal, subst, depth):
        material_term = walk(goal.args[0], subst)
        state_term = walk(goal.args[1], subst)
        db = self.db
        if isinstance(material_term, ast.Const):
            oid = _need_int(material_term, "state/2")
            state = db.state_of(oid)
            if state is None:
                return
            new = unify(goal.args[1], ast.Const(ast.sym(state)), subst)
            if new is not None:
                yield new
            return
        if isinstance(state_term, ast.Const):
            state = _need_name(state_term, "state/2")
            for oid in db.in_state(state):
                new = unify(goal.args[0], ast.Const(oid), subst)
                if new is not None:
                    yield new
            return
        for state in db.sets.state_census():
            for oid in db.in_state(state):
                yield from _unify_all(
                    subst,
                    (goal.args[0], ast.Const(oid)),
                    (goal.args[1], ast.Const(ast.sym(state))),
                )

    def _bp_workflow_state(self, engine, goal, subst, depth):
        """workflow_state(S): every state that has ever had a set."""
        for state in sorted(self.db.sets.state_census()):
            new = unify(goal.args[0], ast.Const(ast.sym(state)), subst)
            if new is not None:
                yield new

    def _bp_value_of(self, engine, goal, subst, depth):
        material_term = walk(goal.args[0], subst)
        attr_term = walk(goal.args[1], subst)
        oid = _need_int(material_term, "value_of/3")
        db = self.db
        if not isinstance(attr_term, ast.Var):
            attribute = _need_name(attr_term, "value_of/3")
            try:
                value = db.most_recent(oid, attribute)
            except UnknownAttributeError:
                return
            new = unify(goal.args[2], ast.python_to_term(value), subst)
            if new is not None:
                yield new
            return
        for attribute, value in sorted(db.current_attributes(oid).items()):
            yield from _unify_all(
                subst,
                (goal.args[1], ast.Const(ast.sym(attribute))),
                (goal.args[2], ast.python_to_term(value)),
            )

    def _bp_value_as_of(self, engine, goal, subst, depth):
        """value_as_of(M, Attr, Time, V): the event-calculus reading."""
        oid = _need_int(walk(goal.args[0], subst), "value_as_of/4")
        attribute = _need_name(walk(goal.args[1], subst), "value_as_of/4")
        time_term = walk(goal.args[2], subst)
        valid_time = _need_int(time_term, "value_as_of/4")
        try:
            value = self.db.value_as_of(oid, attribute, valid_time)
        except UnknownAttributeError:
            return
        new = unify(goal.args[3], ast.python_to_term(value), subst)
        if new is not None:
            yield new

    def _bp_history_step(self, engine, goal, subst, depth):
        oid = _need_int(walk(goal.args[0], subst), "history_step/2")
        material = self.db.material(oid)
        for step_oid in self.db.history.step_oids(material):
            new = unify(goal.args[1], ast.Const(step_oid), subst)
            if new is not None:
                yield new

    def _bp_involves(self, engine, goal, subst, depth):
        step_oid = _need_int(walk(goal.args[0], subst), "involves/2")
        step = self.db.step(step_oid)
        for material_oid in step["involves"]:
            new = unify(goal.args[1], ast.Const(material_oid), subst)
            if new is not None:
                yield new

    def _bp_step_info(self, engine, goal, subst, depth):
        step_oid = _need_int(walk(goal.args[0], subst), "step_info/3")
        step = self.db.step(step_oid)
        version = self.db.catalog.step_version(step["class_version"])
        yield from _unify_all(
            subst,
            (goal.args[1], ast.Const(ast.sym(version.name))),
            (goal.args[2], ast.Const(step["valid_time"])),
        )

    def _bp_step_result(self, engine, goal, subst, depth):
        step_oid = _need_int(walk(goal.args[0], subst), "step_result/3")
        step = self.db.step(step_oid)
        for attribute, value in step["results"]:
            yield from _unify_all(
                subst,
                (goal.args[1], ast.Const(ast.sym(attribute))),
                (goal.args[2], ast.python_to_term(value)),
            )

    def _bp_class_count(self, engine, goal, subst, depth):
        class_term = walk(goal.args[0], subst)
        db = self.db
        names = (
            [_need_name(class_term, "class_count/2")]
            if not isinstance(class_term, ast.Var)
            else list(db.catalog.material_classes)
        )
        for name in names:
            try:
                count = db.count_materials(name)
            except UnknownClassError:
                continue
            yield from _unify_all(
                subst,
                (goal.args[0], ast.Const(ast.sym(name))),
                (goal.args[1], ast.Const(count)),
            )

    def _bp_step_count(self, engine, goal, subst, depth):
        class_term = walk(goal.args[0], subst)
        db = self.db
        names = (
            [_need_name(class_term, "step_count/2")]
            if not isinstance(class_term, ast.Var)
            else list(db.catalog.step_classes)
        )
        for name in names:
            try:
                count = db.count_steps(name)
            except UnknownClassError:
                continue
            yield from _unify_all(
                subst,
                (goal.args[0], ast.Const(ast.sym(name))),
                (goal.args[1], ast.Const(count)),
            )

    # (update predicates)

    def _bp_create_material(self, engine, goal, subst, depth):
        class_name = _need_name(walk(goal.args[0], subst), "create_material/3")
        key = _need_name(walk(goal.args[1], subst), "create_material/3")
        oid = self.db.create_material(class_name, key, self.clock.tick())
        new = unify(goal.args[2], ast.Const(oid), subst)
        if new is not None:
            yield new

    def _bp_record_step(self, engine, goal, subst, depth):
        class_name = _need_name(walk(goal.args[0], subst), "record_step/3")
        involves_term = resolve(goal.args[1], subst)
        results_term = resolve(goal.args[2], subst)
        try:
            involves = [_need_int(item, "record_step/3") for item in ast.iter_list(involves_term)]
            pairs = list(ast.iter_list(results_term))
        except ValueError:
            raise InstantiationError("record_step/3")
        results: dict[str, object] = {}
        for pair in pairs:
            if not (isinstance(pair, ast.Struct) and pair.functor == "=" and pair.arity == 2):
                raise EvaluationError(
                    f"record_step/3: results must be attr = value pairs, got {pair!r}"
                )
            attribute = _need_name(pair.args[0], "record_step/3")
            results[attribute] = ast.term_to_python(pair.args[1])
        self.db.record_step(class_name, self.clock.tick(), involves, results)
        yield subst

    def _bp_set_state(self, engine, goal, subst, depth):
        oid = _need_int(walk(goal.args[0], subst), "set_state/2")
        state = _need_name(walk(goal.args[1], subst), "set_state/2")
        self.db.set_state(oid, state, self.clock.tick())
        yield subst


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _unify_all(subst: dict, *pairs) -> Iterator[dict]:
    """Unify several (term, value) pairs; yields the combined subst."""
    current: dict | None = subst
    for term, value in pairs:
        current = unify(term, value, current)
        if current is None:
            return
    yield current


def _as_struct(term, context: str) -> ast.Struct:
    if isinstance(term, ast.Const) and isinstance(term.value, ast.Sym):
        return ast.Struct(str(term.value), ())
    if isinstance(term, ast.Struct):
        return term
    raise EvaluationError(f"{context}: not a fact: {term!r}")


def _need_int(term, context: str) -> int:
    if isinstance(term, ast.Const) and isinstance(term.value, int) \
            and not isinstance(term.value, bool):
        return term.value
    if isinstance(term, ast.Var):
        raise InstantiationError(context)
    raise EvaluationError(f"{context}: expected an oid, got {term!r}")


def _need_name(term, context: str) -> str:
    if isinstance(term, ast.Const) and isinstance(term.value, (ast.Sym, str)):
        return str(term.value)
    if isinstance(term, ast.Var):
        raise InstantiationError(context)
    raise EvaluationError(f"{context}: expected a name, got {term!r}")


def _lower(term) -> object:
    """Lower a resolved term to Python for query results."""
    try:
        return ast.term_to_python(term)
    except ValueError:
        return repr(term)


def _query_variables(goals: tuple) -> list[ast.Var]:
    seen: dict[ast.Var, None] = {}

    def collect(term) -> None:
        if isinstance(term, ast.Var):
            if not term.name.startswith("_"):
                seen.setdefault(term)
        elif isinstance(term, ast.Struct):
            for arg in term.args:
                collect(arg)
        elif isinstance(term, ast.Neg):
            collect(term.goal)

    for goal in goals:
        collect(goal)
    return list(seen)
