"""Builtin predicates of the deductive query language.

Each builtin is a generator ``(engine, goal, subst, depth) -> substs``.
The table :data:`CORE_BUILTINS` maps ``name/arity`` indicators to
implementations; ``repro.query.program`` merges it with the
LabBase-backed base predicates and the ``assert``/``retract`` pair
(which need program state and live there).

Highlights, matching the paper's Section 8 usage:

* ``setof(Template, Goal, Set)`` — the paper's set-generation predicate:
  all answers, duplicates removed, collected in sorted order; fails when
  there are no answers (standard Prolog semantics).
* ``findall/3`` — like setof but keeps duplicates/order and yields
  ``[]`` for no answers.
* ``count(Goal, N)`` and ``sum(Expr, Goal, Sum)`` — the counting
  aggregates LabFlow-1's Q5 uses.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import EvaluationError, InstantiationError
from repro.query import ast
from repro.query.engine import Engine
from repro.query.unify import is_ground, resolve, unify, walk


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


def arith_eval(term, subst: dict):
    """Evaluate an arithmetic expression term to a Python number."""
    term = walk(term, subst)
    if isinstance(term, ast.Var):
        raise InstantiationError("arithmetic expression")
    if isinstance(term, ast.Const):
        if isinstance(term.value, bool) or not isinstance(term.value, (int, float)):
            raise EvaluationError(f"not a number: {term!r}")
        return term.value
    if isinstance(term, ast.Struct):
        args = [arith_eval(arg, subst) for arg in term.args]
        if term.functor == "+" and len(args) == 2:
            return args[0] + args[1]
        if term.functor == "-" and len(args) == 2:
            return args[0] - args[1]
        if term.functor == "*" and len(args) == 2:
            return args[0] * args[1]
        if term.functor == "/" and len(args) == 2:
            if args[1] == 0:
                raise EvaluationError("division by zero")
            result = args[0] / args[1]
            return int(result) if isinstance(args[0], int) and isinstance(
                args[1], int
            ) and args[0] % args[1] == 0 else result
        if term.functor == "mod" and len(args) == 2:
            if args[1] == 0:
                raise EvaluationError("mod by zero")
            return args[0] % args[1]
        if term.functor == "abs" and len(args) == 1:
            return abs(args[0])
        if term.functor == "min" and len(args) == 2:
            return min(args)
        if term.functor == "max" and len(args) == 2:
            return max(args)
    raise EvaluationError(f"unknown arithmetic expression: {term!r}")


def _bi_is(engine: Engine, goal: ast.Struct, subst: dict, depth: int) -> Iterator[dict]:
    result = ast.Const(arith_eval(goal.args[1], subst))
    new = unify(goal.args[0], result, subst)
    if new is not None:
        yield new


def _compare(op: str, left, right) -> bool:
    if op == "<":
        return left < right
    if op == ">":
        return left > right
    if op == "=<":
        return left <= right
    if op == ">=":
        return left >= right
    raise EvaluationError(f"unknown comparison {op}")


def _bi_arith_compare(
    engine: Engine, goal: ast.Struct, subst: dict, depth: int
) -> Iterator[dict]:
    left = arith_eval(goal.args[0], subst)
    right = arith_eval(goal.args[1], subst)
    if _compare(goal.functor, left, right):
        yield subst


# ---------------------------------------------------------------------------
# unification & equality
# ---------------------------------------------------------------------------


def _bi_unify(engine, goal, subst, depth):
    new = unify(goal.args[0], goal.args[1], subst)
    if new is not None:
        yield new


def _bi_not_unify(engine, goal, subst, depth):
    if unify(goal.args[0], goal.args[1], subst) is None:
        yield subst


def _bi_struct_eq(engine, goal, subst, depth):
    if resolve(goal.args[0], subst) == resolve(goal.args[1], subst):
        yield subst


def _bi_struct_neq(engine, goal, subst, depth):
    if resolve(goal.args[0], subst) != resolve(goal.args[1], subst):
        yield subst


# ---------------------------------------------------------------------------
# control
# ---------------------------------------------------------------------------


def _bi_true(engine, goal, subst, depth):
    yield subst


def _bi_fail(engine, goal, subst, depth):
    return
    yield  # pragma: no cover


def _bi_call(engine, goal, subst, depth):
    yield from engine._solve((goal.args[0],), subst, depth + 1)


def _bi_once(engine, goal, subst, depth):
    for solution in engine._solve((goal.args[0],), subst, depth + 1):
        yield solution
        return


# ---------------------------------------------------------------------------
# type tests
# ---------------------------------------------------------------------------


def _bi_var(engine, goal, subst, depth):
    if isinstance(walk(goal.args[0], subst), ast.Var):
        yield subst


def _bi_nonvar(engine, goal, subst, depth):
    if not isinstance(walk(goal.args[0], subst), ast.Var):
        yield subst


def _bi_number(engine, goal, subst, depth):
    term = walk(goal.args[0], subst)
    if isinstance(term, ast.Const) and isinstance(term.value, (int, float)) \
            and not isinstance(term.value, bool):
        yield subst


def _bi_atom(engine, goal, subst, depth):
    term = walk(goal.args[0], subst)
    if isinstance(term, ast.Const) and isinstance(term.value, ast.Sym):
        yield subst


def _bi_ground(engine, goal, subst, depth):
    if is_ground(goal.args[0], subst):
        yield subst


# ---------------------------------------------------------------------------
# lists
# ---------------------------------------------------------------------------


def _bi_member(engine, goal, subst, depth):
    item, lst = goal.args
    lst = walk(lst, subst)
    while True:
        lst = walk(lst, subst)
        if isinstance(lst, ast.Struct) and lst.functor == "." and lst.arity == 2:
            new = unify(item, lst.args[0], subst)
            if new is not None:
                yield new
            lst = lst.args[1]
        else:
            return


def _bi_length(engine, goal, subst, depth):
    lst, length = goal.args
    lst_walked = walk(lst, subst)
    if isinstance(lst_walked, ast.Var):
        raise InstantiationError("length/2")
    try:
        count = sum(1 for _ in ast.iter_list(resolve(lst, subst)))
    except ValueError:
        raise EvaluationError(f"length/2: not a proper list: {lst_walked!r}")
    new = unify(length, ast.Const(count), subst)
    if new is not None:
        yield new


_FRESH = [0]


def _fresh(name: str) -> ast.Var:
    _FRESH[0] += 1
    return ast.Var(name, _FRESH[0])


def _bi_append(engine, goal, subst, depth):
    """Relational append/3 via the classic two clauses, inlined."""
    front, back, whole = goal.args

    def solutions(front, back, whole, subst):
        # clause 1: append([], B, B).
        new = unify(front, ast.EMPTY_LIST, subst)
        if new is not None:
            final = unify(back, whole, new)
            if final is not None:
                yield final
        # clause 2: append([H|T], B, [H|R]) <- append(T, B, R).
        head = _fresh("_AppH")
        tail = _fresh("_AppT")
        rest = _fresh("_AppR")
        new = unify(front, ast.cons(head, tail), subst)
        if new is not None:
            final = unify(whole, ast.cons(head, rest), new)
            if final is not None:
                yield from solutions(tail, back, rest, final)

    yield from solutions(front, back, whole, subst)


def _bi_reverse(engine, goal, subst, depth):
    lst, rev = goal.args
    resolved = resolve(lst, subst)
    try:
        items = list(ast.iter_list(resolved))
    except ValueError:
        raise InstantiationError("reverse/2")
    new = unify(rev, ast.list_term(list(reversed(items))), subst)
    if new is not None:
        yield new


def _bi_between(engine, goal, subst, depth):
    low = arith_eval(goal.args[0], subst)
    high = arith_eval(goal.args[1], subst)
    for value in range(int(low), int(high) + 1):
        new = unify(goal.args[2], ast.Const(value), subst)
        if new is not None:
            yield new


def _resolved_items(term, subst, context):
    resolved = resolve(term, subst)
    try:
        return list(ast.iter_list(resolved))
    except ValueError:
        raise InstantiationError(context)


def _bi_nth0(engine, goal, subst, depth):
    """nth0(Index, List, Elem): 0-based element access / enumeration."""
    items = _resolved_items(goal.args[1], subst, "nth0/3")
    index_term = walk(goal.args[0], subst)
    if isinstance(index_term, ast.Const):
        index = index_term.value
        if isinstance(index, int) and 0 <= index < len(items):
            new = unify(goal.args[2], items[index], subst)
            if new is not None:
                yield new
        return
    for index, item in enumerate(items):
        new = unify(goal.args[0], ast.Const(index), subst)
        if new is None:
            continue
        final = unify(goal.args[2], item, new)
        if final is not None:
            yield final


def _bi_last(engine, goal, subst, depth):
    items = _resolved_items(goal.args[0], subst, "last/2")
    if not items:
        return
    new = unify(goal.args[1], items[-1], subst)
    if new is not None:
        yield new


def _bi_msort(engine, goal, subst, depth):
    """msort(List, Sorted): standard order, duplicates kept."""
    items = _resolved_items(goal.args[0], subst, "msort/2")
    new = unify(
        goal.args[1], ast.list_term(sorted(items, key=_sort_key)), subst
    )
    if new is not None:
        yield new


def _bi_sort(engine, goal, subst, depth):
    """sort(List, Sorted): standard order, duplicates removed."""
    items = _resolved_items(goal.args[0], subst, "sort/2")
    unique: list = []
    seen = set()
    for item in sorted(items, key=_sort_key):
        key = _sort_key(item)
        if key not in seen:
            seen.add(key)
            unique.append(item)
    new = unify(goal.args[1], ast.list_term(unique), subst)
    if new is not None:
        yield new


def _bi_sum_list(engine, goal, subst, depth):
    items = _resolved_items(goal.args[0], subst, "sum_list/2")
    total: float | int = 0
    for item in items:
        total += arith_eval(item, subst)
    new = unify(goal.args[1], ast.Const(total), subst)
    if new is not None:
        yield new


def _bi_max_list(engine, goal, subst, depth):
    items = _resolved_items(goal.args[0], subst, "max_list/2")
    if not items:
        return
    best = max(arith_eval(item, subst) for item in items)
    new = unify(goal.args[1], ast.Const(best), subst)
    if new is not None:
        yield new


def _bi_min_list(engine, goal, subst, depth):
    items = _resolved_items(goal.args[0], subst, "min_list/2")
    if not items:
        return
    best = min(arith_eval(item, subst) for item in items)
    new = unify(goal.args[1], ast.Const(best), subst)
    if new is not None:
        yield new


def _bi_forall(engine, goal, subst, depth):
    """forall(Cond, Action): no Cond solution where Action fails."""
    condition, action = goal.args
    for solution in engine._solve((condition,), subst, depth + 1):
        if not any(engine._solve((action,), solution, depth + 1)):
            return
    yield subst


def _bi_atom_length(engine, goal, subst, depth):
    term = walk(goal.args[0], subst)
    if isinstance(term, ast.Var):
        raise InstantiationError("atom_length/2")
    if not (isinstance(term, ast.Const) and isinstance(term.value, (str,))):
        raise EvaluationError(f"atom_length/2: not an atom or string: {term!r}")
    new = unify(goal.args[1], ast.Const(len(term.value)), subst)
    if new is not None:
        yield new


def _bi_atom_concat(engine, goal, subst, depth):
    """atom_concat(A, B, C) with A and B bound."""
    left = walk(goal.args[0], subst)
    right = walk(goal.args[1], subst)
    if isinstance(left, ast.Var) or isinstance(right, ast.Var):
        raise InstantiationError("atom_concat/3")
    for part in (left, right):
        if not (isinstance(part, ast.Const) and isinstance(part.value, str)):
            raise EvaluationError(f"atom_concat/3: not an atom: {part!r}")
    joined = str(left.value) + str(right.value)
    result = ast.Const(ast.sym(joined)) if (
        isinstance(left.value, ast.Sym) or isinstance(right.value, ast.Sym)
    ) else ast.Const(joined)
    new = unify(goal.args[2], result, subst)
    if new is not None:
        yield new


# ---------------------------------------------------------------------------
# aggregation
# ---------------------------------------------------------------------------


def _sort_key(term):
    """Total order over ground terms for setof/3."""
    if isinstance(term, ast.Const):
        value = term.value
        if isinstance(value, bool):
            return (0, str(value))
        if isinstance(value, (int, float)):
            return (1, value)
        if isinstance(value, ast.Sym):
            return (2, str(value))
        if isinstance(value, str):
            return (3, value)
        return (4, repr(value))
    if isinstance(term, ast.Struct):
        return (5, term.functor, tuple(_sort_key(arg) for arg in term.args))
    return (6, repr(term))


def _collect(engine, template, goal, subst, depth):
    results = []
    for solution in engine._solve((goal,), subst, depth + 1):
        results.append(resolve(template, solution))
    return results


def _bi_findall(engine, goal, subst, depth):
    template, inner, out = goal.args
    results = _collect(engine, template, inner, subst, depth)
    new = unify(out, ast.list_term(results), subst)
    if new is not None:
        yield new


def _bi_setof(engine, goal, subst, depth):
    template, inner, out = goal.args
    results = _collect(engine, template, inner, subst, depth)
    if not results:
        return  # standard Prolog: setof fails on no solutions
    unique: list = []
    seen = set()
    for term in sorted(results, key=_sort_key):
        key = _sort_key(term)
        if key not in seen:
            seen.add(key)
            unique.append(term)
    new = unify(out, ast.list_term(unique), subst)
    if new is not None:
        yield new


def _bi_count(engine, goal, subst, depth):
    inner, out = goal.args
    total = sum(1 for _ in engine._solve((inner,), subst, depth + 1))
    new = unify(out, ast.Const(total), subst)
    if new is not None:
        yield new


def _bi_sum(engine, goal, subst, depth):
    expr, inner, out = goal.args
    total: float | int = 0
    for solution in engine._solve((inner,), subst, depth + 1):
        total += arith_eval(expr, solution)
    new = unify(out, ast.Const(total), subst)
    if new is not None:
        yield new


# ---------------------------------------------------------------------------
# output (captured, for examples and tests)
# ---------------------------------------------------------------------------


def _bi_write(engine, goal, subst, depth):
    sink = getattr(engine, "output", None)
    text = repr(resolve(goal.args[0], subst))
    if sink is not None:
        sink.append(text)
    yield subst


def _bi_nl(engine, goal, subst, depth):
    sink = getattr(engine, "output", None)
    if sink is not None:
        sink.append("\n")
    yield subst


CORE_BUILTINS = {
    "true/0": _bi_true,
    "fail/0": _bi_fail,
    "call/1": _bi_call,
    "once/1": _bi_once,
    "=/2": _bi_unify,
    "\\=/2": _bi_not_unify,
    "==/2": _bi_struct_eq,
    "\\==/2": _bi_struct_neq,
    "is/2": _bi_is,
    "</2": _bi_arith_compare,
    ">/2": _bi_arith_compare,
    "=</2": _bi_arith_compare,
    ">=/2": _bi_arith_compare,
    "var/1": _bi_var,
    "nonvar/1": _bi_nonvar,
    "number/1": _bi_number,
    "atom/1": _bi_atom,
    "ground/1": _bi_ground,
    "member/2": _bi_member,
    "length/2": _bi_length,
    "append/3": _bi_append,
    "reverse/2": _bi_reverse,
    "between/3": _bi_between,
    "nth0/3": _bi_nth0,
    "last/2": _bi_last,
    "sort/2": _bi_sort,
    "msort/2": _bi_msort,
    "sum_list/2": _bi_sum_list,
    "max_list/2": _bi_max_list,
    "min_list/2": _bi_min_list,
    "forall/2": _bi_forall,
    "atom_length/2": _bi_atom_length,
    "atom_concat/3": _bi_atom_concat,
    "findall/3": _bi_findall,
    "setof/3": _bi_setof,
    "count/2": _bi_count,
    "sum/3": _bi_sum,
    "write/1": _bi_write,
    "nl/0": _bi_nl,
}
