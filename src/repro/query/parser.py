"""Recursive-descent parser for the deductive query language.

Grammar (Prolog-like, with the paper's ``<-`` arrow)::

    program  ::= clause*
    clause   ::= head (('<-' | ':-') body)? '.'
               | '?-' body '.'
    body     ::= goal (',' goal)*
    goal     ::= '\\+' goal | expr
    expr     ::= additive ((comparison-op) additive)?
    additive ::= multiplicative (('+' | '-') multiplicative)*
    multiplicative ::= unary (('*' | '/' | 'mod') unary)*
    unary    ::= '-' unary | primary
    primary  ::= NUMBER | STRING | VAR | list
               | ATOM ('(' expr (',' expr)* ')')?
               | '(' expr ')'

Comparison operators (``=``, ``\\=``, ``<``, ``>``, ``=<``, ``>=``,
``==``, ``\\==``, ``is``) and arithmetic build ordinary structs, which
the engine's builtins interpret.  Variables with the same name within a
clause are the same variable; ``_`` is anonymous (fresh per occurrence).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.query import ast
from repro.query.lexer import ATOM, END, NUMBER, PUNCT, STRING, VAR, Token, tokenize

_COMPARISON_OPS = {"=", "\\=", "<", ">", "=<", ">=", "==", "\\=="}
_ADDITIVE_OPS = {"+", "-"}
_MULTIPLICATIVE_OPS = {"*", "/"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        self._clause_vars: dict[str, ast.Var] = {}
        self._anon_counter = 0

    # -- token plumbing ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _at_punct(self, *values: str) -> bool:
        token = self._peek()
        return token.type == PUNCT and token.value in values

    def _at_atom(self, *names: str) -> bool:
        token = self._peek()
        return token.type == ATOM and token.value in names

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if token.type != PUNCT or token.value != value:
            raise ParseError(
                f"expected {value!r}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # -- clauses ----------------------------------------------------------------

    def parse_program(self) -> tuple[list[ast.Rule], list[tuple]]:
        """All clauses; returns (rules, queries)."""
        rules: list[ast.Rule] = []
        queries: list[tuple] = []
        while self._peek().type != END:
            self._clause_vars = {}
            if self._at_punct("?-"):
                self._advance()
                body = self._parse_body()
                self._expect_punct(".")
                queries.append(tuple(body))
                continue
            head = self._parse_goal()
            if isinstance(head, ast.Const) and isinstance(head.value, ast.Sym):
                head = ast.Struct(str(head.value), ())  # zero-arity predicate
            if not isinstance(head, ast.Struct):
                token = self._peek()
                raise ParseError(
                    f"clause head must be a predicate, got {head!r}",
                    token.line,
                    token.column,
                )
            body: list = []
            if self._at_punct("<-", ":-"):
                self._advance()
                body = self._parse_body()
            self._expect_punct(".")
            rules.append(ast.Rule(head=head, body=tuple(body)))
        return rules, queries

    def parse_query(self) -> tuple:
        """A single goal conjunction (optionally ``?-`` prefixed)."""
        self._clause_vars = {}
        if self._at_punct("?-"):
            self._advance()
        body = self._parse_body()
        if self._at_punct("."):
            self._advance()
        token = self._peek()
        if token.type != END:
            raise ParseError(
                f"unexpected trailing input {token.value!r}", token.line, token.column
            )
        return tuple(body)

    # -- bodies and goals -----------------------------------------------------------

    def _parse_body(self) -> list:
        goals = [self._parse_goal()]
        while self._at_punct(","):
            self._advance()
            goals.append(self._parse_goal())
        return goals

    def _parse_goal(self):
        if self._at_punct("\\+"):
            self._advance()
            return ast.Neg(self._parse_goal())
        return self._parse_expr()

    # -- expressions --------------------------------------------------------------

    def _parse_expr(self):
        left = self._parse_additive()
        token = self._peek()
        if token.type == PUNCT and token.value in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return ast.Struct(str(token.value), (left, right))
        if self._at_atom("is"):
            self._advance()
            right = self._parse_additive()
            return ast.Struct("is", (left, right))
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while self._at_punct(*_ADDITIVE_OPS):
            op = str(self._advance().value)
            right = self._parse_multiplicative()
            left = ast.Struct(op, (left, right))
        return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self._at_punct(*_MULTIPLICATIVE_OPS) or self._at_atom("mod"):
            token = self._advance()
            right = self._parse_unary()
            left = ast.Struct(str(token.value), (left, right))
        return left

    def _parse_unary(self):
        if self._at_punct("-"):
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Const) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Const(-operand.value)
            return ast.Struct("-", (ast.Const(0), operand))
        return self._parse_primary()

    # -- primaries -----------------------------------------------------------------

    def _parse_primary(self):
        token = self._peek()

        if token.type == NUMBER:
            self._advance()
            return ast.Const(token.value)

        if token.type == STRING:
            self._advance()
            return ast.Const(str(token.value))

        if token.type == VAR:
            self._advance()
            return self._variable(str(token.value))

        if token.type == ATOM:
            self._advance()
            name = str(token.value)
            if self._at_punct("("):
                self._advance()
                args = [self._parse_expr()]
                while self._at_punct(","):
                    self._advance()
                    args.append(self._parse_expr())
                self._expect_punct(")")
                return ast.Struct(name, tuple(args))
            return ast.Const(ast.sym(name))

        if self._at_punct("["):
            return self._parse_list()

        if self._at_punct("("):
            self._advance()
            inner = self._parse_expr()
            self._expect_punct(")")
            return inner

        raise ParseError(
            f"unexpected token {token.value!r}", token.line, token.column
        )

    def _parse_list(self):
        self._expect_punct("[")
        if self._at_punct("]"):
            self._advance()
            return ast.EMPTY_LIST
        items = [self._parse_expr()]
        while self._at_punct(","):
            self._advance()
            items.append(self._parse_expr())
        tail = ast.EMPTY_LIST
        if self._at_punct("|"):
            self._advance()
            tail = self._parse_expr()
        self._expect_punct("]")
        return ast.list_term(items, tail)

    def _variable(self, name: str) -> ast.Var:
        if name == "_":
            self._anon_counter += 1
            return ast.Var(f"_G{self._anon_counter}")
        var = self._clause_vars.get(name)
        if var is None:
            var = ast.Var(name)
            self._clause_vars[name] = var
        return var


def parse_program(text: str) -> tuple[list[ast.Rule], list[tuple]]:
    """Parse program text into (rules, embedded ``?-`` queries)."""
    return _Parser(tokenize(text)).parse_program()


def parse_query(text: str) -> tuple:
    """Parse one query (a conjunction of goals)."""
    return _Parser(tokenize(text)).parse_query()


def parse_term(text: str):
    """Parse a single term (used by assert/retract helpers and tests)."""
    parser = _Parser(tokenize(text))
    term = parser._parse_expr()
    token = parser._peek()
    if parser._at_punct("."):
        parser._advance()
        token = parser._peek()
    if token.type != END:
        raise ParseError(
            f"unexpected trailing input {token.value!r}", token.line, token.column
        )
    return term
