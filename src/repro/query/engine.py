"""SLD resolution engine with negation as failure.

The engine resolves a conjunction of goals against three goal sources,
consulted in this order:

1. **builtins** — comparison, arithmetic, list and aggregation
   predicates (``repro.query.builtins``), plus the LabBase-backed base
   predicates installed by ``repro.query.program`` (which have the same
   calling convention);
2. **rules** — the consulted program and dynamically asserted facts.

Resolution is depth-first with chronological backtracking, implemented
as generators so queries with many answers stream lazily.  A depth bound
guards against runaway left recursion (the benchmark's view predicates
are all terminating, so hitting the bound indicates a bad user program).
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol

from repro.errors import EvaluationError
from repro.query import ast
from repro.query.unify import rename_rule, unify, walk

#: A builtin/base predicate: (engine, goal, subst, depth) -> iterator of substs.
Builtin = Callable[["Engine", ast.Struct, dict, int], Iterator[dict]]


class GoalSource(Protocol):
    """What the engine needs from a program."""

    def builtin_for(self, indicator: str) -> Builtin | None: ...

    def clauses_for(self, indicator: str) -> list[ast.Rule] | None: ...


class Engine:
    """Resolves goals against a :class:`GoalSource`."""

    def __init__(self, source: GoalSource, max_depth: int = 4000) -> None:
        self._source = source
        self.max_depth = max_depth

    # -- public ------------------------------------------------------------

    def solve(self, goals: tuple, subst: dict | None = None) -> Iterator[dict]:
        """All solutions of a goal conjunction, as substitutions."""
        return self._solve(tuple(goals), subst or {}, depth=0)

    def prove(self, goals: tuple, subst: dict | None = None) -> dict | None:
        """The first solution, or None."""
        for solution in self.solve(goals, subst):
            return solution
        return None

    # -- resolution ------------------------------------------------------------

    def _solve(self, goals: tuple, subst: dict, depth: int) -> Iterator[dict]:
        if depth > self.max_depth:
            raise EvaluationError(
                f"resolution exceeded depth {self.max_depth} "
                "(non-terminating recursion?)"
            )
        if not goals:
            yield subst
            return

        goal, rest = goals[0], goals[1:]

        # Negation as failure: \+ G succeeds iff G has no solution.
        if isinstance(goal, ast.Neg):
            if self._has_solution(goal.goal, subst, depth):
                return
            yield from self._solve(rest, subst, depth + 1)
            return

        goal = self._normalize_goal(goal, subst)
        indicator = goal.indicator

        builtin = self._source.builtin_for(indicator)
        if builtin is not None:
            for new_subst in builtin(self, goal, subst, depth):
                yield from self._solve(rest, new_subst, depth + 1)
            return

        clauses = self._source.clauses_for(indicator)
        if clauses is None:
            raise EvaluationError(f"unknown predicate {indicator}")
        for clause in clauses:
            renamed = rename_rule(clause)
            new_subst = unify(goal, renamed.head, subst)
            if new_subst is None:
                continue
            yield from self._solve(renamed.body + rest, new_subst, depth + 1)

    def _has_solution(self, goal, subst: dict, depth: int) -> bool:
        for _ in self._solve((goal,), subst, depth + 1):
            return True
        return False

    def _normalize_goal(self, goal, subst: dict) -> ast.Struct:
        """Deref the goal; promote atoms to zero-arity predicates."""
        goal = walk(goal, subst)
        if isinstance(goal, ast.Var):
            raise EvaluationError(f"goal is an unbound variable: {goal!r}")
        if isinstance(goal, ast.Const):
            if isinstance(goal.value, ast.Sym):
                return ast.Struct(str(goal.value), ())
            raise EvaluationError(f"goal is not callable: {goal!r}")
        if isinstance(goal, ast.Struct):
            return goal
        raise EvaluationError(f"goal is not callable: {goal!r}")
