"""The standard view library: Section 7's views as shipped rules.

The paper defines views over the event history "so that the view
definition does not have to be changed each time the workflow changes".
These rules are exactly that: they mention only the workflow-independent
base predicates (``state/2``, ``value_of/3``, ``history_step/2``,
``step_info/3``, ``involves/2``), so they work unchanged on any
workflow LabBase hosts.

Load with::

    program = Program(db=db)
    load_standard_library(program)
    program.solutions("derived_from(Parent, Child).")
"""

from __future__ import annotations

from repro.query.program import Program

STANDARD_LIBRARY = """
% ---------------------------------------------------------------------
% lineage: Child was created by a step that also involved Parent.
% (Creation steps like associate_tclone involve both the source material
% and the material they create, so shared steps encode derivation.)
% ---------------------------------------------------------------------
derived_from(Parent, Child) <-
    material(_, _, Child),
    history_step(Child, Step),
    involves(Step, Parent),
    Parent \\= Child,
    created_by(Child, Step).

% A material's creating step is the oldest in its history: no other
% step of the material has an earlier valid time.
created_by(M, Step) <-
    history_step(M, Step),
    step_info(Step, _, T),
    \\+ earlier_step(M, T).

earlier_step(M, T) <-
    history_step(M, Other),
    step_info(Other, _, T2),
    T2 < T.

% transitive lineage
ancestor_material(A, D) <- derived_from(A, D).
ancestor_material(A, D) <- derived_from(A, X), ancestor_material(X, D).

% ---------------------------------------------------------------------
% history views
% ---------------------------------------------------------------------

% M was processed by a step of class C at some time
processed_by(M, C) <-
    history_step(M, S),
    step_info(S, C, _).

% M was processed by class C more than once (rework)
reworked(M, C) <-
    history_step(M, S1), step_info(S1, C, T1),
    history_step(M, S2), step_info(S2, C, T2),
    T1 < T2.

% first and last event times of a material
first_event(M, T) <-
    history_step(M, S), step_info(S, _, T), \\+ earlier_step(M, T).
last_event(M, T) <-
    history_step(M, S), step_info(S, _, T), \\+ later_step(M, T).
later_step(M, T) <-
    history_step(M, Other), step_info(Other, _, T2), T2 > T.

% cycle time as a derived value
cycle_time(M, D) <- first_event(M, T0), last_event(M, T1), D is T1 - T0.

% ---------------------------------------------------------------------
% state & population views
% ---------------------------------------------------------------------

% population of a state (Q3 + counting).  S is grounded through
% workflow_state/1 first: this implementation's count/2 (like findall)
% does not group by free variables the way full Prolog setof does.
state_population(S, N) <- workflow_state(S), count(state(_, S), N).

% materials of class C currently in state S
class_in_state(C, S, M) <- state(M, S), material(C, _, M).

% an attribute is recorded for M (regardless of value)
has_value(M, A) <- value_of(M, A, _).

% materials whose attribute A satisfies a threshold
value_at_least(M, A, Min) <- value_of(M, A, V), V >= Min.
value_below(M, A, Max) <- value_of(M, A, V), V < Max.
"""


def load_standard_library(program: Program) -> None:
    """Consult the standard views into a LabBase-backed program."""
    program.consult(STANDARD_LIBRARY)


def new_program_with_library(db, clock=None) -> Program:
    """A Program bound to ``db`` with the standard views loaded."""
    program = Program(db=db, clock=clock)
    load_standard_library(program)
    return program
