"""Tokenizer for the deductive query language.

Syntax follows Prolog conventions with the paper's ``<-`` rule arrow
(``:-`` is accepted as a synonym).  Identifiers may contain ``:`` after
the first character so the paper's predicate names like
``test:sequencing_ok`` lex as single atoms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import LexError

# Token types
ATOM = "ATOM"        # lowercase identifier or quoted 'atom'
VAR = "VAR"          # Uppercase/underscore identifier
NUMBER = "NUMBER"
STRING = "STRING"    # "double quoted"
PUNCT = "PUNCT"      # ( ) [ ] , | . and operators
END = "END"

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = (
    "<-", ":-", "?-", "\\+", "\\=", "=<", ">=", "==", "\\==", "=..", "->", "=", "<", ">",
    "+", "-", "*", "/", "(", ")", "[", "]", "{", "}", ",", "|", "!", ";",
)
_OPERATORS = tuple(sorted(_OPERATORS, key=len, reverse=True))


@dataclass(frozen=True)
class Token:
    type: str
    value: object
    line: int
    column: int

    def __repr__(self) -> str:
        return f"{self.type}({self.value!r})"


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char in "_:"


def tokenize(text: str) -> list[Token]:
    """Scan program text into tokens (END appended)."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    length = len(text)

    def column() -> int:
        return pos - line_start + 1

    while pos < length:
        char = text[pos]

        # whitespace / newlines
        if char in " \t\r":
            pos += 1
            continue
        if char == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue

        # % line comments
        if char == "%":
            while pos < length and text[pos] != "\n":
                pos += 1
            continue

        # /* block comments */
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, column())
            segment = text[pos:end]
            line += segment.count("\n")
            if "\n" in segment:
                line_start = pos + segment.rfind("\n") + 1
            pos = end + 2
            continue

        # numbers (integers and floats; leading '-' handled as operator)
        if char.isdigit():
            start = pos
            while pos < length and text[pos].isdigit():
                pos += 1
            is_float = False
            if (
                pos + 1 < length
                and text[pos] == "."
                and text[pos + 1].isdigit()
            ):
                is_float = True
                pos += 1
                while pos < length and text[pos].isdigit():
                    pos += 1
            raw = text[start:pos]
            value = float(raw) if is_float else int(raw)
            tokens.append(Token(NUMBER, value, line, start - line_start + 1))
            continue

        # quoted atoms
        if char == "'":
            start_col = column()
            pos += 1
            chars = []
            while pos < length and text[pos] != "'":
                if text[pos] == "\\" and pos + 1 < length:
                    pos += 1
                    chars.append(_unescape(text[pos]))
                else:
                    chars.append(text[pos])
                pos += 1
            if pos >= length:
                raise LexError("unterminated quoted atom", line, start_col)
            pos += 1
            tokens.append(Token(ATOM, "".join(chars), line, start_col))
            continue

        # strings
        if char == '"':
            start_col = column()
            pos += 1
            chars = []
            while pos < length and text[pos] != '"':
                if text[pos] == "\\" and pos + 1 < length:
                    pos += 1
                    chars.append(_unescape(text[pos]))
                else:
                    chars.append(text[pos])
                pos += 1
            if pos >= length:
                raise LexError("unterminated string", line, start_col)
            pos += 1
            tokens.append(Token(STRING, "".join(chars), line, start_col))
            continue

        # identifiers: atoms and variables
        if _is_ident_start(char):
            start = pos
            start_col = column()
            while pos < length and _is_ident_char(text[pos]):
                pos += 1
            # identifiers may not *end* with ':' (that colon belongs to
            # the next token stream position only in module syntax we
            # don't support; back off)
            while text[pos - 1] == ":":
                pos -= 1
            name = text[start:pos]
            if char.isupper() or char == "_":
                tokens.append(Token(VAR, name, line, start_col))
            else:
                tokens.append(Token(ATOM, name, line, start_col))
            continue

        # end-of-clause '.' — only when not part of a number (handled
        # above) and followed by whitespace/EOF/comment
        if char == ".":
            next_char = text[pos + 1] if pos + 1 < length else ""
            if next_char == "" or next_char in " \t\r\n%":
                tokens.append(Token(PUNCT, ".", line, column()))
                pos += 1
                continue
            # otherwise fall through to operators (e.g. '.' in lists is
            # not written explicitly in source)

        # operators / punctuation
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token(PUNCT, op, line, column()))
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column())

    tokens.append(Token(END, None, line, column()))
    return tokens


def _unescape(char: str) -> str:
    return {"n": "\n", "t": "\t", "r": "\r"}.get(char, char)
