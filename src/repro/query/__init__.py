"""The deductive query language (Datalog/Prolog-style, per Section 6).

Typical use::

    from repro.query import Program

    program = Program(db=labbase, text='''
        ready(M) <- state(M, waiting_for_sequencing).
    ''')
    for row in program.solve("ready(M), value_of(M, position, P)."):
        print(row["M"], row["P"])
"""

from repro.query import ast
from repro.query.engine import Engine
from repro.query.library import (
    STANDARD_LIBRARY,
    load_standard_library,
    new_program_with_library,
)
from repro.query.parser import parse_program, parse_query, parse_term
from repro.query.program import Program, RuleBase

__all__ = [
    "ast",
    "STANDARD_LIBRARY",
    "load_standard_library",
    "new_program_with_library",
    "Engine",
    "Program",
    "RuleBase",
    "parse_program",
    "parse_query",
    "parse_term",
]
