"""Term representation for the deductive query language.

The paper queries LabBase in "a deductive language in the tradition of
Datalog and Prolog".  Terms are:

* :class:`Var` — logic variables (``X``, ``Material``);
* :class:`Const` — Python constants (numbers, strings, atoms-as-strings);
* :class:`Struct` — compound terms ``f(t1, ..., tn)``; predicates are
  structs used as goals.  Lists use the conventional ``'.'``/``'[]'``
  encoding with helpers to convert to and from Python lists.

Atoms are represented as :class:`Const` of ``Sym`` (an interned symbol
type distinct from ``str``) so that the atom ``foo`` and the string
``"foo"`` do not unify — the same distinction Prolog draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

_SYMBOLS: dict[str, "Sym"] = {}


class Sym(str):
    """An interned atom name (subclass of str, but a distinct type)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Sym({str.__repr__(self)})"


def sym(name: str) -> Sym:
    """Intern an atom name."""
    existing = _SYMBOLS.get(name)
    if existing is None:
        existing = Sym(name)
        _SYMBOLS[name] = existing
    return existing


@dataclass(frozen=True)
class Var:
    """A logic variable.  ``ordinal`` disambiguates renamed copies."""

    name: str
    ordinal: int = 0

    def __repr__(self) -> str:
        if self.ordinal:
            return f"{self.name}_{self.ordinal}"
        return self.name


@dataclass(frozen=True)
class Const:
    """A ground constant: Sym (atom), str, int, float, bool or None."""

    value: object

    def __repr__(self) -> str:
        if isinstance(self.value, Sym):
            return str(self.value)
        return repr(self.value)


@dataclass(frozen=True)
class Struct:
    """A compound term ``functor(args...)``; also serves as a goal."""

    functor: str
    args: tuple

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def indicator(self) -> str:
        """The ``name/arity`` predicate indicator."""
        return f"{self.functor}/{self.arity}"

    def __repr__(self) -> str:
        if self.functor == "." and self.arity == 2:
            return _repr_list(self)
        if not self.args:
            return self.functor
        return f"{self.functor}({', '.join(map(repr, self.args))})"


Term = object  # Var | Const | Struct (kept loose: terms flow through dicts)

EMPTY_LIST = Struct("[]", ())


def cons(head: Term, tail: Term) -> Struct:
    return Struct(".", (head, tail))


def list_term(items: Iterable[Term], tail: Term = EMPTY_LIST) -> Term:
    """Build a list term from Python items (right-folded cons cells)."""
    result = tail
    for item in reversed(list(items)):
        result = cons(item, result)
    return result


def iter_list(term: Term) -> Iterable[Term]:
    """Iterate the elements of a *proper* list term.

    Raises :class:`ValueError` on partial lists (variable tails) so
    builtins can report instantiation errors precisely.
    """
    while True:
        if isinstance(term, Struct) and term.functor == "." and term.arity == 2:
            yield term.args[0]
            term = term.args[1]
        elif isinstance(term, Struct) and term.functor == "[]" and term.arity == 0:
            return
        else:
            raise ValueError(f"not a proper list: {term!r}")


def is_list(term: Term) -> bool:
    try:
        for _ in iter_list(term):
            pass
    except ValueError:
        return False
    return True


def _repr_list(term: Struct) -> str:
    items = []
    while isinstance(term, Struct) and term.functor == "." and term.arity == 2:
        items.append(repr(term.args[0]))
        term = term.args[1]
    if isinstance(term, Struct) and term.functor == "[]":
        return f"[{', '.join(items)}]"
    return f"[{', '.join(items)}|{term!r}]"


@dataclass(frozen=True)
class Neg:
    """Negation as failure: ``\\+ Goal``."""

    goal: Term

    def __repr__(self) -> str:
        return f"\\+ {self.goal!r}"


@dataclass(frozen=True)
class Rule:
    """``head <- body``; a fact is a rule with an empty body."""

    head: Struct
    body: tuple

    @property
    def is_fact(self) -> bool:
        return not self.body

    def __repr__(self) -> str:
        if self.is_fact:
            return f"{self.head!r}."
        body = ", ".join(map(repr, self.body))
        return f"{self.head!r} <- {body}."


def python_to_term(value: object) -> Term:
    """Lift a plain Python value into a term.

    Python lists/tuples become list terms; everything else becomes a
    :class:`Const`.  Strings stay strings (not atoms): LabBase data is
    stringly typed and queries compare it against quoted strings.
    """
    if isinstance(value, (list, tuple)):
        return list_term([python_to_term(item) for item in value])
    return Const(value)


def term_to_python(term: Term) -> object:
    """Lower a ground term to a plain Python value.

    Atoms lower to their names (str); list terms lower to Python lists.
    Raises :class:`ValueError` if the term contains variables.
    """
    if isinstance(term, Const):
        return str(term.value) if isinstance(term.value, Sym) else term.value
    if isinstance(term, Struct):
        if term.functor == "[]" and term.arity == 0:
            return []
        if term.functor == "." and term.arity == 2:
            return [term_to_python(item) for item in iter_list(term)]
        raise ValueError(f"cannot lower compound term {term!r} to Python")
    raise ValueError(f"term is not ground: {term!r}")
