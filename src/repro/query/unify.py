"""Unification and substitutions.

Substitutions are immutable-by-convention dicts from :class:`Var` to
terms; :func:`unify` returns a new dict (sharing structure) or ``None``
on failure.  The engine threads substitutions through backtracking, so
never mutating a substitution another choice point holds is essential.
"""

from __future__ import annotations

from repro.query import ast


def walk(term, subst: dict):
    """Dereference a term through the substitution (one level)."""
    while isinstance(term, ast.Var):
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
    return term


def resolve(term, subst: dict):
    """Fully substitute: replace every bound variable, recursively."""
    term = walk(term, subst)
    if isinstance(term, ast.Struct) and term.args:
        return ast.Struct(
            term.functor, tuple(resolve(arg, subst) for arg in term.args)
        )
    return term


def is_ground(term, subst: dict) -> bool:
    """Whether the term contains no unbound variables."""
    term = walk(term, subst)
    if isinstance(term, ast.Var):
        return False
    if isinstance(term, ast.Struct):
        return all(is_ground(arg, subst) for arg in term.args)
    return True


def occurs(var: ast.Var, term, subst: dict) -> bool:
    """Occurs check: does ``var`` appear in ``term``?"""
    term = walk(term, subst)
    if term == var:
        return True
    if isinstance(term, ast.Struct):
        return any(occurs(var, arg, subst) for arg in term.args)
    return False


def unify(term_a, term_b, subst: dict, occurs_check: bool = False) -> dict | None:
    """Most general unifier extending ``subst``, or None.

    Constants unify by Python equality *and* type compatibility: the
    atom ``foo`` (a :class:`~repro.query.ast.Sym`) does not unify with
    the string ``"foo"``, but ``1`` and ``1.0`` do unify (numeric
    comparison), matching how LabBase data is queried.
    """
    term_a = walk(term_a, subst)
    term_b = walk(term_b, subst)

    # Same unbound variable: already unified (binding X to X would make
    # walk() loop forever).
    if isinstance(term_a, ast.Var) and term_a == term_b:
        return subst

    if isinstance(term_a, ast.Var):
        if occurs_check and occurs(term_a, term_b, subst):
            return None
        new = dict(subst)
        new[term_a] = term_b
        return new
    if isinstance(term_b, ast.Var):
        if occurs_check and occurs(term_b, term_a, subst):
            return None
        new = dict(subst)
        new[term_b] = term_a
        return new

    if isinstance(term_a, ast.Const) and isinstance(term_b, ast.Const):
        if _const_equal(term_a.value, term_b.value):
            return subst
        return None

    if isinstance(term_a, ast.Struct) and isinstance(term_b, ast.Struct):
        if term_a.functor != term_b.functor or term_a.arity != term_b.arity:
            return None
        for arg_a, arg_b in zip(term_a.args, term_b.args):
            subst = unify(arg_a, arg_b, subst, occurs_check)
            if subst is None:
                return None
        return subst

    return None


def _const_equal(value_a: object, value_b: object) -> bool:
    # Sym vs plain str: distinct (atoms are not strings).
    if isinstance(value_a, ast.Sym) != isinstance(value_b, ast.Sym):
        return False
    # bool is an int subclass in Python; keep true/1 distinct.
    if isinstance(value_a, bool) != isinstance(value_b, bool):
        return False
    return value_a == value_b


_RENAME_COUNTER = [0]


def rename_rule(rule: ast.Rule) -> ast.Rule:
    """Fresh variables for a rule (standardizing apart)."""
    _RENAME_COUNTER[0] += 1
    ordinal = _RENAME_COUNTER[0]
    mapping: dict[ast.Var, ast.Var] = {}

    def rename(term):
        if isinstance(term, ast.Var):
            fresh = mapping.get(term)
            if fresh is None:
                fresh = ast.Var(term.name, ordinal)
                mapping[term] = fresh
            return fresh
        if isinstance(term, ast.Struct) and term.args:
            return ast.Struct(term.functor, tuple(rename(arg) for arg in term.args))
        if isinstance(term, ast.Neg):
            return ast.Neg(rename(term.goal))
        return term

    head = rename(rule.head)
    body = tuple(rename(goal) for goal in rule.body)
    return ast.Rule(head=head, body=body)
