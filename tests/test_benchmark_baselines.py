"""Tests for the TPC-style debit/credit contrast (Section 9 / E7)."""

from repro.benchmark.baselines import (
    DebitCreditWorkload,
    labflow_stream_statistics,
)
from repro.benchmark.config import TINY
from repro.benchmark.workload import LabFlowWorkload
from repro.labbase import LabBase
from repro.storage import OStoreMM


def test_debit_credit_runs_and_balances_chain():
    db = LabBase(OStoreMM())
    workload = DebitCreditWorkload(db, seed=1, accounts=10)
    workload.setup()
    result = workload.run(transactions=50)
    assert result.transactions == 50
    assert result.material_classes_used == 1
    assert result.step_classes_used == 1
    assert result.query_kinds_used == 1
    assert result.states_used == 1
    # every account's balance equals the sum of its amounts
    for index in range(10):
        oid = db.lookup("account", f"acct-{index:06d}")
        history = db.material_history(oid)
        amounts = sum(step["results"][0][1] for _oid, step in history)
        assert db.most_recent(oid, "balance") == amounts


def test_debit_credit_history_grows_only_on_touched_accounts():
    db = LabBase(OStoreMM())
    workload = DebitCreditWorkload(db, seed=2, accounts=5)
    workload.setup()
    result = workload.run(transactions=30)
    assert result.max_history_length >= result.mean_history_length
    assert result.mean_history_length == (30 + 5) / 5  # +5 opening steps


def test_contrast_with_labflow_stream():
    """The Section 9 point: LabFlow uses many kinds, TPC uses one."""
    labflow_db = LabBase(OStoreMM())
    labflow = LabFlowWorkload(labflow_db, TINY)
    tallies = labflow.run_all()
    labflow_stats = labflow_stream_statistics(labflow_db, tallies)

    tpc_db = LabBase(OStoreMM())
    tpc = DebitCreditWorkload(tpc_db, seed=1, accounts=20)
    tpc.setup()
    tpc_stats = tpc.run(transactions=labflow_stats["transactions"])

    assert labflow_stats["material_classes_used"] > tpc_stats.material_classes_used
    assert labflow_stats["step_classes_used"] > tpc_stats.step_classes_used
    assert labflow_stats["query_kinds_used"] > tpc_stats.query_kinds_used
    assert labflow_stats["states_used"] > tpc_stats.states_used
