"""Unit tests for the buffer pool: LRU, faults, no-steal."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.page import Page, exact_charge
from repro.storage.stats import StorageStats


class _Disk:
    """Fake disk: serves pages it has seen flushed (or blank ones)."""

    def __init__(self):
        self.pages: dict[int, Page] = {}
        self.loads: list[int] = []
        self.flushes: list[int] = []

    def load(self, page_id: int) -> Page:
        self.loads.append(page_id)
        page = self.pages.get(page_id)
        if page is None:
            page = Page(page_id, 0)
            page.dirty = False
        return page

    def flush(self, page: Page) -> None:
        self.flushes.append(page.page_id)
        self.pages[page.page_id] = page


def _pool(capacity=3, fault_hook=None):
    disk = _Disk()
    stats = StorageStats()
    pool = BufferPool(capacity, disk.load, disk.flush, stats, fault_hook)
    return pool, disk, stats


def test_capacity_must_be_positive():
    disk = _Disk()
    with pytest.raises(ValueError):
        BufferPool(0, disk.load, disk.flush, StorageStats())


def test_miss_counts_fault_hit_does_not():
    pool, disk, stats = _pool()
    pool.fetch(1)
    assert stats.major_faults == 1
    pool.fetch(1)
    assert stats.major_faults == 1
    assert stats.buffer_hits == 1


def test_admit_new_is_not_a_fault():
    pool, _disk, stats = _pool()
    page = Page(9, 0)
    pool.admit_new(page)
    assert stats.major_faults == 0
    assert pool.fetch(9) is page
    assert stats.buffer_hits == 1


def test_lru_evicts_least_recently_used_clean_page():
    pool, disk, stats = _pool(capacity=2)
    pool.fetch(1)
    pool.fetch(2)
    pool.fetch(1)       # touch 1; 2 is now LRU
    pool.fetch(3)       # evicts 2
    assert pool.is_resident(1)
    assert not pool.is_resident(2)
    assert pool.is_resident(3)


def test_dirty_pages_are_never_evicted():
    pool, disk, stats = _pool(capacity=2)
    a = pool.fetch(1)
    b = pool.fetch(2)
    a.dirty = True
    b.dirty = True
    pool.fetch(3)  # both candidates dirty: pool grows
    assert pool.resident_pages == 3
    assert pool.overflow_high_water >= 1
    assert not disk.flushes  # no-steal: nothing written early


def test_flush_dirty_writes_and_cleans():
    pool, disk, stats = _pool()
    page = pool.fetch(1)
    page.dirty = True
    written = pool.flush_dirty()
    assert written == 1
    assert disk.flushes == [1]
    assert not page.dirty
    assert stats.page_writes == 1


def test_flush_dirty_shrinks_overflowed_pool():
    pool, disk, _stats = _pool(capacity=1)
    pool.fetch(1).dirty = True
    pool.fetch(2).dirty = True
    assert pool.resident_pages == 2
    pool.flush_dirty()
    assert pool.resident_pages == 1


def test_drop_dirty_discards_without_writing():
    pool, disk, _stats = _pool()
    page = pool.fetch(1)
    page.dirty = True
    dropped = pool.drop_dirty()
    assert dropped == 1
    assert not disk.flushes
    assert not pool.is_resident(1)


def test_fault_hook_called_once_per_miss():
    seen = []
    pool, _disk, _stats = _pool(fault_hook=lambda page: seen.append(page.page_id))
    pool.fetch(5)
    pool.fetch(5)
    assert seen == [5]


def test_refetch_after_eviction_is_second_fault():
    pool, disk, stats = _pool(capacity=1)
    pool.fetch(1)
    pool.fetch(2)  # evicts 1
    pool.fetch(1)  # fault again
    assert stats.major_faults == 3


def test_clear_empties_pool():
    pool, _disk, _stats = _pool()
    pool.fetch(1)
    pool.clear()
    assert pool.resident_pages == 0


class _ScanPool(BufferPool):
    """Reference implementation: the pre-index O(n) victim scan.

    The clean-page index must make evictions cheaper without changing a
    single choice; this subclass preserves everything except the scan.
    """

    def _clean_lru_victim(self):
        newest = next(reversed(self._pages), None)
        for page_id, page in self._pages.items():  # oldest first
            if page_id == newest:
                continue
            if not page.dirty:
                return page_id
        return None


def test_victim_index_matches_reference_scan():
    """Randomized op stream: residency, eviction order and overflow
    accounting must be identical to the brute-force reference."""
    import random

    rng = random.Random(20260806)
    pool_disk, ref_disk = _Disk(), _Disk()
    pool = BufferPool(4, pool_disk.load, pool_disk.flush, StorageStats())
    ref = _ScanPool(4, ref_disk.load, ref_disk.flush, StorageStats())

    for step in range(2000):
        action = rng.random()
        page_id = rng.randrange(12)
        if action < 0.55:
            a = pool.fetch(page_id)
            b = ref.fetch(page_id)
            if rng.random() < 0.4:
                # Page mutators flip dirty outside the pool's sight —
                # exactly the staleness the lazy index must absorb.
                a.dirty = True
                b.dirty = True
        elif action < 0.75:
            page = Page(100 + step, 0)  # fresh pages are born dirty
            twin = Page(100 + step, 0)
            pool.admit_new(page)
            ref.admit_new(twin)
        elif action < 0.90:
            pool.flush_dirty()
            ref.flush_dirty()
        elif action < 0.95:
            pool.drop(page_id)
            ref.drop(page_id)
        else:
            pool.drop_dirty()
            ref.drop_dirty()
        assert pool.resident_ids() == ref.resident_ids(), f"diverged at op {step}"
        assert pool.overflow_high_water == ref.overflow_high_water
    assert pool_disk.flushes == ref_disk.flushes
