"""Unit tests for the buffer pool: LRU, faults, no-steal."""

import pytest

from repro.storage.buffer import BufferPool
from repro.storage.page import Page, exact_charge
from repro.storage.stats import StorageStats


class _Disk:
    """Fake disk: serves pages it has seen flushed (or blank ones)."""

    def __init__(self):
        self.pages: dict[int, Page] = {}
        self.loads: list[int] = []
        self.flushes: list[int] = []

    def load(self, page_id: int) -> Page:
        self.loads.append(page_id)
        page = self.pages.get(page_id)
        if page is None:
            page = Page(page_id, 0)
            page.dirty = False
        return page

    def flush(self, page: Page) -> None:
        self.flushes.append(page.page_id)
        self.pages[page.page_id] = page


def _pool(capacity=3, fault_hook=None):
    disk = _Disk()
    stats = StorageStats()
    pool = BufferPool(capacity, disk.load, disk.flush, stats, fault_hook)
    return pool, disk, stats


def test_capacity_must_be_positive():
    disk = _Disk()
    with pytest.raises(ValueError):
        BufferPool(0, disk.load, disk.flush, StorageStats())


def test_miss_counts_fault_hit_does_not():
    pool, disk, stats = _pool()
    pool.fetch(1)
    assert stats.major_faults == 1
    pool.fetch(1)
    assert stats.major_faults == 1
    assert stats.buffer_hits == 1


def test_admit_new_is_not_a_fault():
    pool, _disk, stats = _pool()
    page = Page(9, 0)
    pool.admit_new(page)
    assert stats.major_faults == 0
    assert pool.fetch(9) is page
    assert stats.buffer_hits == 1


def test_lru_evicts_least_recently_used_clean_page():
    pool, disk, stats = _pool(capacity=2)
    pool.fetch(1)
    pool.fetch(2)
    pool.fetch(1)       # touch 1; 2 is now LRU
    pool.fetch(3)       # evicts 2
    assert pool.is_resident(1)
    assert not pool.is_resident(2)
    assert pool.is_resident(3)


def test_dirty_pages_are_never_evicted():
    pool, disk, stats = _pool(capacity=2)
    a = pool.fetch(1)
    b = pool.fetch(2)
    a.dirty = True
    b.dirty = True
    pool.fetch(3)  # both candidates dirty: pool grows
    assert pool.resident_pages == 3
    assert pool.overflow_high_water >= 1
    assert not disk.flushes  # no-steal: nothing written early


def test_flush_dirty_writes_and_cleans():
    pool, disk, stats = _pool()
    page = pool.fetch(1)
    page.dirty = True
    written = pool.flush_dirty()
    assert written == 1
    assert disk.flushes == [1]
    assert not page.dirty
    assert stats.page_writes == 1


def test_flush_dirty_shrinks_overflowed_pool():
    pool, disk, _stats = _pool(capacity=1)
    pool.fetch(1).dirty = True
    pool.fetch(2).dirty = True
    assert pool.resident_pages == 2
    pool.flush_dirty()
    assert pool.resident_pages == 1


def test_drop_dirty_discards_without_writing():
    pool, disk, _stats = _pool()
    page = pool.fetch(1)
    page.dirty = True
    dropped = pool.drop_dirty()
    assert dropped == 1
    assert not disk.flushes
    assert not pool.is_resident(1)


def test_fault_hook_called_once_per_miss():
    seen = []
    pool, _disk, _stats = _pool(fault_hook=lambda page: seen.append(page.page_id))
    pool.fetch(5)
    pool.fetch(5)
    assert seen == [5]


def test_refetch_after_eviction_is_second_fault():
    pool, disk, stats = _pool(capacity=1)
    pool.fetch(1)
    pool.fetch(2)  # evicts 1
    pool.fetch(1)  # fault again
    assert stats.major_faults == 3


def test_clear_empties_pool():
    pool, _disk, _stats = _pool()
    pool.fetch(1)
    pool.clear()
    assert pool.resident_pages == 0


class _ScanPool(BufferPool):
    """Reference implementation: the pre-index O(n) victim scan.

    The clean-page index must make evictions cheaper without changing a
    single choice; this subclass preserves everything except the scan.
    """

    def _clean_lru_victim(self):
        newest = next(reversed(self._pages), None)
        for page_id, page in self._pages.items():  # oldest first
            if page_id == newest:
                continue
            if not page.dirty:
                return page_id
        return None


def test_victim_index_matches_reference_scan():
    """Randomized op stream: residency, eviction order and overflow
    accounting must be identical to the brute-force reference."""
    import random

    rng = random.Random(20260806)
    pool_disk, ref_disk = _Disk(), _Disk()
    pool = BufferPool(4, pool_disk.load, pool_disk.flush, StorageStats())
    ref = _ScanPool(4, ref_disk.load, ref_disk.flush, StorageStats())

    for step in range(2000):
        action = rng.random()
        page_id = rng.randrange(12)
        if action < 0.55:
            a = pool.fetch(page_id)
            b = ref.fetch(page_id)
            if rng.random() < 0.4:
                # Page mutators flip dirty outside the pool's sight —
                # exactly the staleness the lazy index must absorb.
                a.dirty = True
                b.dirty = True
        elif action < 0.75:
            page = Page(100 + step, 0)  # fresh pages are born dirty
            twin = Page(100 + step, 0)
            pool.admit_new(page)
            ref.admit_new(twin)
        elif action < 0.90:
            pool.flush_dirty()
            ref.flush_dirty()
        elif action < 0.95:
            pool.drop(page_id)
            ref.drop(page_id)
        else:
            pool.drop_dirty()
            ref.drop_dirty()
        assert pool.resident_ids() == ref.resident_ids(), f"diverged at op {step}"
        assert pool.overflow_high_water == ref.overflow_high_water
    assert pool_disk.flushes == ref_disk.flushes


class _LegacyFlushPool(BufferPool):
    """Reference implementation: the pre-dirty-set commit flush.

    The original flush sorted *every* resident page and probed its dirty
    flag; the dirty-set flush must issue the identical write sequence
    and leave identical residency while looking only at dirty pages.
    """

    def flush_dirty(self):
        from collections import OrderedDict

        written = 0
        for page_id in sorted(self._pages):
            page = self._pages[page_id]
            if page.dirty:
                self._flush_page(page)
                page.dirty = False
                written += 1
        self._stats.page_writes += written
        self._clean = OrderedDict((page_id, None) for page_id in self._pages)
        self._evict_if_needed()
        return written


def test_dirty_set_flush_matches_legacy_full_sort():
    """Randomized op stream: the O(dirty) flush must write the same
    pages in the same order and keep residency identical to the
    sort-everything reference."""
    import random

    rng = random.Random(19960806)
    pool_disk, ref_disk = _Disk(), _Disk()
    pool_stats, ref_stats = StorageStats(), StorageStats()
    pool = BufferPool(4, pool_disk.load, pool_disk.flush, pool_stats)
    ref = _LegacyFlushPool(4, ref_disk.load, ref_disk.flush, ref_stats)

    for step in range(2000):
        action = rng.random()
        page_id = rng.randrange(12)
        if action < 0.50:
            a = pool.fetch(page_id)
            b = ref.fetch(page_id)
            if rng.random() < 0.4:
                a.dirty = True
                b.dirty = True
        elif action < 0.70:
            pool.admit_new(Page(100 + step, 0))
            ref.admit_new(Page(100 + step, 0))
        elif action < 0.90:
            assert pool.flush_dirty() == ref.flush_dirty()
        elif action < 0.95:
            pool.drop(page_id)
            ref.drop(page_id)
        else:
            assert pool.drop_dirty() == ref.drop_dirty()
        assert pool.resident_ids() == ref.resident_ids(), f"diverged at op {step}"
    assert pool_disk.flushes == ref_disk.flushes
    assert pool_stats.page_writes == ref_stats.page_writes


def test_flush_with_no_dirty_pages_writes_nothing():
    pool, disk, stats = _pool()
    pool.fetch(1)
    pool.fetch(2)
    assert pool.flush_dirty() == 0
    assert not disk.flushes
    assert stats.page_writes == 0


# -- read-ahead ---------------------------------------------------------------


class _ByteDisk:
    """Fake disk serving raw page images, with vectored read/write."""

    def __init__(self, n_pages=32):
        self.images: dict[int, bytes] = {}
        self.loads: list[int] = []
        self.vector_reads: list[tuple[int, int]] = []
        self.flushes: list[int] = []
        self.vector_writes: list[tuple[int, int]] = []
        for page_id in range(n_pages):
            page = Page(page_id, 0)
            self.images[page_id] = page.to_bytes()

    @property
    def page_count(self):
        return max(self.images, default=-1) + 1

    def load(self, page_id: int) -> Page:
        self.loads.append(page_id)
        return Page.from_bytes(page_id, self.images[page_id])

    def flush(self, page: Page) -> None:
        self.flushes.append(page.page_id)
        self.images[page.page_id] = page.to_bytes()

    def read_pages(self, start: int, count: int):
        self.vector_reads.append((start, count))
        return [self.images.get(start + i) for i in range(count)]

    def flush_pages(self, start: int, pages) -> None:
        self.vector_writes.append((start, len(pages)))
        for page in pages:
            self.flushes.append(page.page_id)
            self.images[page.page_id] = page.to_bytes()


def _readahead_pool(window=8, capacity=64, n_pages=32, fault_hook=None):
    disk = _ByteDisk(n_pages)
    stats = StorageStats()

    def prefetch_run(page_id):
        return page_id + 1, max(0, min(window, disk.page_count - page_id - 1))

    pool = BufferPool(
        capacity,
        disk.load,
        disk.flush,
        stats,
        fault_hook=fault_hook,
        read_pages=disk.read_pages,
        flush_pages=disk.flush_pages,
        readahead_pages=window,
        prefetch_run=prefetch_run,
    )
    return pool, disk, stats


def test_sequential_scan_prefetches_and_absorbs_faults():
    pool, disk, stats = _readahead_pool(window=8, n_pages=24)
    for page_id in range(24):
        pool.fetch(page_id)
    # Every page was served exactly once, as a fault or a staged hit.
    assert stats.major_faults + stats.prefetch_hits == 24
    # Read-ahead kicked in at the second fault and absorbed most faults.
    assert stats.prefetch_hits > stats.major_faults
    assert stats.pages_prefetched == stats.prefetch_hits  # all paid off
    assert stats.io_batches >= 1
    assert disk.vector_reads  # at least one vectored transfer happened
    for start, count in disk.vector_reads:
        assert count <= 8


def test_prefetched_page_is_not_a_major_fault():
    pool, disk, stats = _readahead_pool(window=8, n_pages=16)
    pool.fetch(0)
    pool.fetch(1)  # sequential: stages 2..9
    faults_before = stats.major_faults
    pool.fetch(2)  # staged hit
    assert stats.major_faults == faults_before
    assert stats.prefetch_hits == 1
    assert pool.is_resident(2)
    assert not pool.is_staged(2)  # promoted out of the stage


def test_window_zero_never_prefetches():
    pool, disk, stats = _readahead_pool(window=0, n_pages=16)
    for page_id in range(16):
        pool.fetch(page_id)
    assert not disk.vector_reads
    assert stats.pages_prefetched == 0
    assert stats.prefetch_hits == 0
    assert stats.major_faults == 16


def test_random_access_never_prefetches():
    pool, disk, stats = _readahead_pool(window=4, n_pages=32)
    for page_id in (0, 20, 5, 28, 12):  # every gap outside the window
        pool.fetch(page_id)
    assert not disk.vector_reads
    assert stats.pages_prefetched == 0


def test_fault_hook_fires_on_staged_hit():
    seen = []
    pool, disk, stats = _readahead_pool(
        window=8, n_pages=16, fault_hook=lambda page: seen.append(page.page_id)
    )
    for page_id in range(6):
        pool.fetch(page_id)
    # The hook (Texas swizzling) runs once per demanded page, staged or
    # not — never for pages that sit in the stage unreferenced.
    assert seen == [0, 1, 2, 3, 4, 5]


def test_prefetch_skips_resident_pages():
    pool, disk, stats = _readahead_pool(window=8, n_pages=16)
    pool.fetch(3)  # resident before the scan reaches it
    pool.fetch(0)
    pool.fetch(1)  # stages 2..9, but 3 must be skipped
    assert not pool.is_staged(3)
    hits_before = stats.buffer_hits
    pool.fetch(3)
    assert stats.buffer_hits == hits_before + 1  # still a plain hit


def test_staged_pages_do_not_occupy_pool_slots():
    pool, disk, stats = _readahead_pool(window=8, capacity=4, n_pages=16)
    pool.fetch(0)
    pool.fetch(1)  # stages several pages
    assert pool.staged_pages > 0
    assert pool.resident_pages == 2  # stage lives outside the pool


def test_drop_discards_staged_image():
    pool, disk, stats = _readahead_pool(window=8, n_pages=16)
    pool.fetch(0)
    pool.fetch(1)
    assert pool.is_staged(2)
    pool.drop(2)
    assert not pool.is_staged(2)
    pool.fetch(2)  # must be a real fault now
    assert stats.prefetch_hits == 0


# -- vectored flush -----------------------------------------------------------


def test_flush_coalesces_contiguous_runs():
    pool, disk, stats = _readahead_pool(window=8, n_pages=16)
    for page_id in (3, 4, 5, 9):
        pool.fetch(page_id).dirty = True
    written = pool.flush_dirty()
    assert written == 4
    # One vectored transfer for 3..5, one single write for 9 — ascending.
    assert disk.vector_writes == [(3, 3)]
    assert disk.flushes == [3, 4, 5, 9]
    assert stats.io_batches >= 1
    assert stats.page_writes == 4


def test_flush_without_vectored_writer_stays_per_page():
    pool, disk, stats = _pool()
    for page_id in (1, 2, 3):
        pool.fetch(page_id).dirty = True
    assert pool.flush_dirty() == 3
    assert disk.flushes == [1, 2, 3]
    assert stats.io_batches == 0
