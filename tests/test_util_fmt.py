"""Unit tests for table formatting."""

from repro.util.fmt import format_bytes, format_table


def test_format_bytes_small_exact():
    assert format_bytes(0) == "0 B"
    assert format_bytes(5123) == "5123 B"


def test_format_bytes_scales():
    assert format_bytes(16_629_760) == "15.86 MiB"
    assert format_bytes(2 * 1024**3) == "2.00 GiB"


def test_table_alignment():
    out = format_table(
        ["name", "value"],
        [["a", 1], ["long-name", 22]],
        align_right=(1,),
    )
    lines = out.splitlines()
    assert lines[0].startswith("name")
    # right-aligned numeric column: the ones digit lines up
    assert lines[2].rstrip().endswith("1")
    assert lines[3].rstrip().endswith("22")
    assert lines[2].index("1") == lines[3].index("2") + 1


def test_table_title_and_separator():
    out = format_table(["h"], [["x"]], title="My Table")
    lines = out.splitlines()
    assert lines[0] == "My Table"
    assert set(lines[2]) == {"-"}


def test_table_pads_ragged_rows():
    out = format_table(["a", "b", "c"], [["1"], ["1", "2", "3"]])
    assert len(out.splitlines()) == 4  # header + sep + 2 rows


def test_table_empty_rows():
    out = format_table(["only", "headers"], [])
    assert "only" in out and "headers" in out
