"""Property test: the object cache is invisible to disk and to queries.

The A4 ablation is only honest if turning the cache off changes *speed*
and nothing else.  Both settings run the same unit-of-work write path
(capacity 0 merely disables read caching), so a random workload must
produce **bit-identical database files** and identical query answers on
every persistent server version — and the same answers again on the
main-memory versions.
"""

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.labbase import LabBase
from repro.storage import (
    MMapStoreSM,
    ObjectStoreSM,
    OStoreMM,
    TexasSM,
    TexasTCSM,
    TexasMM,
)

PERSISTENT = [
    ("ostore", ObjectStoreSM),
    ("texas", TexasSM),
    ("texas_tc", TexasTCSM),
    ("mmap", MMapStoreSM),
]
STATES = ("arrived", "assayed", "filed")


def _run_workload(db: LabBase, codes: list[int]) -> None:
    """Deterministic interpreter: the integer stream fixes every choice."""
    db.define_material_class("clone")
    db.define_step_class("assay", ["q", "r"], ["clone"])
    materials: list[int] = []
    steps: list[int] = []
    t = 0
    for code in codes:
        t += 1
        kind = code % 6
        if kind == 0 or not materials:
            oid = db.create_material(
                "clone", f"c-{t}", t, state=STATES[code % len(STATES)]
            )
            materials.append(oid)
        elif kind == 1:
            target = materials[code % len(materials)]
            steps.append(
                db.record_step(
                    "assay", t, [target],
                    {"q": code, "r": "x" * (code % 40)},
                )
            )
        elif kind == 2:
            target = materials[code % len(materials)]
            db.set_state(target, STATES[code % len(STATES)], t)
        elif kind == 3:
            # A transaction block that rewrites the same material several
            # times — the write-coalescing case byte-identity must survive.
            target = materials[code % len(materials)]
            db.begin()
            steps.append(db.record_step("assay", t, [target], {"q": code}))
            db.set_state(target, STATES[code % len(STATES)], t)
            steps.append(db.record_step("assay", t + 1, [target], {"r": "y"}))
            db.commit()
            t += 1
        elif kind == 4:
            # An aborted transaction: buffered writes must vanish equally
            # with and without read caching.
            target = materials[code % len(materials)]
            db.begin()
            db.record_step("assay", t, [target], {"q": -code})
            db.abort()
            steps = [oid for oid in steps if db.storage.exists(oid)]
        elif steps:
            db.retract_step(steps.pop(code % len(steps)))


def _answers(db: LabBase) -> dict:
    """Every query family's full answer set, keyed by material."""
    snapshot: dict = {"states": {}, "materials": {}}
    for state in STATES:
        snapshot["states"][state] = sorted(db.in_state(state))
    for oid, record in db.iter_materials():
        snapshot["materials"][record["key"]] = {
            "state": db.state_of(oid),
            "attrs": db.current_attributes(oid),
            "history_len": db.history_length(oid),
            "history": [
                (step["valid_time"], step["results"])
                for _oid, step in db.material_history(oid)
            ],
        }
    snapshot["counts"] = (
        db.count_materials("clone"), db.count_steps("assay"),
    )
    return snapshot


def _file_bytes(directory: str) -> dict[str, bytes]:
    contents = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            contents[name] = handle.read()
    return contents


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(codes=st.lists(st.integers(0, 9999), min_size=8, max_size=50))
def test_cache_on_off_equivalence(codes):
    answers: dict[tuple, dict] = {}
    files: dict[tuple, dict[str, bytes]] = {}

    with tempfile.TemporaryDirectory() as workdir:
        for server_name, cls in PERSISTENT:
            for cached in (True, False):
                directory = os.path.join(workdir, f"{server_name}_{cached}")
                os.makedirs(directory)
                sm = cls(path=os.path.join(directory, "db.pages"))
                db = LabBase(sm, object_cache=cached)
                _run_workload(db, codes)
                answers[(server_name, cached)] = _answers(db)
                sm.close()
                files[(server_name, cached)] = _file_bytes(directory)

        for server_name, _cls in PERSISTENT:
            assert files[(server_name, True)] == files[(server_name, False)], (
                f"{server_name}: cache on/off databases differ on disk"
            )
            assert answers[(server_name, True)] == answers[(server_name, False)]

    # answers also agree across every server version (incl. main-memory)
    reference = answers[("ostore", True)]
    for key, snapshot in answers.items():
        assert snapshot == reference, f"{key} disagrees with OStore"
    for cls in (OStoreMM, TexasMM):
        db = LabBase(cls())
        _run_workload(db, codes)
        assert _answers(db) == reference
