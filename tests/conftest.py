"""Shared fixtures.

``all_sm_factories`` parametrizes over every storage manager so each
behavioural test runs against all five server versions — the same
"identical LabBase over every store" discipline the paper uses.
"""

from __future__ import annotations

import os

import pytest

from repro.labbase import LabBase, LabClock
from repro.storage import (
    ObjectStoreSM,
    OStoreMM,
    TexasMM,
    TexasSM,
    TexasTCSM,
)

SM_FACTORIES = {
    "OStore": lambda path, pages: ObjectStoreSM(path=path, buffer_pages=pages),
    "Texas": lambda path, pages: TexasSM(path=path, buffer_pages=pages),
    "Texas+TC": lambda path, pages: TexasTCSM(path=path, buffer_pages=pages),
    "OStore-mm": lambda path, pages: OStoreMM(),
    "Texas-mm": lambda path, pages: TexasMM(),
}

PERSISTENT = ("OStore", "Texas", "Texas+TC")


@pytest.fixture(params=sorted(SM_FACTORIES))
def any_sm(request, tmp_path):
    """One storage manager of each kind, file-backed when persistent."""
    name = request.param
    path = None
    if name in PERSISTENT:
        path = os.path.join(tmp_path, "store.db")
    sm = SM_FACTORIES[name](path, 64)
    yield sm
    try:
        sm.close()
    except Exception:
        pass


@pytest.fixture(params=PERSISTENT)
def persistent_sm(request, tmp_path):
    """A file-backed page store (reopen tests)."""
    name = request.param
    path = os.path.join(tmp_path, "store.db")
    sm = SM_FACTORIES[name](path, 64)
    yield sm
    try:
        sm.close()
    except Exception:
        pass


@pytest.fixture
def mm_db():
    """A LabBase over a main-memory store (fast unit tests)."""
    return LabBase(OStoreMM())


@pytest.fixture
def clock():
    return LabClock()


@pytest.fixture
def genome_db(mm_db):
    """LabBase with the genome workflow's schema installed."""
    from repro.workflow import build_genome_workflow, WorkflowEngine
    from repro.util.rng import DeterministicRng

    graph = build_genome_workflow()
    engine = WorkflowEngine(mm_db, graph, DeterministicRng(11))
    engine.install_schema()
    return mm_db, engine
