"""Shared fixtures.

``any_sm`` parametrizes over every registered storage backend so each
behavioural test runs against every server version — the same
"identical LabBase over every store" discipline the paper uses.  The
set comes from the backend registry: registering a sixth version makes
the whole behavioural suite cover it with no test edits.
"""

from __future__ import annotations

import os

import pytest

from repro.labbase import LabBase, LabClock
from repro.storage import OStoreMM
from repro.storage.buffer import DEFAULT_READAHEAD_PAGES
from repro.storage.registry import backends


def _factory(info):
    return lambda path, pages: info.make(path, pages, DEFAULT_READAHEAD_PAGES)


SM_FACTORIES = {info.name: _factory(info) for info in backends()}

PERSISTENT = tuple(info.name for info in backends(persistent=True))


@pytest.fixture(params=sorted(SM_FACTORIES))
def any_sm(request, tmp_path):
    """One storage manager of each kind, file-backed when persistent."""
    name = request.param
    path = None
    if name in PERSISTENT:
        path = os.path.join(tmp_path, "store.db")
    sm = SM_FACTORIES[name](path, 64)
    yield sm
    try:
        sm.close()
    except Exception:
        pass


@pytest.fixture(params=PERSISTENT)
def persistent_sm(request, tmp_path):
    """A file-backed page store (reopen tests)."""
    name = request.param
    path = os.path.join(tmp_path, "store.db")
    sm = SM_FACTORIES[name](path, 64)
    yield sm
    try:
        sm.close()
    except Exception:
        pass


@pytest.fixture
def mm_db():
    """A LabBase over a main-memory store (fast unit tests)."""
    return LabBase(OStoreMM())


@pytest.fixture
def clock():
    return LabClock()


@pytest.fixture
def genome_db(mm_db):
    """LabBase with the genome workflow's schema installed."""
    from repro.workflow import build_genome_workflow, WorkflowEngine
    from repro.util.rng import DeterministicRng

    graph = build_genome_workflow()
    engine = WorkflowEngine(mm_db, graph, DeterministicRng(11))
    engine.install_schema()
    return mm_db, engine
