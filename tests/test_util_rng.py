"""Unit + property tests for the deterministic RNG."""

import string

from hypothesis import given, strategies as st

from repro.util.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(42)
    b = DeterministicRng(42)
    assert [a.randint(0, 1000) for _ in range(50)] == [
        b.randint(0, 1000) for _ in range(50)
    ]


def test_different_seeds_differ():
    a = [DeterministicRng(1).randint(0, 10**9) for _ in range(5)]
    b = [DeterministicRng(2).randint(0, 10**9) for _ in range(5)]
    assert a != b


def test_substreams_are_independent_of_draw_order():
    """Drawing from one substream must not perturb another."""
    a = DeterministicRng(7)
    a.substream("x").randint(0, 10**9)  # extra draw on x
    from_a = a.substream("y").randint(0, 10**9)

    b = DeterministicRng(7)
    from_b = b.substream("y").randint(0, 10**9)
    assert from_a == from_b


def test_substream_is_cached():
    rng = DeterministicRng(1)
    assert rng.substream("s") is rng.substream("s")


def test_dna_alphabet_and_length():
    seq = DeterministicRng(3).dna(500)
    assert len(seq) == 500
    assert set(seq) <= set("ACGT")


def test_identifier_shape():
    ident = DeterministicRng(3).identifier("clone")
    prefix, _, digits = ident.rpartition("-")
    assert prefix == "clone"
    assert len(digits) == 6 and digits.isdigit()


def test_gaussian_int_respects_minimum():
    rng = DeterministicRng(9)
    values = [rng.gaussian_int(2, 10, minimum=0) for _ in range(200)]
    assert all(v >= 0 for v in values)


def test_weighted_choice_respects_zero_weight():
    rng = DeterministicRng(5)
    picks = {rng.weighted_choice(("a", "b"), (1.0, 0.0)) for _ in range(50)}
    assert picks == {"a"}


def test_chance_extremes():
    rng = DeterministicRng(5)
    assert not any(rng.chance(0.0) for _ in range(20))
    assert all(rng.chance(1.0) for _ in range(20))


@given(st.integers(min_value=0, max_value=2**32), st.text(string.ascii_lowercase, min_size=1, max_size=8))
def test_substream_reproducible_property(seed, name):
    first = DeterministicRng(seed).substream(name).randint(0, 10**9)
    second = DeterministicRng(seed).substream(name).randint(0, 10**9)
    assert first == second


@given(st.integers(min_value=0, max_value=2**32), st.integers(0, 100), st.integers(0, 100))
def test_randint_within_bounds(seed, low, span):
    value = DeterministicRng(seed).randint(low, low + span)
    assert low <= value <= low + span
