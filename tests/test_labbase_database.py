"""Behavioural tests for the LabBase facade — the paper's operations.

Runs over every storage manager via the ``any_sm`` fixture: the paper's
central claim is that the identical LabBase works over each store.
"""

import pytest

from repro.errors import (
    DuplicateKeyError,
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownMaterialError,
)
from repro.labbase import LabBase, LabClock


@pytest.fixture
def db(any_sm):
    database = LabBase(any_sm)
    database.define_material_class("clone")
    database.define_material_class("tclone", parent="clone")
    database.define_step_class(
        "determine_sequence", ["sequence", "quality"], ["tclone"]
    )
    return database


def test_create_and_lookup(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    assert db.lookup("tclone", "tc-1") == oid
    assert db.material_exists("tclone", "tc-1")
    assert not db.material_exists("tclone", "tc-2")


def test_duplicate_key_rejected(db, clock):
    db.create_material("tclone", "tc-1", clock.tick())
    with pytest.raises(DuplicateKeyError):
        db.create_material("tclone", "tc-1", clock.tick())


def test_same_key_allowed_in_different_classes(db, clock):
    db.create_material("clone", "x", clock.tick())
    db.create_material("tclone", "x", clock.tick())  # fine


def test_unknown_class_rejected(db, clock):
    with pytest.raises(UnknownClassError):
        db.create_material("plasmid", "p-1", clock.tick())
    with pytest.raises(UnknownClassError):
        db.lookup("plasmid", "p-1")


def test_lookup_missing_key(db, clock):
    db.create_material("tclone", "tc-1", clock.tick())
    with pytest.raises(UnknownMaterialError):
        db.lookup("tclone", "tc-404")


def test_record_step_builds_history_and_index(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    step = db.record_step(
        "determine_sequence", clock.tick(), [oid],
        {"sequence": "ACGT", "quality": 0.8},
    )
    assert db.most_recent(oid, "quality") == 0.8
    assert db.history_length(oid) == 1
    record = db.step(step)
    assert record["involves"] == [oid]


def test_most_recent_respects_valid_time(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    db.record_step("determine_sequence", 100, [oid], {"quality": 0.9})
    db.record_step("determine_sequence", 50, [oid], {"quality": 0.2})  # late entry
    assert db.most_recent(oid, "quality") == 0.9


def test_large_value_served_from_step(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    sequence = "ACGT" * 500
    db.record_step("determine_sequence", clock.tick(), [oid], {"sequence": sequence})
    assert db.most_recent(oid, "sequence") == sequence


def test_missing_attribute_raises(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    with pytest.raises(UnknownAttributeError):
        db.most_recent(oid, "quality")
    assert not db.has_attribute(oid, "quality")


def test_undeclared_attribute_rejected(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    with pytest.raises(SchemaError):
        db.record_step("determine_sequence", clock.tick(), [oid], {"zzz": 1})


def test_step_involving_many_materials(db, clock):
    first = db.create_material("tclone", "tc-1", clock.tick())
    second = db.create_material("tclone", "tc-2", clock.tick())
    db.record_step("determine_sequence", clock.tick(), [first, second], {"quality": 1.0})
    assert db.most_recent(first, "quality") == 1.0
    assert db.most_recent(second, "quality") == 1.0
    assert db.history_length(first) == db.history_length(second) == 1


def test_states_and_sets(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick(), state="waiting")
    assert db.state_of(oid) == "waiting"
    assert db.in_state("waiting") == [oid]
    db.set_state(oid, "done", clock.tick())
    assert db.in_state("waiting") == []
    assert db.in_state("done") == [oid]
    assert db.clear_state(oid) == "done"
    assert db.state_of(oid) is None


def test_counts_with_subclasses(db, clock):
    db.create_material("clone", "c-1", clock.tick())
    db.create_material("tclone", "tc-1", clock.tick())
    assert db.count_materials("clone") == 2
    assert db.count_materials("clone", include_subclasses=False) == 1
    assert db.count_materials("tclone") == 1


def test_count_steps(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    for _ in range(3):
        db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 0.5})
    assert db.count_steps("determine_sequence") == 3
    with pytest.raises(UnknownClassError):
        db.count_steps("nope")


def test_schema_evolution_versions_coexist(db, clock):
    """The U4/E9 behaviour: new versions coexist with old data."""
    old_version = db.catalog.step_class("determine_sequence").current
    oid = db.create_material("tclone", "tc-1", clock.tick())
    db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 0.7})

    new_version = db.define_step_class(
        "determine_sequence", ["sequence", "quality", "read_length"], ["tclone"]
    )
    assert new_version.version_id != old_version.version_id

    # new-format steps work
    db.record_step("determine_sequence", clock.tick(), [oid], {"read_length": 500})
    # old software still writes old-format steps
    db.record_step(
        "determine_sequence", clock.tick(), [oid], {"quality": 0.9},
        version_id=old_version.version_id,
    )
    # but the old version does not accept new attributes
    with pytest.raises(SchemaError):
        db.record_step(
            "determine_sequence", clock.tick(), [oid], {"read_length": 1},
            version_id=old_version.version_id,
        )
    assert db.most_recent(oid, "quality") == 0.9
    assert db.most_recent(oid, "read_length") == 500
    # old data still reports its original version
    oldest_step = db.material_history(oid)[-1][1]
    assert oldest_step["class_version"] == old_version.version_id


def test_history_ordered_by_valid_time(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    db.record_step("determine_sequence", 10, [oid], {"quality": 0.1})
    db.record_step("determine_sequence", 30, [oid], {"quality": 0.3})
    db.record_step("determine_sequence", 20, [oid], {"quality": 0.2})
    times = [step["valid_time"] for _oid, step in db.material_history(oid)]
    assert times == [30, 20, 10]


def test_retract_step_resurfaces_older_value(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    db.record_step("determine_sequence", 10, [oid], {"quality": 0.1})
    newest = db.record_step("determine_sequence", 20, [oid], {"quality": 0.9})
    db.retract_step(newest)
    assert db.most_recent(oid, "quality") == 0.1
    assert db.history_length(oid) == 1
    assert db.count_steps("determine_sequence") == 1


def test_current_attributes_reflect_history(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    assert db.current_attributes(oid) == {}
    db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 0.5})
    assert db.current_attributes(oid) == {"quality": 0.5}


def test_report_rows(db, clock):
    first = db.create_material("tclone", "tc-1", clock.tick(), state="waiting")
    second = db.create_material("tclone", "tc-2", clock.tick(), state="waiting")
    db.record_step("determine_sequence", clock.tick(), [first], {"quality": 0.5})
    rows = db.report([first, second], ["quality", "sequence"])
    assert rows[0]["key"] == "tc-1" and rows[0]["quality"] == 0.5
    assert rows[0]["sequence"] is None
    assert rows[1]["quality"] is None
    assert all(row["state"] == "waiting" for row in rows)


def test_transactions_roll_back_labbase_state(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick(), state="waiting")
    db.commit()
    db.begin()
    db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 0.4})
    db.set_state(oid, "done", clock.tick())
    other = db.create_material("tclone", "tc-2", clock.tick())
    db.abort()
    assert db.state_of(oid) == "waiting"
    assert db.history_length(oid) == 0
    assert not db.material_exists("tclone", "tc-2")
    assert db.count_steps("determine_sequence") == 0
    assert db.count_materials("tclone") == 1
    # and the database still works after the abort
    db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 0.6})
    assert db.most_recent(oid, "quality") == 0.6


def test_most_recent_without_index_scans_history(any_sm, clock):
    db = LabBase(any_sm, use_most_recent_index=False)
    db.define_material_class("clone")
    db.define_step_class("s", ["a"], ["clone"])
    oid = db.create_material("clone", "c", clock.tick())
    db.record_step("s", 10, [oid], {"a": "first"})
    db.record_step("s", 5, [oid], {"a": "late"})
    assert db.most_recent(oid, "a") == "first"
    assert db.current_attributes(oid) == {"a": "first"}
    with pytest.raises(UnknownAttributeError):
        db.most_recent(oid, "b")


def test_iteration_helpers(db, clock):
    oid = db.create_material("tclone", "tc-1", clock.tick())
    db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 1.0})
    materials = list(db.iter_materials())
    steps = list(db.iter_steps())
    assert len(materials) == 1 and materials[0][0] == oid
    assert len(steps) == 1


def test_verify_storage_passthrough(db, clock):
    oid = db.create_material("clone", "c-v", clock.tick())
    db.record_step("determine_sequence", clock.tick(), [oid], {"quality": 0.8})
    report = db.verify_storage()
    assert report.ok


def test_recover_storage_reloads_catalog(tmp_path, clock):
    """After a crash-reopen, recover_storage() must both repair the store
    and re-read the catalog so dropped materials disappear from the
    key index too."""
    from repro.storage import ObjectStoreSM

    path = str(tmp_path / "lab.db")
    sm = ObjectStoreSM(path=path, checkpoint_every=1)
    db = LabBase(sm)
    db.define_material_class("clone")
    db.create_material("clone", "kept", clock.tick())
    sm.checkpoint()
    sm.checkpoint_every = 0
    db.create_material("clone", "lost", clock.tick())
    sm.commit()
    # crash: no close()
    reopened_sm = ObjectStoreSM(path=path)
    reopened = LabBase(reopened_sm)
    assert not reopened.verify_storage().ok
    reopened.recover_storage()
    reopened.verify_storage().raise_if_bad()
    assert reopened.material_exists("clone", "kept")
    reopened_sm.close()
