"""Unit tests for history lists and the most-recent slow path."""

import pytest

from repro.labbase import model
from repro.labbase.history import HistoryStore
from repro.storage import OStoreMM


def _setup(chunk=4):
    sm = OStoreMM()
    history = HistoryStore(sm, None, chunk=chunk)
    material = model.make_material("clone", "c-1", 0)
    return sm, history, material


def _add_step(sm, history, material, valid_time, results):
    step = model.make_step(1, valid_time, results, [1])
    oid = sm.allocate_write(step)
    history.append(material, oid)
    return oid


def test_append_and_scan_newest_first():
    sm, history, material = _setup()
    oids = [_add_step(sm, history, material, t, [("a", t)]) for t in range(10)]
    assert material["history_len"] == 10
    assert list(history.step_oids(material)) == list(reversed(oids))


def test_chunking_creates_nodes_of_bounded_size():
    sm, history, material = _setup(chunk=3)
    for t in range(10):
        _add_step(sm, history, material, t, [])
    node_oid = material["history_head"]
    nodes = 0
    while node_oid != model.NIL:
        node = sm.read(node_oid)
        assert len(node["step_oids"]) <= 3
        node_oid = node["next"]
        nodes += 1
    assert nodes == 4  # ceil(10/3)


def test_invalid_chunk_rejected():
    with pytest.raises(ValueError):
        HistoryStore(OStoreMM(), None, chunk=0)


def test_steps_by_valid_time_orders_out_of_order_inserts():
    sm, history, material = _setup()
    _add_step(sm, history, material, 5, [("a", "old")])
    _add_step(sm, history, material, 20, [("a", "newest")])
    _add_step(sm, history, material, 10, [("a", "mid")])  # late entry
    times = [step["valid_time"] for _o, step in history.steps_by_valid_time(material)]
    assert times == [20, 10, 5]


def test_scan_most_recent_by_valid_time():
    sm, history, material = _setup()
    _add_step(sm, history, material, 5, [("q", 0.2)])
    _add_step(sm, history, material, 30, [("q", 0.9)])
    _add_step(sm, history, material, 10, [("q", 0.4)])
    found = history.scan_most_recent(material, "q")
    assert found is not None
    valid_time, _oid, value = found
    assert valid_time == 30 and value == 0.9


def test_scan_most_recent_missing_attribute():
    sm, history, material = _setup()
    _add_step(sm, history, material, 1, [("other", 1)])
    assert history.scan_most_recent(material, "q") is None


def test_rebuild_recent_matches_incremental_updates():
    sm, history, material = _setup()
    times_values = [(5, 0.1), (12, 0.7), (8, 0.3), (12, 0.9)]
    for valid_time, value in times_values:
        oid = _add_step(sm, history, material, valid_time, [("q", value)])
        model.update_recent(material, "q", valid_time, oid, value)
    incremental = list(material["recent"]["q"])
    history.rebuild_recent(material)
    rebuilt = list(material["recent"]["q"])
    assert rebuilt[0] == incremental[0] == 12
    assert rebuilt[3] == incremental[3] == 0.9


def test_remove_step_unlinks_and_shrinks():
    sm, history, material = _setup(chunk=2)
    oids = [_add_step(sm, history, material, t, []) for t in range(5)]
    assert history.remove_step(material, oids[2])
    assert material["history_len"] == 4
    assert oids[2] not in list(history.step_oids(material))
    assert not history.remove_step(material, oids[2])  # already gone


def test_remove_then_rebuild_resurfaces_older_value():
    sm, history, material = _setup()
    _add_step(sm, history, material, 5, [("q", "old")])
    newest = _add_step(sm, history, material, 9, [("q", "new")])
    history.rebuild_recent(material)
    assert material["recent"]["q"][3] == "new"
    history.remove_step(material, newest)
    history.rebuild_recent(material)
    assert material["recent"]["q"][3] == "old"


def test_steps_yields_records():
    sm, history, material = _setup()
    oid = _add_step(sm, history, material, 3, [("a", 1)])
    pairs = list(history.steps(material))
    assert pairs[0][0] == oid
    assert pairs[0][1]["valid_time"] == 3


# -- emptied-node reclamation (retraction must not bloat the chain) ---------


def _chain_node_oids(sm, material):
    node_oids = []
    node_oid = material["history_head"]
    while node_oid != model.NIL:
        node_oids.append(node_oid)
        node_oid = sm.read(node_oid)["next"]
    return node_oids


def test_remove_step_unlinks_emptied_middle_node():
    """Regression: draining a chunk node left it linked in the chain
    forever, inflating every Q7 full-history walk and leaking a
    cold-segment object."""
    sm, history, material = _setup(chunk=2)
    oids = [_add_step(sm, history, material, t, []) for t in range(6)]
    before = _chain_node_oids(sm, material)
    assert len(before) == 3
    # drain the middle node (steps 2 and 3 share it)
    assert history.remove_step(material, oids[2])
    assert history.remove_step(material, oids[3])
    after = _chain_node_oids(sm, material)
    assert len(after) == 2
    drained = (set(before) - set(after)).pop()
    assert not sm.exists(drained)  # the node record is freed, not leaked
    assert list(history.step_oids(material)) == [
        oids[5], oids[4], oids[1], oids[0]
    ]


def test_remove_step_unlinks_emptied_head_node():
    sm, history, material = _setup(chunk=2)
    oids = [_add_step(sm, history, material, t, []) for t in range(3)]
    head_before = material["history_head"]
    assert history.remove_step(material, oids[2])  # head holds only step 2
    assert material["history_head"] != head_before
    assert not sm.exists(head_before)
    assert list(history.step_oids(material)) == [oids[1], oids[0]]


def test_removing_every_step_leaves_an_empty_chain():
    sm, history, material = _setup(chunk=2)
    oids = [_add_step(sm, history, material, t, []) for t in range(5)]
    node_oids = _chain_node_oids(sm, material)
    for oid in oids:
        assert history.remove_step(material, oid)
    assert material["history_head"] == model.NIL
    assert material["history_len"] == 0
    assert list(history.step_oids(material)) == []
    for node_oid in node_oids:
        assert not sm.exists(node_oid)  # no node leaked
    # the chain still works after being emptied
    fresh = _add_step(sm, history, material, 99, [])
    assert list(history.step_oids(material)) == [fresh]


def test_append_after_middle_unlink_keeps_chain_sound():
    sm, history, material = _setup(chunk=1)  # one step per node
    oids = [_add_step(sm, history, material, t, []) for t in range(4)]
    assert history.remove_step(material, oids[1])
    later = _add_step(sm, history, material, 10, [])
    assert list(history.step_oids(material)) == [
        later, oids[3], oids[2], oids[0]
    ]
    assert material["history_len"] == 4


# -- property test: rebuilt index always agrees with the history scan -------


def test_rebuild_recent_matches_scan_after_random_churn():
    """After any sequence of appends and retractions, rebuild_recent
    must agree with scan_most_recent for every attribute: same valid
    time, same winning step, same value."""
    import random

    rng = random.Random(1996)
    attributes = ["q", "r", "s", "t"]
    sm, history, material = _setup(chunk=3)
    live_steps: list[int] = []

    def check():
        history.rebuild_recent(material)
        for attr in attributes:
            scanned = history.scan_most_recent(material, attr)
            entry = model.recent_entry(material, attr)
            if scanned is None:
                assert entry is None, f"{attr}: index has entry, scan does not"
                continue
            valid_time, step_oid, value = scanned
            assert entry is not None, f"{attr}: scan found value, index lost it"
            assert entry[0] == valid_time
            assert entry[1] == step_oid
            got = entry[3] if entry[2] else model.step_result(
                sm.read(entry[1]), attr
            )
            assert got == value

    for round_no in range(120):
        if live_steps and rng.random() < 0.35:
            victim = live_steps.pop(rng.randrange(len(live_steps)))
            assert history.remove_step(material, victim)
            sm.delete(victim)
        else:
            results = [
                (attr, rng.randrange(1000))
                for attr in attributes
                if rng.random() < 0.5
            ]
            # occasionally a big, non-inlineable value
            if rng.random() < 0.2:
                results.append(("q", "x" * 100))
            oid = _add_step(
                sm, history, material, rng.randrange(50), results
            )
            live_steps.append(oid)
        if round_no % 10 == 9:
            check()
    check()


# -- warm object cache (the PR-3 layer) -------------------------------------


def test_history_scans_through_warm_cache_skip_the_store():
    """steps_by_valid_time / scan_most_recent re-read every node and
    step record per call; through a warm object cache the repeat calls
    must not touch the storage manager at all."""
    from repro.storage import ObjectCache

    sm = OStoreMM()
    cache = ObjectCache(sm, capacity=256)
    history = HistoryStore(cache, None, chunk=4)
    material = model.make_material("clone", "c-1", 0)
    for t in range(20):
        step = model.make_step(1, t, [("q", t)], [1])
        history.append(material, cache.allocate_write(step))

    cold_before = sm.stats.objects_read
    first = history.steps_by_valid_time(material)
    cold_reads = sm.stats.objects_read - cold_before
    assert cold_reads == 0  # allocate through the cache pre-warmed it

    cache.invalidate()  # start truly cold
    cold_before = sm.stats.objects_read
    first = history.steps_by_valid_time(material)
    cold_reads = sm.stats.objects_read - cold_before
    assert cold_reads > 0

    warm_before = sm.stats.objects_read
    again = history.steps_by_valid_time(material)
    scan = history.scan_most_recent(material, "q")
    warm_reads = sm.stats.objects_read - warm_before
    assert warm_reads == 0          # the whole chain is served in memory
    assert again == first           # identical answer
    assert scan is not None and scan[0] == 19


def test_capacity_zero_cache_scans_pay_full_price_every_time():
    from repro.storage import ObjectCache

    sm = OStoreMM()
    cache = ObjectCache(sm, capacity=0)
    history = HistoryStore(cache, None, chunk=4)
    material = model.make_material("clone", "c-1", 0)
    for t in range(12):
        step = model.make_step(1, t, [("q", t)], [1])
        history.append(material, cache.allocate_write(step))

    before = sm.stats.objects_read
    history.steps_by_valid_time(material)
    first_cost = sm.stats.objects_read - before
    before = sm.stats.objects_read
    history.steps_by_valid_time(material)
    second_cost = sm.stats.objects_read - before
    assert first_cost == second_cost > 0  # A4 "off": no warm-cache help
