"""Unit tests for slotted pages and charge policies."""

import pytest

from repro.errors import PageError, PageOverflowError
from repro.storage.page import (
    PAGE_HEADER_BYTES,
    PAGE_SIZE,
    SLOT_OVERHEAD_BYTES,
    Page,
    exact_charge,
    power_of_two_charge,
)


def _page() -> Page:
    return Page(page_id=1, segment_id=0)


def test_exact_charge_adds_slot_overhead():
    assert exact_charge(100) == 100 + SLOT_OVERHEAD_BYTES


def test_power_of_two_charge_rounds_up():
    assert power_of_two_charge(0) == 32
    assert power_of_two_charge(10) == 32
    assert power_of_two_charge(100) == 128
    assert power_of_two_charge(513) == 1024


def test_power_of_two_never_below_exact():
    for size in range(0, 3000, 7):
        assert power_of_two_charge(size) >= exact_charge(size)


def test_insert_read_round_trip():
    page = _page()
    slot = page.insert(b"hello", exact_charge(5))
    assert page.read(slot) == b"hello"


def test_slots_are_unique_even_after_delete():
    page = _page()
    first = page.insert(b"a", exact_charge(1))
    page.delete(first)
    second = page.insert(b"b", exact_charge(1))
    assert second != first


def test_free_space_accounting():
    page = _page()
    before = page.free_bytes
    page.insert(b"x" * 100, exact_charge(100))
    assert page.free_bytes == before - exact_charge(100)
    assert before == PAGE_SIZE - PAGE_HEADER_BYTES


def test_overflow_rejected():
    page = _page()
    with pytest.raises(PageOverflowError):
        page.insert(b"x" * PAGE_SIZE, exact_charge(PAGE_SIZE))


def test_delete_returns_space():
    page = _page()
    slot = page.insert(b"x" * 500, exact_charge(500))
    free_after_insert = page.free_bytes
    page.delete(slot)
    assert page.free_bytes == free_after_insert + exact_charge(500)
    assert page.is_empty


def test_read_missing_slot_raises():
    with pytest.raises(PageError):
        _page().read(0)


def test_delete_missing_slot_raises():
    with pytest.raises(PageError):
        _page().delete(3)


def test_replace_in_place():
    page = _page()
    slot = page.insert(b"short", exact_charge(5))
    assert page.can_replace(slot, exact_charge(100))
    page.replace(slot, b"y" * 100, exact_charge(100))
    assert page.read(slot) == b"y" * 100


def test_replace_that_does_not_fit_is_rejected():
    page = _page()
    slot = page.insert(b"a", exact_charge(1))
    page.insert(b"b" * 3000, exact_charge(3000))
    huge = exact_charge(4000)
    assert not page.can_replace(slot, huge)
    with pytest.raises(PageOverflowError):
        page.replace(slot, b"z" * 4000, huge)


def test_disk_image_round_trip():
    page = _page()
    slots = [page.insert(f"rec{i}".encode(), exact_charge(5)) for i in range(10)]
    page.delete(slots[3])
    image = page.to_bytes()
    assert len(image) == PAGE_SIZE
    restored = Page.from_bytes(1, image)
    assert restored.segment_id == 0
    assert not restored.dirty
    assert restored.read(slots[0]) == b"rec0"
    with pytest.raises(PageError):
        restored.read(slots[3])
    assert restored.used_bytes == page.used_bytes


def test_from_bytes_rejects_garbage():
    with pytest.raises(PageError, match="corrupt"):
        Page.from_bytes(0, b"\xff" * PAGE_SIZE)


def test_full_page_still_serializes_within_page_size():
    """Charge accounting must leave room for the pickle framing."""
    page = _page()
    payload = b"z" * 100
    while page.fits(exact_charge(len(payload))):
        page.insert(payload, exact_charge(len(payload)))
    image = page.to_bytes()  # must not raise
    assert len(image) == PAGE_SIZE
