"""Cross-module integration tests.

These exercise full paths the unit tests cannot: reopen-after-run
persistence, cold-cache locality differences (the paper's headline),
the DQL-vs-API equivalence on a real workload database, and index
ablation equivalence.
"""

import os

import pytest

from repro.benchmark import TINY, LabFlowWorkload
from repro.labbase import LabBase
from repro.query import Program
from repro.storage import ObjectStoreSM, OStoreMM, TexasSM


def test_full_run_persists_and_reopens(tmp_path):
    path = os.path.join(tmp_path, "lab.db")
    sm = ObjectStoreSM(path=path, buffer_pages=64)
    db = LabBase(sm)
    workload = LabFlowWorkload(db, TINY)
    workload.run_all()
    census = db.sets.state_census()
    material_counts = dict(db.catalog.material_counts)
    clone_oid = db.lookup("clone", "clone-000001")
    clone_attrs = db.current_attributes(clone_oid)
    sm.close()

    sm2 = ObjectStoreSM(path=path, buffer_pages=64)
    db2 = LabBase(sm2)
    assert db2.sets.state_census() == census
    assert db2.catalog.material_counts == material_counts
    assert db2.current_attributes(db2.lookup("clone", "clone-000001")) == clone_attrs
    # and it keeps working: record more steps after reopen
    version = db2.catalog.step_class("receive_clone").current
    db2.record_step("receive_clone", 10_000, [clone_oid],
                    {"source": "reopened"}, version_id=version.version_id)
    assert db2.most_recent(clone_oid, "source") == "reopened"
    sm2.close()


def test_cold_cache_locality_ostore_beats_texas(tmp_path):
    """The paper's headline: clustering control cuts faults on the
    hot-data query mix.

    Read-ahead is pinned off: it deliberately absorbs sequential faults
    (that is experiment A5's subject), while this test measures the raw
    locality of reference the 1996 hardware saw as ``majflt``.
    """
    faults = {}
    for cls, name in ((ObjectStoreSM, "ostore"), (TexasSM, "texas")):
        sm = cls(path=os.path.join(tmp_path, f"{name}.db"), buffer_pages=24,
                 readahead_pages=0)
        db = LabBase(sm)
        workload = LabFlowWorkload(db, TINY.with_(clones_per_interval=12))
        workload.run_all()
        sm.drop_buffer()
        before = sm.stats.major_faults
        # hot-data queries only: key lookups + state sets + most-recent
        for key, oid in workload.registry.by_class["clone"]:
            db.lookup("clone", key)
            db.state_of(oid)
        for state in ("clone_done", "waiting_for_assembly"):
            db.in_state(state)
        faults[name] = sm.stats.major_faults - before
        sm.close()
    assert faults["ostore"] < faults["texas"], faults


def test_dql_sees_exactly_the_api_database():
    db = LabBase(OStoreMM())
    workload = LabFlowWorkload(db, TINY)
    workload.run_all()
    program = Program(db=db)

    # counts agree
    for class_name in ("clone", "tclone", "gel"):
        row = program.first(f"class_count({class_name}, N).")
        assert row["N"] == db.count_materials(class_name)

    # state sets agree
    for state, population in db.sets.state_census().items():
        solutions = program.solutions(f"state(M, {state}).")
        assert len(solutions) == population

    # per-material attribute values agree
    oid = db.lookup("clone", "clone-000001")
    for attribute, value in db.current_attributes(oid).items():
        row = program.first(f"value_of({oid}, {attribute}, V).")
        assert row is not None and row["V"] == value


def test_index_ablation_same_answers_different_cost():
    """use_most_recent_index=False must not change any answer."""
    results = {}
    for use_index in (True, False):
        db = LabBase(OStoreMM(), use_most_recent_index=use_index)
        workload = LabFlowWorkload(db, TINY)
        workload.run_all()
        snapshot = {}
        for _key, oid in workload.registry.by_class["clone"]:
            snapshot[db.material(oid)["key"]] = db.current_attributes(oid)
        # Logical read cost: cache hits + misses counts every object the
        # run touched, whether or not the object cache absorbed the read.
        stats = db.storage.stats
        results[use_index] = (snapshot, stats.cache_hits + stats.cache_misses)
    answers_indexed, reads_indexed = results[True]
    answers_scan, reads_scan = results[False]
    assert answers_indexed == answers_scan
    assert reads_scan > reads_indexed  # scans are strictly more work


def test_schema_evolution_mid_stream():
    """E9's behaviour at integration level: evolve during the run."""
    from repro.workflow.genome import EVOLVED_DETERMINE_SEQUENCE_ATTRIBUTES

    db = LabBase(OStoreMM())
    workload = LabFlowWorkload(db, TINY)
    workload.setup_schema()
    workload.run_interval("0.5X")
    old_version = db.catalog.step_class("determine_sequence").current

    new_version = db.define_step_class(
        "determine_sequence",
        EVOLVED_DETERMINE_SEQUENCE_ATTRIBUTES,
        ["tclone"],
    )
    assert new_version.version_id != old_version.version_id

    workload.run_interval("1.0X")  # stream continues against new schema
    workload.check_integrity()
    # both versions hold data
    assert db.catalog.version_step_counts.get(old_version.version_id, 0) > 0
    assert db.catalog.version_step_counts.get(new_version.version_id, 0) > 0


def test_transaction_abort_mid_workload_leaves_consistent_db():
    db = LabBase(OStoreMM())
    workload = LabFlowWorkload(db, TINY)
    workload.setup_schema()
    workload.run_interval("0.5X")
    before = workload.check_integrity()

    db.begin()
    oid = db.create_material("clone", "doomed", 99_999)
    db.record_step("receive_clone", 99_999, [oid], {"source": "x"})
    db.abort()

    after = workload.check_integrity()
    assert after == before
    workload.run_interval("1.0X")  # stream continues fine
    workload.check_integrity()
