"""Unit tests for the page lock manager (ObjectStore concurrency)."""

import pytest

from repro.errors import ConcurrencyUnsupportedError, LockError
from repro.storage import ObjectStoreSM, TexasSM
from repro.storage.locks import LockGrant, LockManager, LockMode
from repro.storage.stats import StorageStats


def test_shared_locks_are_compatible():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("b", 1, LockMode.SHARED)
    assert set(locks.holders(1)) == {"a", "b"}


def test_exclusive_conflicts_with_shared():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.EXCLUSIVE)


def test_shared_conflicts_with_exclusive():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.SHARED)


def test_reacquire_is_noop():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.SHARED)
    assert stats.lock_acquisitions == 1


def test_upgrade_when_alone():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    assert locks.holders(1)["a"] is LockMode.EXCLUSIVE


def test_upgrade_blocked_by_other_reader():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("b", 1, LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire("a", 1, LockMode.EXCLUSIVE)


def test_exclusive_holder_may_read():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.acquire("a", 1, LockMode.SHARED)  # no downgrade, no error
    assert locks.holders(1)["a"] is LockMode.EXCLUSIVE


def test_release_all_frees_pages():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.acquire("a", 2, LockMode.SHARED)
    released = locks.release_all("a")
    assert released == 2
    assert locks.held_pages("a") == set()
    locks.acquire("b", 1, LockMode.EXCLUSIVE)  # now free


def test_acquire_reports_grant_kind():
    locks = LockManager()
    assert locks.acquire("a", 1, LockMode.SHARED) is LockGrant.NEW
    assert locks.acquire("a", 1, LockMode.SHARED) is LockGrant.HELD
    assert locks.acquire("a", 1, LockMode.EXCLUSIVE) is LockGrant.UPGRADED
    assert locks.acquire("a", 1, LockMode.EXCLUSIVE) is LockGrant.HELD
    assert locks.acquire("a", 2, LockMode.EXCLUSIVE) is LockGrant.NEW


def test_upgrade_counts_as_upgrade_not_acquisition():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    assert stats.lock_acquisitions == 1
    assert stats.lock_upgrades == 1


def test_downgrade_restores_shared_mode():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    assert locks.downgrade("a", 1) is True
    assert locks.holders(1)["a"] is LockMode.SHARED
    assert locks.held_pages("a") == {1}          # still held, just weaker
    locks.acquire("b", 1, LockMode.SHARED)       # readers admitted again
    assert locks.downgrade("a", 1) is False      # already SHARED: no-op
    assert locks.downgrade("b", 99) is False     # never held: no-op


def test_downgraded_page_releases_normally():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.downgrade("a", 1)
    assert locks.release_all("a") == 1
    locks.acquire("b", 1, LockMode.EXCLUSIVE)    # fully free again


def test_release_single_page():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.acquire("a", 2, LockMode.EXCLUSIVE)
    assert locks.release("a", 1) is True
    assert locks.release("a", 1) is False       # already released
    assert locks.release("a", 99) is False      # never held
    assert locks.held_pages("a") == {2}
    locks.acquire("b", 1, LockMode.EXCLUSIVE)   # page 1 is free again


def test_failed_acquire_leaves_no_empty_lock_entry():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.EXCLUSIVE)
    assert locks.held_pages("b") == set()


def test_conflict_bumps_wait_counter():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.EXCLUSIVE)
    assert stats.lock_waits == 1


def test_retries_do_not_double_count_acquisitions():
    """The conflict path must mutate nothing but lock_waits: a client
    retrying the same request N times leaves holders() and the
    acquisition/upgrade counters exactly as they were."""
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    before = locks.holders(1)
    for attempt in range(1, 4):
        with pytest.raises(LockError):
            locks.acquire("b", 1, LockMode.SHARED)
        assert stats.lock_waits == attempt
    assert locks.holders(1) == before
    assert stats.lock_acquisitions == 1
    assert stats.lock_upgrades == 0
    assert locks.held_pages("b") == set()


def test_failed_upgrade_mutates_nothing():
    """A refused SHARED -> EXCLUSIVE upgrade leaves the SHARED hold (and
    all counters but lock_waits) untouched."""
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("b", 1, LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire("a", 1, LockMode.EXCLUSIVE)
    assert locks.holders(1) == {"a": LockMode.SHARED, "b": LockMode.SHARED}
    assert stats.lock_acquisitions == 2
    assert stats.lock_upgrades == 0


# -- the usability difference the paper reports ---------------------------


def test_objectstore_admits_many_clients():
    sm = ObjectStoreSM()
    sm.attach_client("alice")
    sm.attach_client("bob")
    sm.lock_page("alice", 0)
    sm.lock_page("bob", 0)  # shared: fine
    sm.unlock_all("alice")
    sm.detach_client("alice")
    sm.close()


def test_objectstore_detects_write_conflicts():
    sm = ObjectStoreSM()
    sm.attach_client("alice")
    sm.attach_client("bob")
    sm.lock_page("alice", 0, exclusive=True)
    with pytest.raises(LockError):
        sm.lock_page("bob", 0)
    sm.close()


def test_texas_refuses_second_client():
    sm = TexasSM()
    sm.attach_client("alice")
    with pytest.raises(ConcurrencyUnsupportedError):
        sm.attach_client("bob")
    sm.detach_client("alice")
    sm.attach_client("bob")  # after detach it is free again
    sm.close()
