"""Unit tests for the page lock manager (ObjectStore concurrency)."""

import pytest

from repro.errors import ConcurrencyUnsupportedError, LockError
from repro.storage import ObjectStoreSM, TexasSM
from repro.storage.locks import LockManager, LockMode
from repro.storage.stats import StorageStats


def test_shared_locks_are_compatible():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("b", 1, LockMode.SHARED)
    assert set(locks.holders(1)) == {"a", "b"}


def test_exclusive_conflicts_with_shared():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.EXCLUSIVE)


def test_shared_conflicts_with_exclusive():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.SHARED)


def test_reacquire_is_noop():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.SHARED)
    assert stats.lock_acquisitions == 1


def test_upgrade_when_alone():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    assert locks.holders(1)["a"] is LockMode.EXCLUSIVE


def test_upgrade_blocked_by_other_reader():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.SHARED)
    locks.acquire("b", 1, LockMode.SHARED)
    with pytest.raises(LockError):
        locks.acquire("a", 1, LockMode.EXCLUSIVE)


def test_exclusive_holder_may_read():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.acquire("a", 1, LockMode.SHARED)  # no downgrade, no error
    assert locks.holders(1)["a"] is LockMode.EXCLUSIVE


def test_release_all_frees_pages():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.acquire("a", 2, LockMode.SHARED)
    released = locks.release_all("a")
    assert released == 2
    assert locks.held_pages("a") == set()
    locks.acquire("b", 1, LockMode.EXCLUSIVE)  # now free


def test_acquire_reports_newly_acquired():
    locks = LockManager()
    assert locks.acquire("a", 1, LockMode.SHARED) is True
    assert locks.acquire("a", 1, LockMode.SHARED) is False      # re-acquire
    assert locks.acquire("a", 1, LockMode.EXCLUSIVE) is False   # upgrade
    assert locks.acquire("a", 2, LockMode.EXCLUSIVE) is True


def test_release_single_page():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    locks.acquire("a", 2, LockMode.EXCLUSIVE)
    assert locks.release("a", 1) is True
    assert locks.release("a", 1) is False       # already released
    assert locks.release("a", 99) is False      # never held
    assert locks.held_pages("a") == {2}
    locks.acquire("b", 1, LockMode.EXCLUSIVE)   # page 1 is free again


def test_failed_acquire_leaves_no_empty_lock_entry():
    locks = LockManager()
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.EXCLUSIVE)
    assert locks.held_pages("b") == set()


def test_conflict_bumps_wait_counter():
    stats = StorageStats()
    locks = LockManager(stats)
    locks.acquire("a", 1, LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.acquire("b", 1, LockMode.EXCLUSIVE)
    assert stats.lock_waits == 1


# -- the usability difference the paper reports ---------------------------


def test_objectstore_admits_many_clients():
    sm = ObjectStoreSM()
    sm.attach_client("alice")
    sm.attach_client("bob")
    sm.lock_page("alice", 0)
    sm.lock_page("bob", 0)  # shared: fine
    sm.unlock_all("alice")
    sm.detach_client("alice")
    sm.close()


def test_objectstore_detects_write_conflicts():
    sm = ObjectStoreSM()
    sm.attach_client("alice")
    sm.attach_client("bob")
    sm.lock_page("alice", 0, exclusive=True)
    with pytest.raises(LockError):
        sm.lock_page("bob", 0)
    sm.close()


def test_texas_refuses_second_client():
    sm = TexasSM()
    sm.attach_client("alice")
    with pytest.raises(ConcurrencyUnsupportedError):
        sm.attach_client("bob")
    sm.detach_client("alice")
    sm.attach_client("bob")  # after detach it is free again
    sm.close()
