"""Property-based tests: the storage managers vs a model dict.

Hypothesis drives random CRUD/transaction sequences against a page
store and an in-memory model simultaneously; any divergence is a bug in
directory maintenance, page reuse, chunking or the undo journal.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.storage import ObjectStoreSM, TexasSM

_VALUES = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=40),
    # low-entropy large strings: force the chunking path without
    # tripping hypothesis's entropy health check
    st.integers(4000, 9000).map(lambda n: "z" * n),
    st.lists(st.integers(0, 9), max_size=10),
)


class _Op:
    CREATE, UPDATE, DELETE, BEGIN, COMMIT, ABORT = range(6)


_ops = st.lists(
    st.tuples(st.sampled_from(range(6)), st.integers(0, 14), _VALUES),
    max_size=60,
)


def _run_model(sm, operations):
    """Apply ops to the store and a dict model; compare continuously."""
    model: dict[int, object] = {}
    shadow: dict[int, object] | None = None  # model state at begin
    handles: list[int] = []
    in_txn = False

    for op, index, value in operations:
        if op == _Op.CREATE:
            oid = sm.allocate_write(value)
            model[oid] = value
            handles.append(oid)
        elif op == _Op.UPDATE and handles:
            oid = handles[index % len(handles)]
            if oid in model:
                sm.write(oid, value)
                model[oid] = value
        elif op == _Op.DELETE and handles:
            oid = handles[index % len(handles)]
            if oid in model:
                sm.delete(oid)
                del model[oid]
        elif op == _Op.BEGIN and not in_txn:
            sm.begin()
            shadow = dict(model)
            in_txn = True
        elif op == _Op.COMMIT and in_txn:
            sm.commit()
            shadow = None
            in_txn = False
        elif op == _Op.ABORT and in_txn:
            sm.abort()
            assert shadow is not None
            model = shadow
            shadow = None
            in_txn = False

    if in_txn:
        sm.commit()

    live = {oid for oid in sm.oids()}
    assert live == set(model), (live, set(model))
    for oid, expected in model.items():
        assert sm.read(oid) == expected


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops)
def test_objectstore_matches_model(operations):
    sm = ObjectStoreSM(buffer_pages=4)
    try:
        _run_model(sm, operations)
    finally:
        try:
            sm.close()
        except Exception:
            pass


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=_ops)
def test_texas_matches_model(operations):
    sm = TexasSM(buffer_pages=4)
    try:
        _run_model(sm, operations)
    finally:
        try:
            sm.close()
        except Exception:
            pass


@settings(max_examples=20, deadline=None)
@given(
    payloads=st.lists(st.integers(0, 30_000), min_size=1, max_size=10),
)
def test_chunking_round_trips_any_size(payloads):
    """Records from empty to many-page sizes round-trip on both policies."""
    for cls in (ObjectStoreSM, TexasSM):
        sm = cls(buffer_pages=4)
        oids = [(sm.allocate_write("z" * n), n) for n in payloads]
        for oid, n in oids:
            assert sm.read(oid) == "z" * n
        sm.close()


@settings(max_examples=20, deadline=None)
@given(sizes=st.lists(st.integers(0, 5000), min_size=2, max_size=20))
def test_space_reuse_after_delete(sizes):
    """Deleting then re-inserting must not grow the store unboundedly."""
    sm = ObjectStoreSM(buffer_pages=8)
    oids = [sm.allocate_write("a" * n) for n in sizes]
    grown = sm._disk.page_count + len(sm._pool.resident_ids())
    for oid in oids:
        sm.delete(oid)
    for n in sizes:
        sm.allocate_write("b" * n)
    # identical sizes re-inserted into freed space: page count must not
    # double (some slack allowed for tail pages)
    after = sm._disk.page_count + len(sm._pool.resident_ids())
    assert after <= grown * 2 + 2
    sm.close()
