"""Unit tests for the transactional object cache (unit of work)."""

import pytest

from repro.errors import UnknownOidError
from repro.storage import ObjectCache, ObjectStoreSM, OStoreMM


class _SpySM(OStoreMM):
    """Main-memory store that records the object-level call sequence."""

    def __init__(self):
        super().__init__()
        self.calls: list[tuple] = []

    def read(self, oid):
        self.calls.append(("read", oid))
        return super().read(oid)

    def write(self, oid, obj):
        self.calls.append(("write", oid))
        super().write(oid, obj)

    def allocate_write(self, obj, segment=None):
        oid = super().allocate_write(obj, segment=segment)
        self.calls.append(("alloc", oid))
        return oid


def _cached(capacity=64):
    sm = _SpySM()
    return sm, ObjectCache(sm, capacity=capacity)


# -- reads -------------------------------------------------------------------


def test_read_miss_admits_then_hits():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": 1})
    sm.calls.clear()
    assert cache.read(oid) == {"v": 1}   # allocate admitted it: a hit
    assert sm.calls == []                 # storage manager never touched
    assert sm.stats.cache_hits == 1


def test_read_goes_to_sm_once_then_caches():
    sm, cache = _cached()
    oid = sm.allocate_write({"v": 2})    # bypass the cache on purpose
    sm.calls.clear()
    assert cache.read(oid) == {"v": 2}
    assert cache.read(oid) == {"v": 2}
    assert sm.calls == [("read", oid)]   # one miss, then served in memory
    assert sm.stats.cache_misses == 1
    assert sm.stats.cache_hits == 1


def test_capacity_zero_never_serves_reads():
    sm, cache = _cached(capacity=0)
    oid = cache.allocate_write({"v": 3})
    cache.read(oid)
    cache.read(oid)
    assert sm.stats.cache_hits == 0
    assert sm.stats.cache_misses == 2
    assert cache.resident_objects == 0


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        ObjectCache(OStoreMM(), capacity=-1)


def test_lru_eviction_beyond_capacity():
    sm, cache = _cached(capacity=2)
    oids = [cache.allocate_write({"v": i}) for i in range(3)]
    assert cache.resident_objects == 2
    assert sm.stats.cache_evictions == 1
    sm.calls.clear()
    cache.read(oids[0])                  # the oldest was evicted
    assert sm.calls == [("read", oids[0])]


# -- writes ------------------------------------------------------------------


def test_write_outside_transaction_passes_through():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": 1})
    sm.calls.clear()
    cache.write(oid, {"v": 2})
    assert sm.calls == [("write", oid)]
    assert sm.read(oid) == {"v": 2}


def test_writes_inside_transaction_coalesce_to_one():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": 0})
    cache.begin()
    sm.calls.clear()
    for i in range(5):
        cache.write(oid, {"v": i})
    assert sm.calls == []                # nothing serialized yet
    assert sm.stats.cache_coalesced == 4
    cache.commit()
    assert sm.calls.count(("write", oid)) == 1
    assert sm.read(oid) == {"v": 4}


def test_commit_flushes_dirty_objects_in_oid_order():
    sm, cache = _cached()
    oids = [cache.allocate_write({"v": i}) for i in range(4)]
    cache.begin()
    sm.calls.clear()
    for oid in (oids[2], oids[0], oids[3], oids[1]):  # scrambled
        cache.write(oid, {"v": "new"})
    cache.commit()
    written = [oid for op, oid in sm.calls if op == "write"]
    assert written == sorted(oids)


def test_dirty_read_sees_buffered_value():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": "old"})
    cache.begin()
    cache.write(oid, {"v": "new"})
    assert cache.read(oid) == {"v": "new"}
    assert sm.read(oid) == {"v": "old"}  # not serialized until commit
    cache.commit()


def test_allocate_is_eager_even_inside_transaction():
    sm, cache = _cached()
    cache.begin()
    oid = cache.allocate_write({"v": 1})
    assert sm.exists(oid)                # placement fixed at allocation
    cache.commit()


# -- invalidation hooks ------------------------------------------------------


def test_abort_discards_buffered_writes_and_cached_objects():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": "committed"})
    cache.begin()
    cache.write(oid, {"v": "doomed"})
    cache.abort()
    assert cache.dirty_objects == 0
    assert cache.read(oid) == {"v": "committed"}


def test_abort_through_sm_directly_is_equally_safe():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": "committed"})
    sm.begin()                           # bypassing the handle
    cache.write(oid, {"v": "doomed"})
    sm.abort()
    assert cache.read(oid) == {"v": "committed"}


def test_delete_through_sm_evicts_cached_object():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": 1})
    sm.delete(oid)
    assert cache.resident_objects == 0
    with pytest.raises(UnknownOidError):
        cache.read(oid)


def test_evict_writes_back_dirty_object():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": "old"})
    cache.begin()
    cache.write(oid, {"v": "new"})
    cache.evict(oid)                     # lock hand-off path
    assert sm.read(oid) == {"v": "new"}  # not lost
    cache.commit()
    sm.calls.clear()
    cache.read(oid)
    assert sm.calls == [("read", oid)]   # really gone from the cache


def test_begin_drains_pending_autocommit_state():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": 1})
    cache.begin()
    assert cache.in_transaction
    cache.write(oid, {"v": 2})
    cache.commit()
    assert not cache.in_transaction
    assert sm.read(oid) == {"v": 2}


def test_close_flushes_and_detaches():
    sm, cache = _cached()
    oid = cache.allocate_write({"v": 1})
    cache.close()
    cache2 = ObjectCache(sm, capacity=8)
    sm.begin()
    assert not cache.in_transaction      # detached: hook no longer fires
    assert cache2.in_transaction
    sm.commit()
    assert sm.read(oid) == {"v": 1}


# -- paged stores ------------------------------------------------------------


def test_drop_buffer_also_chills_object_cache(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "cold.db"))
    cache = ObjectCache(sm, capacity=64)
    oid = cache.allocate_write({"v": 1})
    cache.read(oid)
    before = sm.stats.snapshot()
    sm.drop_buffer()
    cache.read(oid)
    delta = sm.stats.delta(before)
    assert delta["cache_misses"] == 1    # cold means cold for objects too
    assert delta["major_faults"] >= 1    # ... and for pages
    sm.close()


def test_recover_invalidates_cache(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "rec.db"), checkpoint_every=1)
    cache = ObjectCache(sm, capacity=64)
    oid = cache.allocate_write({"v": 1})
    sm.commit()
    cache.read(oid)
    sm.recover()
    before = sm.stats.snapshot()
    assert cache.read(oid) == {"v": 1}
    assert sm.stats.delta(before)["cache_misses"] == 1
    sm.close()


def test_commit_persists_coalesced_writes_durably(tmp_path):
    path = str(tmp_path / "dur.db")
    sm = ObjectStoreSM(path=path, checkpoint_every=1)
    cache = ObjectCache(sm, capacity=64)
    oid = cache.allocate_write({"v": 0})
    cache.begin()
    for i in range(10):
        cache.write(oid, {"v": i})
    cache.commit()
    sm.close()
    reopened = ObjectStoreSM(path=path)
    assert reopened.read(oid) == {"v": 9}
    reopened.close()
