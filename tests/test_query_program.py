"""Tests for the LabBase-backed base predicates and update predicates."""

import pytest

from repro.errors import EvaluationError, InstantiationError
from repro.labbase import LabBase, LabClock
from repro.query import Program
from repro.storage import OStoreMM


@pytest.fixture
def db():
    database = LabBase(OStoreMM())
    database.define_material_class("clone")
    database.define_material_class("tclone", parent="clone")
    database.define_step_class(
        "determine_sequence", ["sequence", "quality"], ["tclone"]
    )
    return database


@pytest.fixture
def program(db):
    return Program(db=db, clock=LabClock())


def _mint(program, key="tc-1", state="waiting_for_sequencing"):
    row = program.first(f"create_material(tclone, '{key}', M).")
    oid = row["M"]
    program.ask(f"set_state({oid}, {state}).")
    return oid


def test_create_material_binds_oid(program, db):
    oid = _mint(program)
    assert db.lookup("tclone", "tc-1") == oid


def test_material_lookup_modes(program, db):
    oid = _mint(program)
    # forward: class+key -> oid
    assert program.first("material(tclone, 'tc-1', M).")["M"] == oid
    # backward: oid -> class+key
    row = program.first(f"material(C, K, {oid}).")
    assert row["C"] == "tclone" and row["K"] == "tc-1"
    # enumeration
    assert program.solutions("material(C, K, M).") == [
        {"C": "tclone", "K": "tc-1", "M": oid}
    ]
    # miss fails quietly
    assert not program.ask("material(tclone, 'nope', M).")


def test_state_modes(program, db):
    oid = _mint(program)
    assert program.first(f"state({oid}, S).")["S"] == "waiting_for_sequencing"
    assert program.first("state(M, waiting_for_sequencing).")["M"] == oid
    assert program.solutions("state(M, S).") == [
        {"M": oid, "S": "waiting_for_sequencing"}
    ]
    assert not program.ask("state(M, nonexistent_state).")


def test_record_step_and_value_of(program, db):
    oid = _mint(program)
    program.ask(
        f"record_step(determine_sequence, [{oid}], "
        f"[sequence = \"ACGT\", quality = 0.75])."
    )
    assert program.first(f"value_of({oid}, quality, V).")["V"] == 0.75
    # enumerate attributes
    rows = program.solutions(f"value_of({oid}, A, V).")
    assert {row["A"] for row in rows} == {"sequence", "quality"}
    # check-mode with wrong value fails
    assert not program.ask(f"value_of({oid}, quality, 0.1).")


def test_record_step_rejects_malformed_results(program):
    oid = _mint(program)
    with pytest.raises(EvaluationError, match="attr = value"):
        program.ask(f"record_step(determine_sequence, [{oid}], [quality]).")


def test_history_and_step_predicates(program, db):
    oid = _mint(program)
    program.ask(f"record_step(determine_sequence, [{oid}], [quality = 0.5]).")
    program.ask(f"record_step(determine_sequence, [{oid}], [quality = 0.9]).")
    steps = program.solutions(f"history_step({oid}, S).")
    assert len(steps) == 2
    step_oid = steps[0]["S"]
    info = program.first(f"step_info({step_oid}, C, T).")
    assert info["C"] == "determine_sequence" and isinstance(info["T"], int)
    assert program.first(f"step_result({step_oid}, quality, Q).")["Q"] == 0.9
    assert program.first(f"involves({step_oid}, M).")["M"] == oid


def test_counts(program, db):
    _mint(program, "tc-1")
    _mint(program, "tc-2")
    assert program.first("class_count(tclone, N).")["N"] == 2
    assert program.first("class_count(clone, N).")["N"] == 2  # is-a rollup
    program.ask("record_step(determine_sequence, [], []).")
    assert program.first("step_count(determine_sequence, N).")["N"] == 1
    # enumeration mode lists all classes
    rows = program.solutions("class_count(C, N).")
    assert {row["C"] for row in rows} == {"clone", "tclone"}


def test_material_and_step_class_enumeration(program):
    assert {r["C"] for r in program.solutions("material_class(C).")} == {
        "clone", "tclone",
    }
    assert program.solutions("step_class(C).") == [{"C": "determine_sequence"}]


def test_assert_retract_state_routing(program, db):
    """The paper's transition rule runs verbatim."""
    oid = _mint(program)
    program.consult("""
        test:sequencing_ok(M) <- value_of(M, quality, Q), Q >= 0.8.
        promote(M) <- state(M, waiting_for_sequencing),
                      test:sequencing_ok(M),
                      retract(state(M, waiting_for_sequencing)),
                      assert(state(M, waiting_for_incorporation)).
    """)
    program.ask(f"record_step(determine_sequence, [{oid}], [quality = 0.6]).")
    assert not program.ask(f"promote({oid}).")  # quality too low
    assert db.state_of(oid) == "waiting_for_sequencing"

    program.ask(f"record_step(determine_sequence, [{oid}], [quality = 0.95]).")
    assert program.ask(f"promote({oid}).")
    assert db.state_of(oid) == "waiting_for_incorporation"


def test_retract_state_fails_on_mismatch(program, db):
    oid = _mint(program)
    assert not program.ask(f"retract(state({oid}, wrong_state)).")
    assert db.state_of(oid) == "waiting_for_sequencing"
    assert program.ask(f"retract(state({oid}, S)).")  # unbound: binds+clears
    assert db.state_of(oid) is None


def test_counting_via_setof_like_the_paper(program, db):
    """Section 8's counting idiom: setof + length."""
    _mint(program, "tc-1")
    _mint(program, "tc-2")
    row = program.first("setof(M, state(M, waiting_for_sequencing), Ms), length(Ms, N).")
    assert row["N"] == 2


def test_instantiation_errors_on_unbound_oids(program):
    with pytest.raises(InstantiationError):
        program.solutions("value_of(M, quality, V).")
    with pytest.raises(InstantiationError):
        program.solutions("history_step(M, S).")


def test_dql_results_lower_lists_to_python(program, db):
    """Hit lists stored via the API surface as Python lists in DQL rows."""
    db.define_step_class("blast_search", ["hits"], ["clone"])
    oid = _mint(program)
    hits = [{"accession": "gb-1", "score": 10.0}]
    db.record_step("blast_search", 99, [oid], {"hits": hits})
    value = program.first(f"value_of({oid}, hits, V).")["V"]
    assert value == hits
